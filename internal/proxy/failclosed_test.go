package proxy

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

// failFixture builds a proxy over a recording upstream so tests can
// assert nothing was forwarded.
func failFixture(t *testing.T) (*Proxy, *httptest.Server, *int) {
	t.Helper()
	forwarded := 0
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		forwarded++
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(upstream.Close)
	p, err := New(Config{Upstream: upstream.URL, Validator: testPolicy(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p)
	t.Cleanup(ts.Close)
	return p, ts, &forwarded
}

func post(t *testing.T, url, contentType, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// reasonsOf flattens every recorded denial reason.
func reasonsOf(p *Proxy) []string {
	var out []string
	for _, rec := range p.Violations() {
		for _, v := range rec.Violations {
			out = append(out, v.Reason)
		}
	}
	return out
}

// TestFailClosedDistinctOutcomes injects the four body-level failures —
// malformed JSON, oversized body, unsupported content type, and a
// mid-stream connection close — and checks each fails closed (nothing
// forwarded upstream) with its own status code and audit-able denial
// reason, so forensics can tell the cases apart.
func TestFailClosedDistinctOutcomes(t *testing.T) {
	p, ts, forwarded := failFixture(t)
	target := ts.URL + "/api/v1/namespaces/default/configmaps"

	// 1. Malformed JSON body.
	if resp := post(t, target, "application/json", `{"kind":"ConfigMap",`); resp.StatusCode != http.StatusForbidden {
		t.Errorf("malformed body: code = %d, want 403", resp.StatusCode)
	}

	// 2. Oversized body.
	huge := `{"kind":"ConfigMap","data":{"blob":"` + strings.Repeat("A", maxInspectBytes) + `"}}`
	if resp := post(t, target, "application/json", huge); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: code = %d, want 413", resp.StatusCode)
	}

	// 3. Unsupported content type with a well-formed body.
	if resp := post(t, target, "application/xml", `<ConfigMap/>`); resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("wrong content type: code = %d, want 415", resp.StatusCode)
	}

	// 4. Mid-stream connection close: announce more bytes than sent.
	u, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", u.Host)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "POST /api/v1/namespaces/default/configmaps HTTP/1.1\r\n"+
		"Host: %s\r\nContent-Type: application/json\r\nContent-Length: 4096\r\n\r\n{\"kind\":", u.Host)
	conn.Close()

	wantReasons := []string{
		"not a valid Kubernetes object",
		"inspection limit",
		"unsupported content type",
		"could not be read",
	}
	deadline := time.Now().Add(5 * time.Second)
	var missing []string
	for {
		missing = missing[:0]
		reasons := strings.Join(reasonsOf(p), "\n")
		for _, want := range wantReasons {
			if !strings.Contains(reasons, want) {
				missing = append(missing, want)
			}
		}
		if len(missing) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("denial records missing distinct reasons %v; have:\n%s", missing, reasons)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if *forwarded != 0 {
		t.Errorf("%d failing requests were forwarded upstream", *forwarded)
	}
	// Only the policy-level rejection (the malformed body's 403) counts
	// as a denial; transport-level failures are recorded but must not
	// skew the denial-rate metric.
	if m := p.Metrics(); m.Denied != 1 {
		t.Errorf("denied counter = %d, want 1 (policy denials only)", m.Denied)
	}
	if recs := p.Violations(); len(recs) < 4 {
		t.Errorf("violation records = %d, want >= 4 (every failure audit-able)", len(recs))
	}
}

// TestEmptyContentTypeDefaultsToJSON keeps bare tooling working: an
// inspected request without a Content-Type is parsed as JSON, validated,
// and forwarded when conforming.
func TestEmptyContentTypeDefaultsToJSON(t *testing.T) {
	_, ts, forwarded := failFixture(t)
	body, err := json.Marshal(goodDeployment())
	if err != nil {
		t.Fatal(err)
	}
	resp := post(t, ts.URL+"/apis/apps/v1/namespaces/default/deployments", "", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Errorf("code = %d, want 200", resp.StatusCode)
	}
	if *forwarded != 1 {
		t.Errorf("forwarded = %d, want 1", *forwarded)
	}
}

// TestContentTypeRouting pins the media-type allowlist: real clients
// attach parameters ("application/json; charset=utf-8") that a proper
// RFC 2045 parse must not reject, the documented YAML aliases all route
// to the YAML decoder, and everything else — including types that merely
// CONTAIN the substring "json", which the old substring match waved
// through — fails closed with 415.
func TestContentTypeRouting(t *testing.T) {
	jsonBody := `{"kind":"ConfigMap","apiVersion":"v1",` +
		`"metadata":{"name":"kfrel-cm","namespace":"default"},"data":{"key":"v"}}`
	yamlBody := "apiVersion: v1\nkind: ConfigMap\nmetadata:\n  name: kfrel-cm\n  namespace: default\ndata:\n  key: v\n"

	cases := []struct {
		name        string
		contentType string
		body        string
		wantCode    int
	}{
		{"json bare", "application/json", jsonBody, http.StatusOK},
		{"json with charset", "application/json; charset=utf-8", jsonBody, http.StatusOK},
		{"json uppercase type", "Application/JSON", jsonBody, http.StatusOK},
		{"text json", "text/json", jsonBody, http.StatusOK},
		{"yaml bare", "application/yaml", yamlBody, http.StatusOK},
		{"yaml with charset", "application/yaml; charset=utf-8", yamlBody, http.StatusOK},
		{"text yaml", "text/yaml", yamlBody, http.StatusOK},
		{"x-yaml", "application/x-yaml", yamlBody, http.StatusOK},
		{"xml", "application/xml", `<ConfigMap/>`, http.StatusUnsupportedMediaType},
		{"substring json smuggle", "application/not-json-at-all", jsonBody, http.StatusUnsupportedMediaType},
		{"substring yaml smuggle", "text/yamlish", yamlBody, http.StatusUnsupportedMediaType},
		{"protobuf", "application/vnd.kubernetes.protobuf", jsonBody, http.StatusUnsupportedMediaType},
		{"malformed parameters", "application/json; charset", jsonBody, http.StatusUnsupportedMediaType},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, ts, forwarded := failFixture(t)
			resp := post(t, ts.URL+"/api/v1/namespaces/default/configmaps", tc.contentType, tc.body)
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("content type %q: code = %d, want %d",
					tc.contentType, resp.StatusCode, tc.wantCode)
			}
			wantForwarded := 0
			if tc.wantCode == http.StatusOK {
				wantForwarded = 1
			}
			if *forwarded != wantForwarded {
				t.Errorf("forwarded = %d, want %d", *forwarded, wantForwarded)
			}
		})
	}
}
