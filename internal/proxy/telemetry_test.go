package proxy

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/object"
	"repro/internal/registry"
	"repro/internal/telemetry"
)

// telemetryFixture wires a registry-backed proxy to a hub sampling
// every decision, so each verdict site's recording is observable.
func telemetryFixture(t *testing.T, tenants ...string) (*Proxy, *registry.Registry, *telemetry.Hub) {
	t.Helper()
	reg := registry.New(registry.Config{})
	for _, tenant := range tenants {
		if _, err := reg.Register(tenant, registry.Selector{Namespace: tenant}, tenantPolicy(t, tenant)); err != nil {
			t.Fatal(err)
		}
	}
	hub := telemetry.New(telemetry.Config{SampleEvery: 1})
	p, err := New(Config{
		Upstream:  "http://upstream.invalid",
		Transport: echoTransport{},
		Registry:  reg,
		Telemetry: hub,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, reg, hub
}

func postTenant(t *testing.T, p *Proxy, namespace string, o object.Object) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost,
		"/api/v1/namespaces/"+namespace+"/configmaps", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Remote-User", "operator")
	rec := httptest.NewRecorder()
	p.ServeHTTP(rec, req)
	return rec
}

// verdictCount sums a workload's cells for one verdict across both
// pipeline paths (which path decides is an implementation detail the
// test does not pin).
func verdictCount(s telemetry.Snapshot, workload string, v telemetry.Verdict) uint64 {
	ws := s.Workload(workload)
	if ws == nil {
		return 0
	}
	var n uint64
	for _, c := range ws.Cells {
		if c.Verdict == v.String() {
			n += c.Count
		}
	}
	return n
}

func TestProxyRecordsVerdictTelemetry(t *testing.T) {
	p, reg, hub := telemetryFixture(t, "alpha")

	// Allowed: the benign object conforms to alpha's policy.
	if rec := postTenant(t, p, "alpha", tenantConfigMap("alpha", "alpha")); rec.Code != http.StatusOK {
		t.Fatalf("benign request: code %d, body %s", rec.Code, rec.Body)
	}
	// Denied: a foreign tenant's shape violates alpha's policy.
	if rec := postTenant(t, p, "alpha", tenantConfigMap("beta", "alpha")); rec.Code != http.StatusForbidden {
		t.Fatalf("violating request: code %d", rec.Code)
	}
	// Rejected: no registered policy governs this namespace (fail
	// closed), recorded under the unresolved pseudo-workload.
	if rec := postTenant(t, p, "nobody", tenantConfigMap("alpha", "nobody")); rec.Code != http.StatusForbidden {
		t.Fatalf("unpoliced request: code %d", rec.Code)
	}
	// Shadowed: in shadow mode the would-deny is recorded, not enforced.
	if err := reg.SetMode("alpha", registry.ModeShadow); err != nil {
		t.Fatal(err)
	}
	if rec := postTenant(t, p, "alpha", tenantConfigMap("beta", "alpha")); rec.Code != http.StatusOK {
		t.Fatalf("shadow would-deny: code %d", rec.Code)
	}
	// Learned: learn mode forwards and feeds the miner, no validation.
	if err := reg.SetMode("alpha", registry.ModeLearn); err != nil {
		t.Fatal(err)
	}
	if rec := postTenant(t, p, "alpha", tenantConfigMap("alpha", "alpha")); rec.Code != http.StatusOK {
		t.Fatalf("learn-mode request: code %d", rec.Code)
	}

	snap := hub.Snapshot()
	for _, want := range []struct {
		workload string
		verdict  telemetry.Verdict
		count    uint64
	}{
		{"alpha", telemetry.VerdictAllowed, 1},
		{"alpha", telemetry.VerdictDenied, 1},
		{"alpha", telemetry.VerdictShadowed, 1},
		{"alpha", telemetry.VerdictLearned, 1},
		{UnresolvedWorkload, telemetry.VerdictRejected, 1},
	} {
		if got := verdictCount(snap, want.workload, want.verdict); got != want.count {
			t.Errorf("workload %s verdict %s: count %d, want %d",
				want.workload, want.verdict, got, want.count)
		}
	}
	if got := snap.Decisions(); got != 5 {
		t.Errorf("total decisions %d, want 5", got)
	}

	// Sampling 1/1: every decision landed a trace, and decided requests
	// carry the resolve stage.
	traces := hub.Traces()
	if len(traces) != 5 {
		t.Fatalf("traces sampled %d, want 5", len(traces))
	}
	sawResolve := false
	for _, tr := range traces {
		for i := 0; i < tr.NumStages; i++ {
			if tr.Stages[i].Name == "resolve" {
				sawResolve = true
			}
		}
	}
	if !sawResolve {
		t.Error("no sampled trace carries a resolve stage")
	}
}

func TestProxyTelemetryNilHub(t *testing.T) {
	// Without a hub the proxy must behave identically — the nil-receiver
	// no-ops are the zero-cost-off contract.
	reg := registry.New(registry.Config{})
	if _, err := reg.Register("alpha", registry.Selector{Namespace: "alpha"}, tenantPolicy(t, "alpha")); err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Upstream:  "http://upstream.invalid",
		Transport: echoTransport{},
		Registry:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Telemetry() != nil {
		t.Error("proxy without a hub reports one")
	}
	if rec := postTenant(t, p, "alpha", tenantConfigMap("alpha", "alpha")); rec.Code != http.StatusOK {
		t.Fatalf("benign request without hub: code %d", rec.Code)
	}
}
