// Package proxy implements the KubeFence enforcement point (paper §V-B):
// an intercepting proxy deployed between API clients and the Kubernetes
// API server — the role mitmproxy plays in the paper's implementation.
//
// Every incoming request is authenticated, and write requests (create,
// update, patch) have their body checked against the workload's policy.
// Conforming requests are forwarded upstream unchanged; violating
// requests are rejected with HTTP 403 and a violation record carrying
// the offending field paths and reasons, enabling the auditing and
// forensics the paper describes.
//
// The admission data path is streaming-first: for JSON and YAML bodies
// of enforce-mode workloads, routing metadata (kind, namespace, name)
// is scanned straight off the wire bytes (compile.ScanRawMeta /
// compile.ScanRawYAMLMeta), the workload policy is resolved through the
// registry's match trie without materializing strings (ResolveRaw), the
// workload's decision-cache shard is consulted on the body hash, and
// the compiled program's streaming fast pass walks the raw bytes — so
// an ALLOWED request is never decoded into a document at all. Request
// bodies live in pooled buffers returned to the pool when the upstream
// round trip completes. Only deny verdicts, cache-missed shadow/learn
// traffic, tap-equipped proxies, and constructs the scanners cannot
// vouch for take the classic decode + diagnostic path, whose verdicts
// and violation lists the raw path reproduces exactly
// (registry.ValidateRaw contract).
//
// Identity is propagated upstream via the front-proxy headers
// (X-Forwarded-User/-Group) over an mTLS channel only the proxy can open,
// preserving Complete Mediation: the API server refuses direct client
// connections because only the proxy holds a client certificate.
//
// A proxy enforces one policy registry. The single-workload configuration
// (Config.Validator) remains supported and registers the validator as a
// cluster-wide wildcard policy; the multi-workload configuration
// (Config.Registry) resolves, per request, the most specific workload
// policy for the object's namespace and kind, and fails closed when no
// registered policy governs the request.
//
// Each workload carries a rollout mode (registry modes, learn →
// shadow → enforce): learn-mode requests are forwarded unvalidated and
// fed to the workload's policy miner, shadow-mode requests are validated
// against the candidate policy with the would-deny verdict recorded but
// never enforced, and enforce mode is the classic deny path. Config.Tap
// additionally streams every inspected request to a trace sink for
// offline mining. Audit callbacks (OnViolation, OnShadowViolation, Tap)
// can be moved off the request goroutine onto a bounded async ring with
// explicit drop accounting via Config.SinkBuffer.
package proxy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compile"
	"repro/internal/object"
	"repro/internal/registry"
	"repro/internal/telemetry"
	"repro/internal/validator"
)

// ViolationRecord is one denied request, for auditing. It is the
// registry's per-workload record type; proxy-level denials that could not
// be attributed to a workload (undecodable bodies, unmatched requests)
// leave Workload empty.
type ViolationRecord = registry.Record

// Metrics aggregates proxy counters.
type Metrics struct {
	Requests  uint64
	Inspected uint64
	Denied    uint64
	// Shadowed counts would-deny verdicts recorded for shadow-mode
	// workloads (the requests themselves were forwarded).
	Shadowed uint64
	// RawAllowed counts inspected requests decided on the streaming
	// fast path (raw bytes, no decode), including body-hash cache hits.
	RawAllowed uint64
	// RawDenied counts inspected requests denied without decoding
	// (cached denials answered from raw bytes).
	RawDenied      uint64
	ValidationTime time.Duration
}

// Config configures the proxy.
type Config struct {
	// Upstream is the API server base URL, e.g. "https://127.0.0.1:6443".
	Upstream string
	// Transport carries requests upstream (holds the mTLS client config).
	// Defaults to http.DefaultTransport.
	Transport http.RoundTripper
	// Validator is a single cluster-wide workload policy. Exactly one of
	// Validator or Registry is required.
	Validator *validator.Validator
	// Registry supplies per-workload policies resolved per request; the
	// proxy denies requests no registered policy governs (fail closed).
	Registry *registry.Registry
	// CacheSize bounds the decision cache of the registry the proxy
	// builds for a single Validator (0 disables caching). Ignored when
	// Registry is set — configure the cache on the registry instead.
	CacheSize int
	// ProxyUser is the identity the proxy asserts to the upstream API
	// server when the channel is not mTLS (header authentication). It
	// must be listed in the API server's FrontProxyUsers. With mTLS the
	// proxy's client certificate CN carries the identity instead.
	ProxyUser string
	// DisableRawFastPath forces every inspected request through the
	// classic decode-first path. For ablation benchmarks (the e2e
	// experiment's decode baseline) and debugging; verdicts are
	// identical either way.
	DisableRawFastPath bool
	// SinkBuffer, when > 0, moves the OnViolation / OnShadowViolation /
	// Tap callbacks off the request goroutine onto a bounded async ring
	// of this capacity serviced by one background goroutine. A full
	// ring drops events (counted in SinkStats), never blocks a request.
	// Zero keeps the callbacks synchronous on the request path.
	SinkBuffer int
	// OnViolation, when non-nil, receives every denial record.
	OnViolation func(ViolationRecord)
	// OnShadowViolation, when non-nil, receives every would-deny record
	// of a workload in shadow mode (the request itself was forwarded).
	OnShadowViolation func(ViolationRecord)
	// Tap, when non-nil, receives every successfully decoded and
	// resolved inspected request — the live capture feeding offline
	// policy mining (internal/learn traces). Configuring a tap disables
	// the decode-free fast path: every inspected request is decoded so
	// the tap sees the object. With SinkBuffer > 0 the callback itself
	// still runs off the request goroutine.
	Tap func(workload, user, method, path string, obj object.Object)
	// Telemetry, when non-nil, records every decision (counter +
	// latency histogram per workload × verdict × path) and samples
	// decision traces into the hub. Recording is lock-free and
	// allocation-free; a nil hub costs one predictable branch.
	Telemetry *telemetry.Hub
}

// Proxy is the enforcement handler.
type Proxy struct {
	upstream  string
	transport http.RoundTripper
	proxyUser string
	registry  *registry.Registry
	// single names the implicit wildcard entry of a proxy built from
	// Config.Validator; SetValidator swaps that entry's policy.
	single     string
	disableRaw bool
	onViolate  func(ViolationRecord)
	onShadow   func(ViolationRecord)
	tap        func(workload, user, method, path string, obj object.Object)
	sink       *asyncSink
	telemetry  *telemetry.Hub

	violations *registry.BoundedLog
	requests   atomic.Uint64
	inspected  atomic.Uint64
	denied     atomic.Uint64
	shadowed   atomic.Uint64
	rawAllowed atomic.Uint64
	rawDenied  atomic.Uint64
	valNanos   atomic.Int64
}

// workloadName names the implicit registry entry for a bare validator.
func workloadName(v *validator.Validator) string {
	if v != nil && v.Workload != "" {
		return v.Workload
	}
	return "default"
}

// New builds a Proxy.
func New(cfg Config) (*Proxy, error) {
	if cfg.Validator == nil && cfg.Registry == nil {
		return nil, fmt.Errorf("proxy: one of Config.Validator or Config.Registry is required")
	}
	if cfg.Validator != nil && cfg.Registry != nil {
		return nil, fmt.Errorf("proxy: Config.Validator and Config.Registry are mutually exclusive")
	}
	if cfg.Upstream == "" {
		return nil, fmt.Errorf("proxy: Config.Upstream is required")
	}
	p := &Proxy{
		upstream:   strings.TrimSuffix(cfg.Upstream, "/"),
		transport:  cfg.Transport,
		proxyUser:  cfg.ProxyUser,
		registry:   cfg.Registry,
		disableRaw: cfg.DisableRawFastPath,
		onViolate:  cfg.OnViolation,
		onShadow:   cfg.OnShadowViolation,
		tap:        cfg.Tap,
		telemetry:  cfg.Telemetry,
		violations: registry.NewBoundedLog(registry.MaxRecords),
	}
	if p.transport == nil {
		p.transport = http.DefaultTransport
	}
	if cfg.Validator != nil {
		p.registry = registry.New(registry.Config{CacheSize: cfg.CacheSize})
		p.single = workloadName(cfg.Validator)
		if _, err := p.registry.Register(p.single, registry.Selector{}, cfg.Validator); err != nil {
			return nil, err
		}
	}
	if cfg.SinkBuffer > 0 {
		p.sink = newAsyncSink(cfg.SinkBuffer, cfg.OnViolation, cfg.OnShadowViolation, cfg.Tap)
	}
	return p, nil
}

// SetValidator swaps the enforced policy atomically (policy updates
// without proxy restarts) on a proxy built from Config.Validator,
// replacing the implicit cluster-wide policy. A nil validator is
// ignored. On a registry-backed proxy it is a no-op: silently
// registering a cluster-wide wildcard would convert the documented
// fail-closed behavior into allow-by-one-policy — manage per-workload
// policies through Registry().Swap instead. The swap-or-register loop
// retries so a lost race against a concurrent SetValidator cannot
// silently drop the update.
func (p *Proxy) SetValidator(v *validator.Validator) {
	if v == nil || p.single == "" {
		return
	}
	for {
		if err := p.registry.Swap(p.single, v); err == nil {
			return
		}
		if _, err := p.registry.Register(p.single, registry.Selector{}, v); err == nil {
			return
		}
		// Another goroutine registered the entry between our Swap and
		// Register; the next Swap succeeds against it.
	}
}

// Registry exposes the proxy's policy registry for per-workload metrics,
// violation records, and live policy management.
func (p *Proxy) Registry() *registry.Registry { return p.registry }

// Telemetry exposes the proxy's telemetry hub (nil when the proxy was
// built without one).
func (p *Proxy) Telemetry() *telemetry.Hub { return p.telemetry }

// UnresolvedWorkload is the telemetry workload label for decisions the
// proxy could not attribute to a registered workload: undecodable
// bodies and requests no policy governs (fail-closed rejections).
const UnresolvedWorkload = "_unresolved"

// Violations returns a snapshot of all denial records.
func (p *Proxy) Violations() []ViolationRecord {
	return p.violations.Snapshot()
}

// ResetViolations clears the denial log.
func (p *Proxy) ResetViolations() {
	p.violations.Reset()
}

// Metrics returns a snapshot of the counters.
func (p *Proxy) Metrics() Metrics {
	return Metrics{
		Requests:       p.requests.Load(),
		Inspected:      p.inspected.Load(),
		Denied:         p.denied.Load(),
		Shadowed:       p.shadowed.Load(),
		RawAllowed:     p.rawAllowed.Load(),
		RawDenied:      p.rawDenied.Load(),
		ValidationTime: time.Duration(p.valNanos.Load()),
	}
}

// SinkStats reports the async sink's delivery accounting. Zero-valued
// when Config.SinkBuffer was 0 (synchronous callbacks).
func (p *Proxy) SinkStats() SinkStats {
	if p.sink == nil {
		return SinkStats{}
	}
	return p.sink.stats()
}

// FlushSinks waits until every event enqueued so far has been delivered
// or dropped, bounded by the timeout; it reports whether the sink fully
// drained. A no-op (true) for synchronous sinks.
func (p *Proxy) FlushSinks(timeout time.Duration) bool {
	if p.sink == nil {
		return true
	}
	return p.sink.flush(timeout)
}

// CloseSinks stops the async sink worker after draining queued events.
// Call after the proxy has stopped serving requests; safe to call more
// than once, and a no-op for synchronous sinks.
func (p *Proxy) CloseSinks() {
	if p.sink != nil {
		p.sink.close()
	}
}

// maxInspectBytes bounds the request body the proxy is willing to
// buffer for inspection. Larger bodies are denied, not truncated: a
// truncated parse could silently validate a prefix of the attacker's
// actual object.
const maxInspectBytes = 4 << 20

// bodyPool recycles request-body buffers across requests: the enforcement
// point reads every body it inspects, and steady-state traffic should
// not allocate a fresh buffer (the single largest allocation of the
// allowed-request path) per request.
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledBody caps the buffers the pool retains; a rare 4 MiB body
// should not pin 4 MiB per pool slot forever.
const maxPooledBody = 256 << 10

func putBody(buf *bytes.Buffer) {
	if buf != nil && buf.Cap() <= maxPooledBody {
		bodyPool.Put(buf)
	}
}

// releaseReader carries a pooled body into the upstream round trip and
// returns the buffer to the pool when the transport closes the request
// body (http.RoundTripper contract: the transport always closes it).
type releaseReader struct {
	*bytes.Reader
	release func()
	once    sync.Once
}

func (rr *releaseReader) Close() error {
	rr.once.Do(rr.release)
	return nil
}

// ServeHTTP implements http.Handler: inspect, validate, forward or deny.
// Every failure on the inspection path fails closed with its own
// audit-able outcome: unreadable bodies (mid-stream disconnects),
// oversized bodies, unsupported content types, and undecodable bodies
// each produce a denial record with a distinct reason and status code.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.requests.Add(1)
	user, groups := clientIdentity(r)

	var body []byte
	var buf *bytes.Buffer
	if r.Body != nil {
		buf = bodyPool.Get().(*bytes.Buffer)
		buf.Reset()
		if _, err := buf.ReadFrom(io.LimitReader(r.Body, maxInspectBytes+1)); err != nil {
			putBody(buf)
			p.deny(w, r, user, nil, "", "", http.StatusBadRequest, []validator.Violation{{
				Reason: "request body could not be read: " + err.Error(),
			}})
			return
		}
		r.Body.Close()
		body = buf.Bytes()
	}
	// releaseBody returns the pooled buffer once nothing references the
	// body bytes anymore: called directly on deny paths, deferred to the
	// transport's Body.Close on the forward path.
	releaseBody := func() {
		b := buf
		buf = nil
		putBody(b)
	}
	// Oversized bodies are denied for every method, before the
	// inspection branch: the read above is capped, so forwarding would
	// silently hand upstream a truncated request.
	if len(body) > maxInspectBytes {
		p.deny(w, r, user, nil, "", "", http.StatusRequestEntityTooLarge, []validator.Violation{{
			Reason: fmt.Sprintf("request body exceeds the %d MiB inspection limit", maxInspectBytes>>20),
		}})
		releaseBody()
		return
	}

	if inspectable(r.Method) && len(body) > 0 {
		p.inspected.Add(1)
		contentType := r.Header.Get("Content-Type")
		format, ok := bodyFormat(contentType)
		if !ok {
			p.deny(w, r, user, nil, "", "", http.StatusUnsupportedMediaType, []validator.Violation{{
				Reason: fmt.Sprintf("unsupported content type %q for an inspected request", contentType),
			}})
			releaseBody()
			return
		}
		start := time.Now()
		// tc is nil for all but 1/N decisions (telemetry sampling); every
		// method on a nil ctx is a no-op, so the stage marks below cost
		// nothing on the unsampled hot path.
		tc := p.telemetry.Sample()

		// Streaming fast path: decide requests straight off the wire
		// bytes whenever possible, for both encodings. The scanners
		// succeeding guarantees the body decodes and the extracted
		// routing fields equal the decoded accessors, so resolving
		// before decoding is observationally identical to the classic
		// order; ResolveRaw probes the registry's match trie on the
		// scanned byte slices without materializing strings. Taps force
		// the decode path (they consume the object); non-enforce modes
		// fall through (learn feeds the miner, shadow records
		// diagnostics).
		if !p.disableRaw && p.tap == nil {
			var meta compile.RawMeta
			var scanned bool
			if format == formatYAML {
				meta, scanned = compile.ScanRawYAMLMeta(body)
			} else {
				meta, scanned = compile.ScanRawMeta(body)
			}
			if scanned {
				var entry *registry.Entry
				var found bool
				if len(meta.Namespace) > 0 {
					entry, found = p.registry.ResolveRaw(meta.Namespace, meta.Kind)
				} else {
					entry, found = p.registry.Resolve(requestNamespace(r.URL.Path), string(meta.Kind))
				}
				tc.Stage("resolve")
				if !found {
					namespace := string(meta.Namespace)
					if namespace == "" {
						namespace = requestNamespace(r.URL.Path)
					}
					kind := string(meta.Kind)
					el := time.Since(start)
					p.valNanos.Add(int64(el))
					p.telemetry.RecordDecision(UnresolvedWorkload, telemetry.VerdictRejected, telemetry.PathRaw, el)
					if tc != nil {
						tc.Finish(UnresolvedWorkload, telemetry.VerdictRejected, telemetry.PathRaw, kind, string(meta.Name))
					}
					p.reject(w, r, user, nil, kind, string(meta.Name), []validator.Violation{{
						Reason: fmt.Sprintf("no KubeFence policy registered for namespace %q kind %q",
							namespace, kind),
					}})
					releaseBody()
					return
				}
				if entry.Mode() == registry.ModeEnforce {
					var vs []validator.Violation
					var decided bool
					if format == formatYAML {
						vs, decided = p.registry.ValidateRawYAMLScanned(entry, body, meta)
					} else {
						vs, decided = p.registry.ValidateRawScanned(entry, body, meta)
					}
					if decided {
						tc.Stage("raw-match")
						el := time.Since(start)
						p.valNanos.Add(int64(el))
						if len(vs) > 0 {
							p.rawDenied.Add(1)
							p.telemetry.RecordDecision(entry.Workload(), telemetry.VerdictDenied, telemetry.PathRaw, el)
							if tc != nil {
								tc.Finish(entry.Workload(), telemetry.VerdictDenied, telemetry.PathRaw, string(meta.Kind), string(meta.Name))
							}
							p.reject(w, r, user, entry, string(meta.Kind), string(meta.Name), vs)
							releaseBody()
							return
						}
						p.rawAllowed.Add(1)
						p.telemetry.RecordDecision(entry.Workload(), telemetry.VerdictAllowed, telemetry.PathRaw, el)
						// Guarded: the string conversions in the Finish
						// arguments must not run (allocate) on the unsampled
						// fast path.
						if tc != nil {
							tc.Finish(entry.Workload(), telemetry.VerdictAllowed, telemetry.PathRaw, string(meta.Kind), string(meta.Name))
						}
						p.forward(w, r, user, groups, body, releaseBody)
						return
					}
				}
			}
		}

		obj, err := decodeObject(body, format)
		tc.Stage("decode")
		if err != nil {
			el := time.Since(start)
			p.valNanos.Add(int64(el))
			p.telemetry.RecordDecision(UnresolvedWorkload, telemetry.VerdictRejected, telemetry.PathDecoded, el)
			tc.Finish(UnresolvedWorkload, telemetry.VerdictRejected, telemetry.PathDecoded, "", "")
			p.reject(w, r, user, nil, "", "", []validator.Violation{{
				Reason: "request body is not a valid Kubernetes object: " + err.Error(),
			}})
			releaseBody()
			return
		}
		namespace := obj.Namespace()
		if namespace == "" {
			namespace = requestNamespace(r.URL.Path)
		}
		entry, ok := p.registry.Resolve(namespace, obj.Kind())
		tc.Stage("resolve")
		if !ok {
			el := time.Since(start)
			p.valNanos.Add(int64(el))
			p.telemetry.RecordDecision(UnresolvedWorkload, telemetry.VerdictRejected, telemetry.PathDecoded, el)
			tc.Finish(UnresolvedWorkload, telemetry.VerdictRejected, telemetry.PathDecoded, obj.Kind(), obj.Name())
			p.reject(w, r, user, nil, obj.Kind(), obj.Name(), []validator.Violation{{
				Reason: fmt.Sprintf("no KubeFence policy registered for namespace %q kind %q",
					namespace, obj.Kind()),
			}})
			releaseBody()
			return
		}
		if p.tap != nil {
			p.emitTap(entry.Workload(), user, r.Method, r.URL.Path, obj)
		}
		// The workload's rollout mode decides what "validate" means:
		// learn feeds the miner and forwards, shadow records the verdict
		// and forwards, enforce denies violations (the classic path).
		switch entry.Mode() {
		case registry.ModeLearn:
			entry.ObserveLearn(obj)
			tc.Stage("validate")
			el := time.Since(start)
			p.valNanos.Add(int64(el))
			p.telemetry.RecordDecision(entry.Workload(), telemetry.VerdictLearned, telemetry.PathDecoded, el)
			tc.Finish(entry.Workload(), telemetry.VerdictLearned, telemetry.PathDecoded, obj.Kind(), obj.Name())
		case registry.ModeShadow:
			violations, _ := p.registry.ShadowValidate(entry, body, obj)
			tc.Stage("validate")
			el := time.Since(start)
			p.valNanos.Add(int64(el))
			// A clean shadow validation is an allowed decision; only a
			// would-deny records as shadowed.
			if len(violations) > 0 {
				p.telemetry.RecordDecision(entry.Workload(), telemetry.VerdictShadowed, telemetry.PathDecoded, el)
				tc.Finish(entry.Workload(), telemetry.VerdictShadowed, telemetry.PathDecoded, obj.Kind(), obj.Name())
				p.recordShadow(r, user, entry, obj, violations)
				// Pre-enforcement traffic is trusted by definition of the
				// rollout, so a would-deny is a learning opportunity:
				// feed it back to the miner and let the controller
				// publish the grown candidate.
				if obs := entry.Observer(); obs != nil {
					obs.Observe(obj)
				}
			} else {
				p.telemetry.RecordDecision(entry.Workload(), telemetry.VerdictAllowed, telemetry.PathDecoded, el)
				tc.Finish(entry.Workload(), telemetry.VerdictAllowed, telemetry.PathDecoded, obj.Kind(), obj.Name())
			}
		default: // registry.ModeEnforce
			violations := p.registry.Validate(entry, body, obj)
			tc.Stage("validate")
			el := time.Since(start)
			p.valNanos.Add(int64(el))
			if len(violations) > 0 {
				p.telemetry.RecordDecision(entry.Workload(), telemetry.VerdictDenied, telemetry.PathDecoded, el)
				tc.Finish(entry.Workload(), telemetry.VerdictDenied, telemetry.PathDecoded, obj.Kind(), obj.Name())
				p.reject(w, r, user, entry, obj.Kind(), obj.Name(), violations)
				releaseBody()
				return
			}
			p.telemetry.RecordDecision(entry.Workload(), telemetry.VerdictAllowed, telemetry.PathDecoded, el)
			tc.Finish(entry.Workload(), telemetry.VerdictAllowed, telemetry.PathDecoded, obj.Kind(), obj.Name())
		}
	}

	p.forward(w, r, user, groups, body, releaseBody)
}

// requestNamespace extracts the namespace segment of an API request path
// ("/api/v1/namespaces/{ns}/..." or "/apis/{g}/{v}/namespaces/{ns}/..."),
// for requests whose body omits metadata.namespace.
func requestNamespace(path string) string {
	const tok = "/namespaces/"
	i := strings.Index(path, tok)
	if i < 0 {
		return ""
	}
	ns := path[i+len(tok):]
	if j := strings.IndexByte(ns, '/'); j >= 0 {
		ns = ns[:j]
	}
	return ns
}

// inspectable reports whether the method carries a specification to
// validate. Reads and deletes carry no object specification; the paper's
// policies constrain what may be *created or reconfigured*.
func inspectable(method string) bool {
	switch method {
	case http.MethodPost, http.MethodPut, http.MethodPatch:
		return true
	}
	return false
}

// bodyFormat values route an inspected body to its decoder family.
type bodyFormatKind int

const (
	formatJSON bodyFormatKind = iota
	formatYAML
)

// bodyFormat classifies the Content-Type of an inspected request. The
// header is parsed as a proper media type (RFC 2045), so parameters a
// real client attaches ("application/json; charset=utf-8") don't change
// the verdict — a substring match would also have waved through any
// type that merely *mentions* json ("application/not-json-at-all"),
// which is exactly the kind of routing ambiguity an enforcement point
// cannot afford. Unknown base types stay fail-closed (415): a body the
// proxy would misparse is a body it must not vouch for. An empty
// content type defaults to JSON (kubectl and client-go always set one;
// bare tooling often doesn't).
func bodyFormat(contentType string) (bodyFormatKind, bool) {
	if contentType == "" {
		return formatJSON, true
	}
	mediaType, _, err := mime.ParseMediaType(contentType)
	if err != nil {
		return 0, false
	}
	switch mediaType {
	case "application/json", "text/json":
		return formatJSON, true
	case "application/yaml", "text/yaml", "application/x-yaml":
		return formatYAML, true
	}
	return 0, false
}

// decodeObject decodes an inspected body. JSON goes through the
// precision-preserving decoder (object.ParseJSON): numbers normalize to
// int64 when exact, so large integers survive to the validators instead
// of being rounded to the nearest float64 before the policy sees them.
func decodeObject(body []byte, format bodyFormatKind) (object.Object, error) {
	if format == formatYAML {
		return object.ParseManifest(body)
	}
	return object.ParseJSON(body)
}

// clientIdentity extracts the caller identity the same way the API server
// would have (client certificate CN, else X-Remote-User).
func clientIdentity(r *http.Request) (string, []string) {
	if r.TLS != nil && len(r.TLS.PeerCertificates) > 0 {
		leaf := r.TLS.PeerCertificates[0]
		return leaf.Subject.CommonName, leaf.Subject.Organization
	}
	if h := r.Header.Get("X-Remote-User"); h != "" {
		return h, r.Header.Values("X-Remote-Group")
	}
	return "system:anonymous", nil
}

// emitViolation delivers a denial record to the violation sink —
// asynchronously when the proxy has an async sink, inline otherwise.
func (p *Proxy) emitViolation(rec ViolationRecord) {
	if p.onViolate == nil {
		return
	}
	if p.sink != nil {
		p.sink.enqueue(sinkEvent{kind: sinkViolation, rec: rec})
		return
	}
	p.onViolate(rec)
}

func (p *Proxy) emitShadow(rec ViolationRecord) {
	if p.onShadow == nil {
		return
	}
	if p.sink != nil {
		p.sink.enqueue(sinkEvent{kind: sinkShadow, rec: rec})
		return
	}
	p.onShadow(rec)
}

func (p *Proxy) emitTap(workload, user, method, path string, obj object.Object) {
	if p.tap == nil {
		return
	}
	if p.sink != nil {
		p.sink.enqueue(sinkEvent{kind: sinkTap,
			tap: tapEvent{workload: workload, user: user, method: method, path: path, obj: obj}})
		return
	}
	p.tap(workload, user, method, path, obj)
}

// recordShadow logs a would-deny verdict for a shadow-mode workload:
// the record lands in the entry's shadow log (never the denial log or
// the denied metric — nothing was denied) and the shadow callback.
func (p *Proxy) recordShadow(r *http.Request, user string,
	entry *registry.Entry, obj object.Object, violations []validator.Violation) {
	p.shadowed.Add(1)
	rec := ViolationRecord{
		Time:       time.Now(),
		User:       user,
		Method:     r.Method,
		RequestURI: r.URL.Path,
		Kind:       obj.Kind(),
		Name:       obj.Name(),
		Violations: violations,
	}
	entry.RecordShadowViolation(rec)
	rec.Workload = entry.Workload()
	p.emitShadow(rec)
}

// reject denies a request that violates policy (HTTP 403). kind and
// name identify the object for the audit record; on the raw path they
// come from the wire-byte scan, which matches the decoded accessors.
func (p *Proxy) reject(w http.ResponseWriter, r *http.Request, user string,
	entry *registry.Entry, kind, name string, violations []validator.Violation) {
	p.deny(w, r, user, entry, kind, name, http.StatusForbidden, violations)
}

// deny fails a request closed with the given status code, recording an
// audit-able denial record either way. Only policy rejections (403)
// count toward the denied metric: transport-level failures (unreadable,
// oversized, or unparseable-typed bodies) would otherwise skew the
// experiments' denial rates.
func (p *Proxy) deny(w http.ResponseWriter, r *http.Request, user string,
	entry *registry.Entry, kind, name string, code int, violations []validator.Violation) {
	if code == http.StatusForbidden {
		p.denied.Add(1)
	}
	rec := ViolationRecord{
		Time:       time.Now(),
		User:       user,
		Method:     r.Method,
		RequestURI: r.URL.Path,
		Kind:       kind,
		Name:       name,
		Violations: violations,
	}
	if entry != nil {
		rec.Workload = entry.Workload()
		entry.RecordViolation(rec)
	}
	p.violations.Append(rec)
	p.emitViolation(rec)

	msgs := make([]string, len(violations))
	for i, v := range violations {
		msgs[i] = v.String()
	}
	// Policy violations and transport-level rejections carry distinct
	// Status reasons so clients and audit sinks can tell them apart.
	reason, message := "KubeFencePolicyViolation", "request blocked by KubeFence policy: "
	if code != http.StatusForbidden {
		reason, message = "KubeFenceRequestRejected", "request rejected by KubeFence enforcement point: "
	}
	body := map[string]any{
		"kind":    "Status",
		"status":  "Failure",
		"reason":  reason,
		"message": message + strings.Join(msgs, "; "),
		"code":    code,
		"details": map[string]any{"violations": msgs},
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(body)
}

// forward relays the request upstream, asserting the original caller via
// front-proxy headers. Ownership of the pooled body buffer transfers to
// the upstream request: the transport's Body.Close returns it to the
// pool (releaseBody is idempotent and also covers the error paths).
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request, user string,
	groups []string, body []byte, releaseBody func()) {
	url := p.upstream + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, nil)
	if err != nil {
		releaseBody()
		http.Error(w, "building upstream request: "+err.Error(), http.StatusBadGateway)
		return
	}
	if len(body) > 0 {
		req.Body = &releaseReader{Reader: bytes.NewReader(body), release: releaseBody}
		req.ContentLength = int64(len(body))
	} else {
		// Nothing upstream will read; recycle the buffer immediately.
		releaseBody()
	}
	for k, vs := range r.Header {
		// Strip identity headers a client might try to smuggle.
		if k == "X-Forwarded-User" || k == "X-Forwarded-Group" || k == "X-Remote-User" || k == "X-Remote-Group" {
			continue
		}
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	req.Header.Set("X-Forwarded-User", user)
	for _, g := range groups {
		req.Header.Add("X-Forwarded-Group", g)
	}
	if p.proxyUser != "" {
		req.Header.Set("X-Remote-User", p.proxyUser)
	}

	resp, err := p.transport.RoundTrip(req)
	if err != nil {
		http.Error(w, "upstream error: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}
