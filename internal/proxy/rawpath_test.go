package proxy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"repro/internal/object"
	"repro/internal/validator"
)

// echoTransport completes round trips in memory, echoing the request
// body back — any pooled-buffer corruption (a buffer recycled while the
// upstream read is in flight) shows up as a mangled echo.
type echoTransport struct{}

func (echoTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	var buf bytes.Buffer
	if r.Body != nil {
		if _, err := io.Copy(&buf, r.Body); err != nil {
			return nil, err
		}
		r.Body.Close()
	}
	return &http.Response{
		StatusCode: http.StatusOK,
		Header:     http.Header{},
		Body:       io.NopCloser(&buf),
	}, nil
}

func newRawPathProxy(t *testing.T, mutate func(*Config)) *Proxy {
	t.Helper()
	cfg := Config{
		Upstream:  "http://upstream.invalid",
		Transport: echoTransport{},
		Validator: testPolicy(t),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func postJSON(t *testing.T, p *Proxy, o object.Object) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost,
		"/apis/apps/v1/namespaces/default/deployments", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Remote-User", "operator")
	rec := httptest.NewRecorder()
	p.ServeHTTP(rec, req)
	return rec
}

func TestRawFastPathDecidesAllowedRequests(t *testing.T) {
	p := newRawPathProxy(t, nil)
	for i := 0; i < 3; i++ {
		if rec := postJSON(t, p, goodDeployment()); rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	m := p.Metrics()
	if m.RawAllowed != 3 {
		t.Errorf("RawAllowed = %d, want 3 (every allowed request decided raw): %+v", m.RawAllowed, m)
	}
	if m.Denied != 0 || m.Inspected != 3 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestRawFastPathFallbackParityOnDenial(t *testing.T) {
	raw := newRawPathProxy(t, nil)
	classic := newRawPathProxy(t, func(c *Config) { c.DisableRawFastPath = true })

	recRaw := postJSON(t, raw, badDeployment())
	recClassic := postJSON(t, classic, badDeployment())
	if recRaw.Code != http.StatusForbidden || recClassic.Code != http.StatusForbidden {
		t.Fatalf("status raw=%d classic=%d, want 403/403", recRaw.Code, recClassic.Code)
	}
	// Byte-identical denial responses: the raw pipeline reproduces the
	// decode path's violation list exactly.
	if recRaw.Body.String() != recClassic.Body.String() {
		t.Errorf("denial bodies diverge:\nraw:     %s\nclassic: %s",
			recRaw.Body.String(), recClassic.Body.String())
	}
	vRaw, vClassic := raw.Violations(), classic.Violations()
	if len(vRaw) != 1 || len(vClassic) != 1 {
		t.Fatalf("violation logs: raw=%d classic=%d", len(vRaw), len(vClassic))
	}
	if vRaw[0].Kind != "Deployment" || vRaw[0].Name != "web" {
		t.Errorf("raw record kind/name = %q/%q", vRaw[0].Kind, vRaw[0].Name)
	}
	if !reflect.DeepEqual(vRaw[0].Violations, vClassic[0].Violations) {
		t.Errorf("violation lists diverge:\nraw:     %v\nclassic: %v",
			vRaw[0].Violations, vClassic[0].Violations)
	}
	if m := raw.Metrics(); m.RawAllowed != 0 || m.RawDenied != 0 {
		t.Errorf("uncached denial must take the decode path: %+v", m)
	}
}

func TestRawFastPathCachedDenialSkipsDecode(t *testing.T) {
	p := newRawPathProxy(t, func(c *Config) { c.CacheSize = 64 })
	first := postJSON(t, p, badDeployment())
	second := postJSON(t, p, badDeployment())
	if first.Code != http.StatusForbidden || second.Code != http.StatusForbidden {
		t.Fatalf("status %d/%d, want 403/403", first.Code, second.Code)
	}
	if first.Body.String() != second.Body.String() {
		t.Errorf("cached denial diverges from original:\nfirst:  %s\nsecond: %s",
			first.Body.String(), second.Body.String())
	}
	m := p.Metrics()
	if m.RawDenied != 1 {
		t.Errorf("RawDenied = %d, want 1 (second denial answered from raw bytes): %+v", m.RawDenied, m)
	}
	vs := p.Violations()
	if len(vs) != 2 || vs[1].Kind != "Deployment" || vs[1].Name != "web" {
		t.Fatalf("cached-denial record incomplete: %+v", vs)
	}
}

func TestRawFastPathNoPolicyRejectMatchesClassic(t *testing.T) {
	reject := func(disable bool) *httptest.ResponseRecorder {
		p := newRawPathProxy(t, func(c *Config) { c.DisableRawFastPath = disable })
		o := goodDeployment()
		o["kind"] = "Secret"
		delete(o, "apiVersion")
		return postJSON(t, p, o)
	}
	raw, classic := reject(false), reject(true)
	if raw.Code != classic.Code || raw.Body.String() != classic.Body.String() {
		t.Errorf("unmatched-kind rejections diverge:\nraw:     %d %s\nclassic: %d %s",
			raw.Code, raw.Body.String(), classic.Code, classic.Body.String())
	}
}

func TestDisableRawFastPath(t *testing.T) {
	p := newRawPathProxy(t, func(c *Config) { c.DisableRawFastPath = true })
	if rec := postJSON(t, p, goodDeployment()); rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if m := p.Metrics(); m.RawAllowed != 0 {
		t.Errorf("RawAllowed = %d with the fast path disabled", m.RawAllowed)
	}
}

func TestTapForcesDecodePath(t *testing.T) {
	var mu sync.Mutex
	var tapped []string
	p := newRawPathProxy(t, func(c *Config) {
		c.Tap = func(workload, user, method, path string, obj object.Object) {
			mu.Lock()
			defer mu.Unlock()
			tapped = append(tapped, obj.Kind()+"/"+obj.Name())
		}
	})
	if rec := postJSON(t, p, goodDeployment()); rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if m := p.Metrics(); m.RawAllowed != 0 {
		t.Errorf("tap-equipped proxy used the decode-free path: %+v", m)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(tapped) != 1 || tapped[0] != "Deployment/web" {
		t.Errorf("tapped = %v", tapped)
	}
}

// TestPooledBuffersSurviveConcurrency hammers the proxy with concurrent
// uniquely-named requests through the echo transport: a pooled body
// buffer recycled too early (or shared across requests) breaks the echo.
func TestPooledBuffersSurviveConcurrency(t *testing.T) {
	p := newRawPathProxy(t, nil)
	const goroutines, perG = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				o := goodDeployment()
				object.Set(o, "metadata.name", fmt.Sprintf("web-%d-%d", g, i))
				body, err := json.Marshal(o)
				if err != nil {
					errs <- err
					return
				}
				req := httptest.NewRequest(http.MethodPost,
					"/apis/apps/v1/namespaces/default/deployments", bytes.NewReader(body))
				req.Header.Set("Content-Type", "application/json")
				rec := httptest.NewRecorder()
				p.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("g%d i%d: status %d: %s", g, i, rec.Code, rec.Body.String())
					return
				}
				if !bytes.Equal(rec.Body.Bytes(), body) {
					errs <- fmt.Errorf("g%d i%d: echoed body corrupted", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if m := p.Metrics(); m.RawAllowed != goroutines*perG {
		t.Errorf("RawAllowed = %d, want %d", m.RawAllowed, goroutines*perG)
	}
}

// postYAML serializes the object as a YAML manifest and posts it with a
// YAML content type.
func postYAML(t *testing.T, p *Proxy, o object.Object) *httptest.ResponseRecorder {
	t.Helper()
	y, err := o.MarshalYAML()
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost,
		"/apis/apps/v1/namespaces/default/deployments", bytes.NewReader(y))
	req.Header.Set("Content-Type", "application/yaml")
	rec := httptest.NewRecorder()
	p.ServeHTTP(rec, req)
	return rec
}

// TestRawFastPathYAMLVouches: a plain YAML manifest of an enforce-mode
// workload is decided straight off the wire bytes, never decoded.
func TestRawFastPathYAMLVouches(t *testing.T) {
	p := newRawPathProxy(t, nil)
	o := goodDeployment()
	// The YAML encoder renders float64(2) as "2.0", which the raw
	// matcher (correctly) refuses to vouch for against an int-typed
	// policy cell; an integral literal keeps the body on the fast path.
	if err := object.Set(o, "spec.replicas", int64(2)); err != nil {
		t.Fatal(err)
	}
	if rec := postYAML(t, p, o); rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if m := p.Metrics(); m.RawAllowed != 1 {
		t.Errorf("YAML body was not decided on the raw path: %+v", m)
	}
}

// TestRawFastPathYAMLFloatForIntFallsBack: a YAML float literal feeding
// an int-typed policy cell is undecidable on the raw path — the proxy
// must fall back to the decode path and still allow the request.
func TestRawFastPathYAMLFloatForIntFallsBack(t *testing.T) {
	p := newRawPathProxy(t, nil)
	if rec := postYAML(t, p, goodDeployment()); rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if m := p.Metrics(); m.RawAllowed != 0 {
		t.Errorf("undecidable YAML body was vouched for on the raw path: %+v", m)
	}
}

// TestRawFastPathYAMLDeniesViaDecode: a violating YAML body is never
// vouched for by the raw pass; the decode path denies it with full
// diagnostics.
func TestRawFastPathYAMLDeniesViaDecode(t *testing.T) {
	p := newRawPathProxy(t, nil)
	o := badDeployment()
	if err := object.Set(o, "spec.replicas", int64(2)); err != nil {
		t.Fatal(err)
	}
	rec := postYAML(t, p, o)
	if rec.Code != http.StatusForbidden {
		t.Fatalf("violating YAML body not denied: status %d: %s", rec.Code, rec.Body.String())
	}
	if m := p.Metrics(); m.RawAllowed != 0 {
		t.Errorf("violating YAML body was vouched for: %+v", m)
	}
}

// TestRawFastPathInt64PrecisionEndToEnd: the wire-to-verdict pipeline
// must not round large integers before validation (satellite regression
// test with an int64-overflowing securityContext value).
func TestRawFastPathInt64PrecisionEndToEnd(t *testing.T) {
	pinned := mustParse(t, `
apiVersion: v1
kind: Pod
metadata:
  name: p
  namespace: default
spec:
  securityContext:
    runAsUser: 9007199254740993
`)
	pol, err := buildPolicy(pinned)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Upstream:  "http://upstream.invalid",
		Transport: echoTransport{},
		Validator: pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	exact := []byte(`{"apiVersion":"v1","kind":"Pod","metadata":{"name":"p","namespace":"default"},"spec":{"securityContext":{"runAsUser":9007199254740993}}}`)
	neighbor := bytes.Replace(exact, []byte("9007199254740993"), []byte("9007199254740992"), 1)

	send := func(body []byte) int {
		req := httptest.NewRequest(http.MethodPost,
			"/api/v1/namespaces/default/pods", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		p.ServeHTTP(rec, req)
		return rec.Code
	}
	if code := send(exact); code != http.StatusOK {
		t.Fatalf("exact pinned value denied: %d", code)
	}
	if code := send(neighbor); code != http.StatusForbidden {
		t.Fatalf("float53 neighbor of the pinned value allowed: %d — number precision lost before validation", code)
	}
}

func buildPolicy(docs ...object.Object) (*validator.Validator, error) {
	return validator.Build(docs, validator.BuildOptions{Workload: "pinned"})
}
