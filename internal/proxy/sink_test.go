package proxy

import (
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/object"
	"repro/internal/registry"
)

func TestAsyncSinkDeliversOffRequestGoroutine(t *testing.T) {
	type delivery struct {
		rec ViolationRecord
	}
	var mu sync.Mutex
	var got []delivery
	p := newRawPathProxy(t, func(c *Config) {
		c.SinkBuffer = 16
		c.OnViolation = func(rec ViolationRecord) {
			mu.Lock()
			defer mu.Unlock()
			got = append(got, delivery{rec})
		}
	})
	defer p.CloseSinks()
	if rec := postJSON(t, p, badDeployment()); rec.Code != http.StatusForbidden {
		t.Fatalf("status %d", rec.Code)
	}
	if !p.FlushSinks(5 * time.Second) {
		t.Fatal("sink did not drain")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].rec.Kind != "Deployment" || len(got[0].rec.Violations) == 0 {
		t.Fatalf("deliveries = %+v", got)
	}
	st := p.SinkStats()
	if st.Enqueued != 1 || st.Delivered != 1 || st.Dropped != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestAsyncSinkDropsWhenFullWithoutBlockingRequests stalls the sink
// callback and floods denials: requests must complete immediately, the
// overflow must be counted as drops, and accounting must balance.
func TestAsyncSinkDropsWhenFullWithoutBlockingRequests(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	p := newRawPathProxy(t, func(c *Config) {
		c.SinkBuffer = 2
		c.OnViolation = func(ViolationRecord) {
			select {
			case started <- struct{}{}:
			default:
			}
			<-release
		}
	})
	const denials = 20
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < denials; i++ {
			if rec := postJSON(t, p, badDeployment()); rec.Code != http.StatusForbidden {
				t.Errorf("request %d: status %d", i, rec.Code)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("requests blocked on a stalled sink")
	}
	<-started // the worker is wedged inside the first callback
	st := p.SinkStats()
	if st.Enqueued != denials {
		t.Fatalf("enqueued = %d, want %d", st.Enqueued, denials)
	}
	if st.Dropped == 0 {
		t.Fatalf("no drops recorded with a stalled sink and a 2-slot ring: %+v", st)
	}
	close(release)
	if !p.FlushSinks(5 * time.Second) {
		t.Fatal("sink did not drain after release")
	}
	st = p.SinkStats()
	if st.Delivered+st.Dropped != st.Enqueued {
		t.Errorf("accounting does not balance: %+v", st)
	}
	// The proxy's own bounded log stayed exact regardless of drops.
	if got := len(p.Violations()); got != denials {
		t.Errorf("violation log holds %d records, want %d", got, denials)
	}
	p.CloseSinks()
}

func TestAsyncSinkShadowAndTap(t *testing.T) {
	var mu sync.Mutex
	var shadows, taps int
	p := newRawPathProxy(t, func(c *Config) {
		c.SinkBuffer = 16
		c.OnShadowViolation = func(ViolationRecord) {
			mu.Lock()
			shadows++
			mu.Unlock()
		}
		c.Tap = func(workload, user, method, path string, obj object.Object) {
			mu.Lock()
			taps++
			mu.Unlock()
		}
	})
	defer p.CloseSinks()
	if err := p.Registry().SetMode("test", registry.ModeShadow); err != nil {
		t.Fatal(err)
	}
	// A would-deny in shadow mode: forwarded, recorded, tapped.
	if rec := postJSON(t, p, badDeployment()); rec.Code != http.StatusOK {
		t.Fatalf("shadow-mode would-deny not forwarded: %d", rec.Code)
	}
	if !p.FlushSinks(5 * time.Second) {
		t.Fatal("sink did not drain")
	}
	mu.Lock()
	defer mu.Unlock()
	if shadows != 1 || taps != 1 {
		t.Errorf("shadows=%d taps=%d, want 1/1", shadows, taps)
	}
}

func TestSynchronousSinkUnchanged(t *testing.T) {
	delivered := false
	p := newRawPathProxy(t, func(c *Config) {
		c.OnViolation = func(ViolationRecord) { delivered = true }
	})
	if rec := postJSON(t, p, badDeployment()); rec.Code != http.StatusForbidden {
		t.Fatalf("status %d", rec.Code)
	}
	// Synchronous: delivered before ServeHTTP returned, no sink stats.
	if !delivered {
		t.Fatal("synchronous callback not delivered inline")
	}
	if st := p.SinkStats(); st != (SinkStats{}) {
		t.Errorf("stats = %+v, want zero for synchronous sinks", st)
	}
	if !p.FlushSinks(time.Millisecond) {
		t.Error("FlushSinks must be a no-op success without an async sink")
	}
}

func TestCloseSinksDrains(t *testing.T) {
	var mu sync.Mutex
	count := 0
	p := newRawPathProxy(t, func(c *Config) {
		c.SinkBuffer = 64
		c.OnViolation = func(ViolationRecord) {
			mu.Lock()
			count++
			mu.Unlock()
		}
	})
	for i := 0; i < 10; i++ {
		if rec := postJSON(t, p, badDeployment()); rec.Code != http.StatusForbidden {
			t.Fatalf("status %d", rec.Code)
		}
	}
	p.CloseSinks()
	p.CloseSinks() // idempotent
	mu.Lock()
	defer mu.Unlock()
	if count != 10 {
		t.Errorf("CloseSinks drained %d of 10 events", count)
	}
}
