package proxy

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/learn"
	"repro/internal/object"
	"repro/internal/registry"
)

// TestRolloutModesEndToEnd drives one workload through the full
// learn → shadow → enforce lifecycle over real HTTP: learn-mode traffic
// is forwarded and mined, shadow-mode would-denies are recorded but
// forwarded, and the promoted policy denies what it never observed.
func TestRolloutModesEndToEnd(t *testing.T) {
	var upstreamHits int
	var mu sync.Mutex
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		upstreamHits++
		mu.Unlock()
		w.WriteHeader(http.StatusOK)
	}))
	defer upstream.Close()

	reg := registry.New(registry.Config{CacheSize: 64})
	ctl := learn.NewController(reg, learn.GateConfig{
		MinLearnRequests:  4,
		MinShadowRequests: 4,
	})
	if _, err := ctl.AddWorkload("web", registry.Selector{Namespace: "ns"}, learn.Options{}); err != nil {
		t.Fatal(err)
	}

	var tapped []string
	var shadowRecs []ViolationRecord
	p, err := New(Config{
		Upstream: upstream.URL,
		Registry: reg,
		Tap: func(workload, user, method, path string, obj object.Object) {
			mu.Lock()
			tapped = append(tapped, workload+" "+method+" "+obj.Kind())
			mu.Unlock()
		},
		OnShadowViolation: func(rec ViolationRecord) {
			mu.Lock()
			shadowRecs = append(shadowRecs, rec)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p)
	defer ts.Close()

	benign := map[string]any{
		"apiVersion": "v1",
		"kind":       "ConfigMap",
		"metadata":   map[string]any{"name": "cm", "namespace": "ns"},
		"data":       map[string]any{"key": "value"},
	}
	post := func(obj map[string]any) int {
		t.Helper()
		body, err := json.Marshal(obj)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/api/v1/namespaces/ns/configmaps",
			"application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// Learn phase: everything forwards.
	for i := 0; i < 5; i++ {
		if code := post(benign); code != http.StatusOK {
			t.Fatalf("learn-mode request denied: %d", code)
		}
	}
	if trs := ctl.Tick(); len(trs) != 1 || trs[0].To != registry.ModeShadow {
		t.Fatalf("expected learn→shadow, got %+v", trs)
	}

	// Shadow phase: a never-observed object would be denied, but is
	// forwarded — and the miner learns it through the feedback loop.
	novel := map[string]any{
		"apiVersion": "v1",
		"kind":       "ConfigMap",
		"metadata":   map[string]any{"name": "cm", "namespace": "ns"},
		"data":       map[string]any{"key": "value"},
		"binaryData": map[string]any{"blob": "AAAA"},
	}
	if code := post(novel); code != http.StatusOK {
		t.Fatalf("shadow mode must forward would-denied requests, got %d", code)
	}
	mu.Lock()
	nShadow := len(shadowRecs)
	mu.Unlock()
	if nShadow != 1 {
		t.Fatalf("shadow records = %d", nShadow)
	}
	e, _ := reg.Entry("web")
	if e.Metrics().Denied != 0 {
		t.Fatal("shadow verdict bumped the denied metric")
	}
	if got := len(e.ShadowViolations()); got != 1 {
		t.Fatalf("entry shadow log = %d", got)
	}

	// The controller publishes the grown candidate; a clean window then
	// promotes.
	ctl.Tick()
	for i := 0; i < 5; i++ {
		if code := post(novel); code != http.StatusOK {
			t.Fatalf("shadow-mode request denied: %d", code)
		}
	}
	trs := ctl.Tick()
	if len(trs) != 1 || trs[0].To != registry.ModeEnforce {
		t.Fatalf("expected shadow→enforce, got %+v (stats %+v)", trs, e.ShadowStats())
	}

	// Enforce phase: benign still flows, the unobserved field is denied.
	if code := post(novel); code != http.StatusOK {
		t.Fatalf("benign denied after promotion: %d", code)
	}
	attack := map[string]any{
		"apiVersion": "v1",
		"kind":       "ConfigMap",
		"metadata":   map[string]any{"name": "cm", "namespace": "ns"},
		"data":       map[string]any{"key": "value"},
		"immutable":  true,
	}
	if code := post(attack); code != http.StatusForbidden {
		t.Fatalf("unobserved field not denied after promotion: %d", code)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(tapped) == 0 || tapped[0] != "web POST ConfigMap" {
		t.Fatalf("tap records = %v", tapped)
	}
	if p.Metrics().Shadowed != 1 {
		t.Fatalf("proxy shadowed metric = %d", p.Metrics().Shadowed)
	}
}
