package proxy

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/client"
)

// TestUpstreamUnreachable injects an upstream failure: the proxy must turn
// connection errors into 502 responses, never hang or crash.
func TestUpstreamUnreachable(t *testing.T) {
	p, err := New(Config{
		Upstream:  "http://127.0.0.1:1", // nothing listens on port 1
		Validator: testPolicy(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p)
	defer ts.Close()

	c := client.New(ts.URL, client.WithUser("op"))
	_, err = c.Create(goodDeployment())
	ae, ok := err.(*client.APIError)
	if !ok || ae.Code != http.StatusBadGateway {
		t.Errorf("err = %v, want 502", err)
	}
	// Validation still runs before the failed forward: a bad request is
	// 403, not 502 — enforcement does not depend on upstream health.
	_, err = c.Create(badDeployment())
	if !client.IsForbidden(err) {
		t.Errorf("attack err = %v, want 403 even with upstream down", err)
	}
}

// TestUpstreamDropsMidResponse injects a connection reset mid-response.
func TestUpstreamDropsMidResponse(t *testing.T) {
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Fatal("no hijacker")
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			t.Fatal(err)
		}
		conn.Close() // drop without responding
	}))
	defer broken.Close()

	p, err := New(Config{Upstream: broken.URL, Validator: testPolicy(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p)
	defer ts.Close()

	c := client.New(ts.URL, client.WithUser("op"))
	_, err = c.Create(goodDeployment())
	if err == nil {
		t.Fatal("expected error from dropped upstream")
	}
	if client.IsForbidden(err) {
		t.Error("drop must not masquerade as a policy denial")
	}
}

// TestUpstreamSlowDoesNotBlockValidation: denials respond immediately even
// while other requests sit on a slow upstream.
func TestConcurrentMixedTraffic(t *testing.T) {
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusCreated)
		_, _ = w.Write([]byte(`{"kind":"Deployment","metadata":{"name":"x","resourceVersion":"1"}}`))
	}))
	defer upstream.Close()
	p, err := New(Config{Upstream: upstream.URL, Validator: testPolicy(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p)
	defer ts.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(attack bool) {
			defer wg.Done()
			c := client.New(ts.URL, client.WithUser("op"))
			for j := 0; j < 8; j++ {
				var err error
				if attack {
					_, err = c.Create(badDeployment())
					if !client.IsForbidden(err) {
						errs <- err
					}
				} else {
					if _, err = c.Create(goodDeployment()); err != nil {
						errs <- err
					}
				}
			}
		}(i%2 == 0)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent traffic error: %v", err)
	}
	m := p.Metrics()
	if m.Denied != 64 { // 8 attackers × 8 requests
		t.Errorf("denied = %d, want 64", m.Denied)
	}
}

// TestHugeBodyRejected: bodies beyond the proxy's limit are not buffered
// unboundedly.
func TestHugeBodyCapped(t *testing.T) {
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer upstream.Close()
	p, err := New(Config{Upstream: upstream.URL, Validator: testPolicy(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p)
	defer ts.Close()

	huge := `{"kind":"ConfigMap","metadata":{"name":"big"},"data":{"blob":"` +
		strings.Repeat("A", 5<<20) + `"}}`
	req, err := http.NewRequest(http.MethodPost,
		ts.URL+"/api/v1/namespaces/default/configmaps", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Oversized bodies are denied outright (never truncated-then-parsed:
	// a truncated parse could validate a prefix of the real object) and
	// never buffered unboundedly.
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("code = %d, want 413 (oversized body denied)", resp.StatusCode)
	}
	found := false
	for _, rec := range p.Violations() {
		for _, v := range rec.Violations {
			if strings.Contains(v.Reason, "inspection limit") {
				found = true
			}
		}
	}
	if !found {
		t.Error("oversized body left no audit-able denial record")
	}
}

func TestViolationRecordSnapshotIsolated(t *testing.T) {
	f := newHTTPFixture(t)
	c := client.New(f.proxyTS.URL, client.WithUser("a"))
	if _, err := c.Create(badDeployment()); !client.IsForbidden(err) {
		t.Fatal(err)
	}
	snap := f.proxy.Violations()
	if len(snap) != 1 {
		t.Fatal("no record")
	}
	snap[0].User = "tampered"
	if f.proxy.Violations()[0].User == "tampered" {
		t.Error("snapshot aliases internal state")
	}
	f.proxy.ResetViolations()
	if len(f.proxy.Violations()) != 0 {
		t.Error("reset failed")
	}
}
