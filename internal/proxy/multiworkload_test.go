package proxy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/apiserver"
	"repro/internal/client"
	"repro/internal/object"
	"repro/internal/registry"
	"repro/internal/store"
	"repro/internal/validator"
)

// tenantPolicy builds a policy allowing ConfigMaps whose data has the
// single key named after the tenant — so tenant policies are mutually
// exclusive and misrouting is observable.
func tenantPolicy(t testing.TB, tenant string) *validator.Validator {
	t.Helper()
	v, err := validator.Build([]object.Object{{
		"apiVersion": "v1",
		"kind":       "ConfigMap",
		"metadata":   map[string]any{"name": "cm", "namespace": tenant},
		"data":       map[string]any{tenant: "string"},
	}}, validator.BuildOptions{Workload: tenant})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func tenantConfigMap(tenant, namespace string) object.Object {
	return object.Object{
		"apiVersion": "v1",
		"kind":       "ConfigMap",
		"metadata":   map[string]any{"name": "cm-" + tenant, "namespace": namespace},
		"data":       map[string]any{tenant: "value"},
	}
}

// multiFixture wires client → registry-backed proxy → apiserver.
type multiFixture struct {
	reg     *registry.Registry
	proxy   *Proxy
	proxyTS *httptest.Server
}

func newMultiFixture(t *testing.T, cacheSize int, tenants ...string) *multiFixture {
	t.Helper()
	api, err := apiserver.New(apiserver.Config{
		Store:           store.New(),
		FrontProxyUsers: []string{"kubefence-proxy"},
	})
	if err != nil {
		t.Fatal(err)
	}
	apiTS := httptest.NewServer(api)
	t.Cleanup(apiTS.Close)

	reg := registry.New(registry.Config{CacheSize: cacheSize})
	for _, tenant := range tenants {
		if _, err := reg.Register(tenant, registry.Selector{Namespace: tenant}, tenantPolicy(t, tenant)); err != nil {
			t.Fatal(err)
		}
	}
	p, err := New(Config{
		Upstream:  apiTS.URL,
		Registry:  reg,
		ProxyUser: "kubefence-proxy",
	})
	if err != nil {
		t.Fatal(err)
	}
	proxyTS := httptest.NewServer(p)
	t.Cleanup(proxyTS.Close)
	return &multiFixture{reg: reg, proxy: p, proxyTS: proxyTS}
}

func TestMultiWorkloadPerNamespaceResolution(t *testing.T) {
	f := newMultiFixture(t, 0, "alpha", "beta")
	c := client.New(f.proxyTS.URL, client.WithUser("operator"))

	// Each tenant's object is admitted in its own namespace.
	for _, tenant := range []string{"alpha", "beta"} {
		if _, err := c.Create(tenantConfigMap(tenant, tenant)); err != nil {
			t.Fatalf("tenant %s conforming request denied: %v", tenant, err)
		}
	}
	// An alpha-shaped object in beta's namespace is judged by beta's
	// policy and denied — enforcement is per-workload, not global union.
	_, err := c.Create(tenantConfigMap("alpha", "beta"))
	if !client.IsForbidden(err) {
		t.Fatalf("cross-tenant object admitted: %v", err)
	}

	// The denial is attributed to beta.
	viols := f.reg.Violations()
	if len(viols["beta"]) != 1 {
		t.Fatalf("beta violations = %v", viols)
	}
	if len(viols["alpha"]) != 0 {
		t.Errorf("alpha wrongly charged: %v", viols["alpha"])
	}
	rec := viols["beta"][0]
	if rec.Workload != "beta" || rec.Kind != "ConfigMap" {
		t.Errorf("record = %+v", rec)
	}
	// Per-workload metrics saw the traffic.
	m := f.reg.Metrics()
	if m["alpha"].Requests != 1 || m["alpha"].Denied != 0 {
		t.Errorf("alpha metrics = %+v", m["alpha"])
	}
	if m["beta"].Requests != 2 || m["beta"].Denied != 1 {
		t.Errorf("beta metrics = %+v", m["beta"])
	}
}

func TestMultiWorkloadFailsClosed(t *testing.T) {
	f := newMultiFixture(t, 0, "alpha")
	c := client.New(f.proxyTS.URL, client.WithUser("operator"))
	_, err := c.Create(tenantConfigMap("alpha", "unclaimed"))
	if !client.IsForbidden(err) {
		t.Fatalf("request in unclaimed namespace admitted: %v", err)
	}
	viols := f.proxy.Violations()
	if len(viols) != 1 {
		t.Fatalf("violations = %d", len(viols))
	}
	if viols[0].Workload != "" {
		t.Errorf("unattributable denial charged to %q", viols[0].Workload)
	}
}

func TestMultiWorkloadDecisionCache(t *testing.T) {
	f := newMultiFixture(t, 128, "alpha")
	body, err := json.Marshal(tenantConfigMap("alpha", "alpha"))
	if err != nil {
		t.Fatal(err)
	}
	// The same wire bytes re-validated five times — the operator
	// reconcile-loop pattern. Only the first decision runs the validator.
	for i := 0; i < 5; i++ {
		resp, err := http.Post(f.proxyTS.URL+"/api/v1/namespaces/alpha/configmaps",
			"application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusForbidden {
			t.Fatalf("request %d denied", i)
		}
	}
	m := f.reg.Metrics()["alpha"]
	if m.Requests != 5 {
		t.Fatalf("requests = %d, want 5", m.Requests)
	}
	if m.CacheHits != 4 {
		t.Errorf("cache hits = %d, want 4", m.CacheHits)
	}
}

// TestHotSwapUnderLoad swaps the enforced policy while concurrent
// clients stream conforming requests: no request may ever see a nil or
// torn policy, and after the final swap to a denying policy the stream
// is rejected.
func TestHotSwapUnderLoad(t *testing.T) {
	f := newHTTPFixture(t)
	const (
		writers = 6
		perG    = 50
	)
	allowA := testPolicy(t) // the fixture's policy
	allowB := testPolicy(t) // equivalent policy, distinct pointer

	stop := make(chan struct{})
	var swapper sync.WaitGroup
	// Swapper: flip between two equivalent policies continuously,
	// yielding each round so the writers always make progress.
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				f.proxy.SetValidator(allowA)
			} else {
				f.proxy.SetValidator(allowB)
			}
			runtime.Gosched()
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, writers*perG)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := client.New(f.proxyTS.URL, client.WithUser(fmt.Sprintf("operator-%d", g)))
			for i := 0; i < perG; i++ {
				o := goodDeployment()
				_ = object.Set(o, "metadata.name", fmt.Sprintf("web-%d-%d", g, i))
				if _, err := c.Create(o); err != nil {
					errs <- fmt.Errorf("writer %d: %w", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	swapper.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if m := f.proxy.Metrics(); m.Denied != 0 {
		t.Fatalf("conforming traffic denied %d times during hot-swap", m.Denied)
	}

	// A swap to a restrictive policy takes effect for subsequent traffic.
	deny, err := validator.Build([]object.Object{{
		"apiVersion": "v1",
		"kind":       "Secret",
		"metadata":   map[string]any{"name": "s", "namespace": "default"},
	}}, validator.BuildOptions{Workload: "deny"})
	if err != nil {
		t.Fatal(err)
	}
	f.proxy.SetValidator(deny)
	c := client.New(f.proxyTS.URL, client.WithUser("operator"))
	if _, err := c.Create(goodDeployment()); !client.IsForbidden(err) {
		t.Fatalf("swapped-in policy not enforced: %v", err)
	}
}

func TestRequestNamespace(t *testing.T) {
	tests := []struct {
		path string
		want string
	}{
		{"/api/v1/namespaces/web/configmaps", "web"},
		{"/apis/apps/v1/namespaces/db/deployments/x", "db"},
		{"/api/v1/namespaces/web", "web"},
		{"/api/v1/nodes", ""},
		{"/apis/rbac.authorization.k8s.io/v1/clusterroles", ""},
	}
	for _, tt := range tests {
		if got := requestNamespace(tt.path); got != tt.want {
			t.Errorf("requestNamespace(%q) = %q, want %q", tt.path, got, tt.want)
		}
	}
}

// TestProxyViolationLogIsBounded floods the proxy with denied requests
// and checks the global denial log stays capped (denials are
// attacker-triggerable, so an unbounded log is a memory amplifier).
func TestProxyViolationLogIsBounded(t *testing.T) {
	f := newMultiFixture(t, 0, "alpha")
	for i := 0; i < registry.MaxRecords+25; i++ {
		req := httptest.NewRequest(http.MethodPost, "/api/v1/namespaces/unclaimed/things",
			strings.NewReader(fmt.Sprintf(`{"kind":"ConfigMap","metadata":{"name":"x%d","namespace":"unclaimed"}}`, i)))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		f.proxy.ServeHTTP(rec, req)
		if rec.Code != http.StatusForbidden {
			t.Fatalf("request %d: status %d", i, rec.Code)
		}
	}
	viols := f.proxy.Violations()
	if len(viols) != registry.MaxRecords {
		t.Fatalf("log length = %d, want %d", len(viols), registry.MaxRecords)
	}
	if got := viols[len(viols)-1].Name; got != fmt.Sprintf("x%d", registry.MaxRecords+24) {
		t.Errorf("newest record = %s", got)
	}
	if m := f.proxy.Metrics(); m.Denied != registry.MaxRecords+25 {
		t.Errorf("denied counter = %d, want %d", m.Denied, registry.MaxRecords+25)
	}
}

// TestSetValidatorNilIsIgnored guards the no-op contract: a nil swap
// must never clear the enforced policy.
func TestSetValidatorNilIsIgnored(t *testing.T) {
	f := newHTTPFixture(t)
	f.proxy.SetValidator(nil)
	c := client.New(f.proxyTS.URL, client.WithUser("operator"))
	if _, err := c.Create(goodDeployment()); err != nil {
		t.Fatalf("policy lost after SetValidator(nil): %v", err)
	}
}

// TestSetValidatorNoOpOnRegistryProxy guards the fail-closed guarantee:
// the legacy SetValidator must not install a cluster-wide wildcard
// policy on a registry-backed (multi-tenant) proxy.
func TestSetValidatorNoOpOnRegistryProxy(t *testing.T) {
	f := newMultiFixture(t, 0, "alpha")
	f.proxy.SetValidator(tenantPolicy(t, "wildcard"))
	c := client.New(f.proxyTS.URL, client.WithUser("operator"))
	if _, err := c.Create(tenantConfigMap("wildcard", "unclaimed")); !client.IsForbidden(err) {
		t.Fatalf("SetValidator opened a wildcard hole in a fail-closed proxy: %v", err)
	}
	if got := f.reg.Workloads(); len(got) != 1 || got[0] != "alpha" {
		t.Fatalf("registry workloads = %v, want [alpha]", got)
	}
}
