package charts

import "repro/internal/chart"

// rabbitmqChart re-creates the bitnami/rabbitmq operator footprint:
// StatefulSet, Service (×2), NetworkPolicy, Ingress (management UI),
// ServiceAccount, PodDisruptionBudget, Secret, Role, RoleBinding (paper
// Fig. 9, row 4). The Role grants endpoint discovery for the Kubernetes
// peer-discovery plugin, like upstream.
func rabbitmqChart() chart.Fileset {
	return chart.Fileset{
		"Chart.yaml": `
name: rabbitmq
version: 12.15.0
appVersion: "3.12.13"
description: RabbitMQ message broker packaged as a Kubernetes operator chart
`,
		"values.yaml": `
replicaCount: 1
image:
  registry: docker.io
  repository: bitnami/rabbitmq
  tag: "3.12.13-debian-12"
  # IfNotPresent or Always
  pullPolicy: IfNotPresent
auth:
  username: user
  password: changeme-rabbit
  erlangCookie: secret-erlang-cookie
clustering:
  enabled: true
  # hostname or ip
  addressType: hostname
  forceBoot: false
containerPorts:
  amqp: 5672
  dist: 25672
  manager: 15672
  epmd: 4369
memoryHighWatermark:
  enabled: false
  # absolute or relative
  type: relative
  value: 0.4
podSecurityContext:
  enabled: true
  fsGroup: 1001
containerSecurityContext:
  enabled: true
  runAsUser: 1001
  runAsNonRoot: true
  allowPrivilegeEscalation: false
  readOnlyRootFilesystem: true
resources:
  limits:
    cpu: 1000m
    memory: 2Gi
  requests:
    cpu: 500m
    memory: 1Gi
service:
  # ClusterIP or NodePort or LoadBalancer
  type: ClusterIP
  ports:
    amqp: 5672
    manager: 15672
networkPolicy:
  enabled: true
  allowExternal: true
serviceAccount:
  create: true
  name: ""
rbac:
  create: true
pdb:
  create: true
  maxUnavailable: 1
ingress:
  enabled: true
  hostname: rabbitmq.local
  # Prefix or Exact
  pathType: Prefix
  path: /
persistence:
  enabled: true
  size: 8Gi
`,
		"templates/_helpers.tpl": commonHelpers("rabbitmq"),
		"templates/statefulset.yaml": `
apiVersion: apps/v1
kind: StatefulSet
metadata:
  name: {{ include "rabbitmq.fullname" . }}
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "rabbitmq.labels" . | nindent 4 }}
spec:
  replicas: {{ .Values.replicaCount }}
  serviceName: {{ include "rabbitmq.fullname" . }}-headless
  podManagementPolicy: OrderedReady
  updateStrategy:
    type: RollingUpdate
  selector:
    matchLabels:
      {{- include "rabbitmq.matchLabels" . | nindent 6 }}
  template:
    metadata:
      labels:
        {{- include "rabbitmq.labels" . | nindent 8 }}
    spec:
      serviceAccountName: {{ include "rabbitmq.serviceAccountName" . }}
      terminationGracePeriodSeconds: 120
      {{- if .Values.podSecurityContext.enabled }}
      securityContext:
        fsGroup: {{ .Values.podSecurityContext.fsGroup }}
      {{- end }}
      containers:
        - name: rabbitmq
          image: {{ include "rabbitmq.image" . }}
          imagePullPolicy: {{ .Values.image.pullPolicy | quote }}
          {{- if .Values.containerSecurityContext.enabled }}
          securityContext:
            runAsUser: {{ .Values.containerSecurityContext.runAsUser }}
            runAsNonRoot: {{ .Values.containerSecurityContext.runAsNonRoot }}
            allowPrivilegeEscalation: {{ .Values.containerSecurityContext.allowPrivilegeEscalation }}
            readOnlyRootFilesystem: {{ .Values.containerSecurityContext.readOnlyRootFilesystem }}
          {{- end }}
          ports:
            - name: amqp
              containerPort: {{ .Values.containerPorts.amqp }}
            - name: dist
              containerPort: {{ .Values.containerPorts.dist }}
            - name: stats
              containerPort: {{ .Values.containerPorts.manager }}
            - name: epmd
              containerPort: {{ .Values.containerPorts.epmd }}
          env:
            - name: RABBITMQ_USERNAME
              value: {{ .Values.auth.username | quote }}
            - name: RABBITMQ_PASSWORD
              valueFrom:
                secretKeyRef:
                  name: {{ include "rabbitmq.fullname" . }}
                  key: rabbitmq-password
            - name: RABBITMQ_ERL_COOKIE
              valueFrom:
                secretKeyRef:
                  name: {{ include "rabbitmq.fullname" . }}
                  key: rabbitmq-erlang-cookie
            {{- if .Values.clustering.enabled }}
            - name: RABBITMQ_CLUSTER_ADDRESS_TYPE
              value: {{ .Values.clustering.addressType | quote }}
            - name: RABBITMQ_FORCE_BOOT
              value: {{ .Values.clustering.forceBoot | quote }}
            {{- end }}
            {{- if .Values.memoryHighWatermark.enabled }}
            - name: RABBITMQ_VM_MEMORY_HIGH_WATERMARK_TYPE
              value: {{ .Values.memoryHighWatermark.type | quote }}
            - name: RABBITMQ_VM_MEMORY_HIGH_WATERMARK
              value: {{ .Values.memoryHighWatermark.value | quote }}
            {{- end }}
          livenessProbe:
            exec:
              command:
                - /bin/sh
                - -ec
                - rabbitmq-diagnostics -q ping
            initialDelaySeconds: 120
            periodSeconds: 30
            timeoutSeconds: 20
          readinessProbe:
            exec:
              command:
                - /bin/sh
                - -ec
                - rabbitmq-diagnostics -q check_running
            initialDelaySeconds: 10
            periodSeconds: 30
            timeoutSeconds: 20
          resources:
            {{- toYaml .Values.resources | nindent 12 }}
          volumeMounts:
            - name: data
              mountPath: /bitnami/rabbitmq/mnesia
      {{- if not .Values.persistence.enabled }}
      volumes:
        - name: data
          emptyDir: {}
      {{- end }}
  {{- if .Values.persistence.enabled }}
  volumeClaimTemplates:
    - metadata:
        name: data
      spec:
        accessModes:
          - ReadWriteOnce
        resources:
          requests:
            storage: {{ .Values.persistence.size | quote }}
  {{- end }}
`,
		"templates/service.yaml": `
apiVersion: v1
kind: Service
metadata:
  name: {{ include "rabbitmq.fullname" . }}
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "rabbitmq.labels" . | nindent 4 }}
spec:
  type: {{ .Values.service.type }}
  ports:
    - name: amqp
      port: {{ .Values.service.ports.amqp }}
      targetPort: amqp
      protocol: TCP
    - name: stats
      port: {{ .Values.service.ports.manager }}
      targetPort: stats
      protocol: TCP
  selector:
    {{- include "rabbitmq.matchLabels" . | nindent 4 }}
---
apiVersion: v1
kind: Service
metadata:
  name: {{ include "rabbitmq.fullname" . }}-headless
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "rabbitmq.labels" . | nindent 4 }}
spec:
  type: ClusterIP
  clusterIP: None
  publishNotReadyAddresses: true
  ports:
    - name: epmd
      port: {{ .Values.containerPorts.epmd }}
      targetPort: epmd
    - name: amqp
      port: {{ .Values.containerPorts.amqp }}
      targetPort: amqp
    - name: dist
      port: {{ .Values.containerPorts.dist }}
      targetPort: dist
  selector:
    {{- include "rabbitmq.matchLabels" . | nindent 4 }}
`,
		"templates/networkpolicy.yaml": `
{{- if .Values.networkPolicy.enabled }}
apiVersion: networking.k8s.io/v1
kind: NetworkPolicy
metadata:
  name: {{ include "rabbitmq.fullname" . }}
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "rabbitmq.labels" . | nindent 4 }}
spec:
  podSelector:
    matchLabels:
      {{- include "rabbitmq.matchLabels" . | nindent 6 }}
  policyTypes:
    - Ingress
  ingress:
    - ports:
        - port: {{ .Values.containerPorts.amqp }}
        - port: {{ .Values.containerPorts.manager }}
        - port: {{ .Values.containerPorts.epmd }}
        - port: {{ .Values.containerPorts.dist }}
      {{- if not .Values.networkPolicy.allowExternal }}
      from:
        - podSelector:
            matchLabels:
              {{ include "rabbitmq.fullname" . }}-client: "true"
        - podSelector:
            matchLabels:
              {{- include "rabbitmq.matchLabels" . | nindent 14 }}
      {{- end }}
{{- end }}
`,
		"templates/serviceaccount.yaml": `
{{- if .Values.serviceAccount.create }}
apiVersion: v1
kind: ServiceAccount
metadata:
  name: {{ include "rabbitmq.serviceAccountName" . }}
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "rabbitmq.labels" . | nindent 4 }}
automountServiceAccountToken: true
secrets:
  - name: {{ include "rabbitmq.fullname" . }}
{{- end }}
`,
		"templates/secret.yaml": `
apiVersion: v1
kind: Secret
metadata:
  name: {{ include "rabbitmq.fullname" . }}
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "rabbitmq.labels" . | nindent 4 }}
type: Opaque
stringData:
  rabbitmq-password: {{ .Values.auth.password | quote }}
  rabbitmq-erlang-cookie: {{ .Values.auth.erlangCookie | quote }}
`,
		"templates/role.yaml": `
{{- if .Values.rbac.create }}
apiVersion: rbac.authorization.k8s.io/v1
kind: Role
metadata:
  name: {{ include "rabbitmq.fullname" . }}-endpoint-reader
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "rabbitmq.labels" . | nindent 4 }}
rules:
  - apiGroups:
      - ""
    resources:
      - endpoints
    verbs:
      - get
  - apiGroups:
      - ""
    resources:
      - events
    verbs:
      - create
{{- end }}
`,
		"templates/rolebinding.yaml": `
{{- if .Values.rbac.create }}
apiVersion: rbac.authorization.k8s.io/v1
kind: RoleBinding
metadata:
  name: {{ include "rabbitmq.fullname" . }}-endpoint-reader
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "rabbitmq.labels" . | nindent 4 }}
roleRef:
  apiGroup: rbac.authorization.k8s.io
  kind: Role
  name: {{ include "rabbitmq.fullname" . }}-endpoint-reader
subjects:
  - kind: ServiceAccount
    name: {{ include "rabbitmq.serviceAccountName" . }}
    namespace: {{ .Release.Namespace }}
{{- end }}
`,
		"templates/pdb.yaml": `
{{- if .Values.pdb.create }}
apiVersion: policy/v1
kind: PodDisruptionBudget
metadata:
  name: {{ include "rabbitmq.fullname" . }}
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "rabbitmq.labels" . | nindent 4 }}
spec:
  maxUnavailable: {{ .Values.pdb.maxUnavailable }}
  selector:
    matchLabels:
      {{- include "rabbitmq.matchLabels" . | nindent 6 }}
{{- end }}
`,
		"templates/ingress.yaml": `
{{- if .Values.ingress.enabled }}
apiVersion: networking.k8s.io/v1
kind: Ingress
metadata:
  name: {{ include "rabbitmq.fullname" . }}
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "rabbitmq.labels" . | nindent 4 }}
spec:
  rules:
    - host: {{ .Values.ingress.hostname | quote }}
      http:
        paths:
          - path: {{ .Values.ingress.path }}
            pathType: {{ .Values.ingress.pathType }}
            backend:
              service:
                name: {{ include "rabbitmq.fullname" . }}
                port:
                  name: stats
{{- end }}
`,
	}
}
