package charts

import "repro/internal/chart"

// mlflowChart re-creates the community-charts/mlflow operator footprint:
// Deployment, Service, ConfigMap, Ingress, ServiceAccount, Secret (paper
// Fig. 9, row 2). The values layout follows the paper's Fig. 7 example,
// including the backend-store conditional from Fig. 3.
func mlflowChart() chart.Fileset {
	return chart.Fileset{
		"Chart.yaml": `
name: mlflow
version: 0.7.19
appVersion: "2.9.2"
description: MLflow experiment-tracking server
`,
		"values.yaml": `
replicaCount: 1
image:
  registry: docker.io
  repository: bitnami/mlflow
  tag: "2.9.2"
  # IfNotPresent or Always
  pullPolicy: IfNotPresent
tracking:
  enabled: true
  host: "0.0.0.0"
  port: 5000
  # Log level. one of: debug, info, warning
  logLevel: info
backendStore:
  postgres:
    enabled: false
    host: postgres.local
    port: 5432
    database: mlflow
    user: mlflow
    password: mlflow-pass
artifactRoot:
  defaultArtifactRoot: ./mlruns
  s3:
    enabled: false
    bucket: mlflow-artifacts
    awsAccessKeyId: ""
    awsSecretAccessKey: ""
extraArgs: {}
containerSecurityContext:
  runAsUser: 1001
  runAsNonRoot: true
  allowPrivilegeEscalation: false
resources:
  limits:
    cpu: 500m
    memory: 512Mi
  requests:
    cpu: 250m
    memory: 256Mi
service:
  # ClusterIP or NodePort
  type: ClusterIP
  port: 5000
serviceAccount:
  create: true
  name: ""
ingress:
  enabled: true
  className: nginx
  host: mlflow.local
  path: /
  # Prefix or Exact or ImplementationSpecific
  pathType: Prefix
  tls:
    enabled: false
    secretName: mlflow-tls
`,
		"templates/_helpers.tpl": commonHelpers("mlflow"),
		"templates/deployment.yaml": `
apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ include "mlflow.fullname" . }}
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "mlflow.labels" . | nindent 4 }}
spec:
  replicas: {{ .Values.replicaCount }}
  selector:
    matchLabels:
      {{- include "mlflow.matchLabels" . | nindent 6 }}
  template:
    metadata:
      labels:
        {{- include "mlflow.labels" . | nindent 8 }}
    spec:
      serviceAccountName: {{ include "mlflow.serviceAccountName" . }}
      containers:
        - name: mlflow
          image: {{ include "mlflow.image" . }}
          imagePullPolicy: {{ .Values.image.pullPolicy | quote }}
          securityContext:
            runAsUser: {{ .Values.containerSecurityContext.runAsUser }}
            runAsNonRoot: {{ .Values.containerSecurityContext.runAsNonRoot }}
            allowPrivilegeEscalation: {{ .Values.containerSecurityContext.allowPrivilegeEscalation }}
          ports:
            - name: http
              containerPort: {{ .Values.tracking.port }}
          env:
            - name: MLFLOW_HOST
              value: {{ .Values.tracking.host | quote }}
            - name: MLFLOW_LOG_LEVEL
              value: {{ .Values.tracking.logLevel | quote }}
            {{- if .Values.backendStore.postgres.enabled }}
            - name: PGHOST
              value: {{ .Values.backendStore.postgres.host | quote }}
            - name: PGPORT
              value: {{ .Values.backendStore.postgres.port | quote }}
            - name: PGDATABASE
              value: {{ .Values.backendStore.postgres.database | quote }}
            - name: PGUSER
              valueFrom:
                secretKeyRef:
                  name: {{ include "mlflow.fullname" . }}-env-secret
                  key: PGUSER
            - name: PGPASSWORD
              valueFrom:
                secretKeyRef:
                  name: {{ include "mlflow.fullname" . }}-env-secret
                  key: PGPASSWORD
            {{- end }}
            {{- if .Values.artifactRoot.s3.enabled }}
            - name: AWS_ACCESS_KEY_ID
              valueFrom:
                secretKeyRef:
                  name: {{ include "mlflow.fullname" . }}-env-secret
                  key: AWS_ACCESS_KEY_ID
            - name: AWS_SECRET_ACCESS_KEY
              valueFrom:
                secretKeyRef:
                  name: {{ include "mlflow.fullname" . }}-env-secret
                  key: AWS_SECRET_ACCESS_KEY
            {{- end }}
          readinessProbe:
            httpGet:
              path: /health
              port: http
            initialDelaySeconds: 10
            periodSeconds: 10
          resources:
            {{- toYaml .Values.resources | nindent 12 }}
          volumeMounts:
            - name: config
              mountPath: /etc/mlflow
      volumes:
        - name: config
          configMap:
            name: {{ include "mlflow.fullname" . }}-config
`,
		"templates/service.yaml": `
apiVersion: v1
kind: Service
metadata:
  name: {{ include "mlflow.fullname" . }}
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "mlflow.labels" . | nindent 4 }}
spec:
  type: {{ .Values.service.type }}
  ports:
    - name: http
      port: {{ .Values.service.port }}
      targetPort: http
      protocol: TCP
  selector:
    {{- include "mlflow.matchLabels" . | nindent 4 }}
`,
		"templates/configmap.yaml": `
apiVersion: v1
kind: ConfigMap
metadata:
  name: {{ include "mlflow.fullname" . }}-config
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "mlflow.labels" . | nindent 4 }}
data:
  default-artifact-root: {{ .Values.artifactRoot.defaultArtifactRoot | quote }}
  tracking-host: {{ .Values.tracking.host | quote }}
  log-level: {{ .Values.tracking.logLevel | quote }}
`,
		"templates/secret.yaml": `
{{- if or .Values.backendStore.postgres.enabled .Values.artifactRoot.s3.enabled }}
apiVersion: v1
kind: Secret
metadata:
  name: {{ include "mlflow.fullname" . }}-env-secret
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "mlflow.labels" . | nindent 4 }}
type: Opaque
stringData:
  {{- if .Values.backendStore.postgres.enabled }}
  PGUSER: {{ .Values.backendStore.postgres.user | quote }}
  PGPASSWORD: {{ .Values.backendStore.postgres.password | quote }}
  {{- end }}
  {{- if .Values.artifactRoot.s3.enabled }}
  AWS_ACCESS_KEY_ID: {{ .Values.artifactRoot.s3.awsAccessKeyId | quote }}
  AWS_SECRET_ACCESS_KEY: {{ .Values.artifactRoot.s3.awsSecretAccessKey | quote }}
  {{- end }}
{{- end }}
`,
		"templates/serviceaccount.yaml": `
{{- if .Values.serviceAccount.create }}
apiVersion: v1
kind: ServiceAccount
metadata:
  name: {{ include "mlflow.serviceAccountName" . }}
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "mlflow.labels" . | nindent 4 }}
{{- end }}
`,
		"templates/ingress.yaml": `
{{- if .Values.ingress.enabled }}
apiVersion: networking.k8s.io/v1
kind: Ingress
metadata:
  name: {{ include "mlflow.fullname" . }}
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "mlflow.labels" . | nindent 4 }}
spec:
  ingressClassName: {{ .Values.ingress.className }}
  rules:
    - host: {{ .Values.ingress.host | quote }}
      http:
        paths:
          - path: {{ .Values.ingress.path }}
            pathType: {{ .Values.ingress.pathType }}
            backend:
              service:
                name: {{ include "mlflow.fullname" . }}
                port:
                  name: http
  {{- if .Values.ingress.tls.enabled }}
  tls:
    - hosts:
        - {{ .Values.ingress.host | quote }}
      secretName: {{ .Values.ingress.tls.secretName }}
  {{- end }}
{{- end }}
`,
	}
}
