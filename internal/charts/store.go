package charts

import "repro/internal/chart"

// storeChart is the multi-service application scenario: three
// cooperating services (store-api, order-processor, customer-db) in one
// release, with the NetworkPolicy / ServiceAccount / RBAC surfaces a
// real cluster mixes across services and per-component credential
// Secrets. It exists to exercise what single-workload validation cannot:
// the cross-resource invariant class ("the DB pod never mounts the API's
// secrets", internal/invariant) keyed off the component labels and the
// ownership labels stamped on each Secret.
//
// The chart is intentionally NOT part of Names(): the five-chart corpus
// is the paper's Fig. 9 evaluation set and its committed baselines
// (BENCH_robustness.json, BENCH_learning.json) depend on it. The store
// scenario rides the scenarios experiment (internal/experiments) and the
// examples/multi-service walkthrough instead.
func storeChart() chart.Fileset {
	return chart.Fileset{
		"Chart.yaml": `
name: store
version: 1.2.0
appVersion: "2.7.1"
description: Multi-service storefront (API, order processor, customer DB) packaged as one release
`,
		"values.yaml": `
api:
  replicaCount: 2
  image:
    registry: docker.io
    repository: example/store-api
    tag: "2.7.1"
    # IfNotPresent or Always
    pullPolicy: IfNotPresent
  containerPort: 8080
  resources:
    limits:
      cpu: 250m
      memory: 256Mi
    requests:
      cpu: 100m
      memory: 128Mi
processor:
  replicaCount: 1
  image:
    registry: docker.io
    repository: example/order-processor
    tag: "2.7.1"
    # IfNotPresent or Always
    pullPolicy: IfNotPresent
  containerPort: 9090
  resources:
    limits:
      cpu: 200m
      memory: 192Mi
    requests:
      cpu: 50m
      memory: 96Mi
db:
  replicas: 1
  image:
    registry: docker.io
    repository: example/customer-db
    tag: "16.2.0"
    # IfNotPresent or Always
    pullPolicy: IfNotPresent
  containerPort: 5432
  storage: 8Gi
  resources:
    limits:
      cpu: 500m
      memory: 512Mi
    requests:
      cpu: 250m
      memory: 256Mi
service:
  # ClusterIP or NodePort
  type: ClusterIP
credentials:
  apiToken: changeme-api-token
  queuePassword: changeme-queue-pass
  dbPassword: changeme-db-pass
podSecurityContext:
  enabled: true
  fsGroup: 1001
containerSecurityContext:
  enabled: true
  runAsUser: 1001
  runAsNonRoot: true
  allowPrivilegeEscalation: false
  readOnlyRootFilesystem: true
serviceAccount:
  create: true
  automountServiceAccountToken: false
rbac:
  create: true
networkPolicy:
  enabled: true
commonAnnotations: {}
`,
		"templates/_helpers.tpl": commonHelpers("store"),
		"templates/api.yaml": `
apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ include "store.fullname" . }}-api
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "store.labels" . | nindent 4 }}
    app.kubernetes.io/component: store-api
  {{- if .Values.commonAnnotations }}
  annotations:
    {{- toYaml .Values.commonAnnotations | nindent 4 }}
  {{- end }}
spec:
  replicas: {{ .Values.api.replicaCount }}
  selector:
    matchLabels:
      {{- include "store.matchLabels" . | nindent 6 }}
      app.kubernetes.io/component: store-api
  template:
    metadata:
      labels:
        {{- include "store.labels" . | nindent 8 }}
        app.kubernetes.io/component: store-api
    spec:
      serviceAccountName: {{ include "store.fullname" . }}-api
      automountServiceAccountToken: {{ .Values.serviceAccount.automountServiceAccountToken }}
      {{- if .Values.podSecurityContext.enabled }}
      securityContext:
        fsGroup: {{ .Values.podSecurityContext.fsGroup }}
      {{- end }}
      containers:
        - name: store-api
          image: {{ printf "%s/%s:%s" .Values.api.image.registry .Values.api.image.repository .Values.api.image.tag }}
          imagePullPolicy: {{ .Values.api.image.pullPolicy | quote }}
          {{- if .Values.containerSecurityContext.enabled }}
          securityContext:
            runAsUser: {{ .Values.containerSecurityContext.runAsUser }}
            runAsNonRoot: {{ .Values.containerSecurityContext.runAsNonRoot }}
            allowPrivilegeEscalation: {{ .Values.containerSecurityContext.allowPrivilegeEscalation }}
            readOnlyRootFilesystem: {{ .Values.containerSecurityContext.readOnlyRootFilesystem }}
          {{- end }}
          ports:
            - name: http
              containerPort: {{ .Values.api.containerPort }}
          env:
            - name: API_TOKEN
              valueFrom:
                secretKeyRef:
                  name: {{ include "store.fullname" . }}-api-credentials
                  key: token
            - name: DB_HOST
              value: {{ include "store.fullname" . }}-db
          readinessProbe:
            httpGet:
              path: /healthz
              port: http
            initialDelaySeconds: 5
            periodSeconds: 10
          resources:
            {{- toYaml .Values.api.resources | nindent 12 }}
---
apiVersion: v1
kind: Service
metadata:
  name: {{ include "store.fullname" . }}-api
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "store.labels" . | nindent 4 }}
    app.kubernetes.io/component: store-api
spec:
  type: {{ .Values.service.type }}
  ports:
    - name: http
      port: 80
      targetPort: http
      protocol: TCP
  selector:
    {{- include "store.matchLabels" . | nindent 4 }}
    app.kubernetes.io/component: store-api
`,
		"templates/processor.yaml": `
apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ include "store.fullname" . }}-processor
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "store.labels" . | nindent 4 }}
    app.kubernetes.io/component: order-processor
spec:
  replicas: {{ .Values.processor.replicaCount }}
  selector:
    matchLabels:
      {{- include "store.matchLabels" . | nindent 6 }}
      app.kubernetes.io/component: order-processor
  template:
    metadata:
      labels:
        {{- include "store.labels" . | nindent 8 }}
        app.kubernetes.io/component: order-processor
    spec:
      serviceAccountName: {{ include "store.fullname" . }}-processor
      automountServiceAccountToken: {{ .Values.serviceAccount.automountServiceAccountToken }}
      {{- if .Values.podSecurityContext.enabled }}
      securityContext:
        fsGroup: {{ .Values.podSecurityContext.fsGroup }}
      {{- end }}
      containers:
        - name: order-processor
          image: {{ printf "%s/%s:%s" .Values.processor.image.registry .Values.processor.image.repository .Values.processor.image.tag }}
          imagePullPolicy: {{ .Values.processor.image.pullPolicy | quote }}
          {{- if .Values.containerSecurityContext.enabled }}
          securityContext:
            runAsUser: {{ .Values.containerSecurityContext.runAsUser }}
            runAsNonRoot: {{ .Values.containerSecurityContext.runAsNonRoot }}
            allowPrivilegeEscalation: {{ .Values.containerSecurityContext.allowPrivilegeEscalation }}
            readOnlyRootFilesystem: {{ .Values.containerSecurityContext.readOnlyRootFilesystem }}
          {{- end }}
          ports:
            - name: grpc
              containerPort: {{ .Values.processor.containerPort }}
          envFrom:
            - secretRef:
                name: {{ include "store.fullname" . }}-processor-credentials
          env:
            - name: API_URL
              value: http://{{ include "store.fullname" . }}-api
          resources:
            {{- toYaml .Values.processor.resources | nindent 12 }}
---
apiVersion: v1
kind: Service
metadata:
  name: {{ include "store.fullname" . }}-processor
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "store.labels" . | nindent 4 }}
    app.kubernetes.io/component: order-processor
spec:
  type: {{ .Values.service.type }}
  ports:
    - name: grpc
      port: {{ .Values.processor.containerPort }}
      targetPort: grpc
      protocol: TCP
  selector:
    {{- include "store.matchLabels" . | nindent 4 }}
    app.kubernetes.io/component: order-processor
`,
		"templates/db.yaml": `
apiVersion: apps/v1
kind: StatefulSet
metadata:
  name: {{ include "store.fullname" . }}-db
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "store.labels" . | nindent 4 }}
    app.kubernetes.io/component: customer-db
spec:
  serviceName: {{ include "store.fullname" . }}-db
  replicas: {{ .Values.db.replicas }}
  selector:
    matchLabels:
      {{- include "store.matchLabels" . | nindent 6 }}
      app.kubernetes.io/component: customer-db
  template:
    metadata:
      labels:
        {{- include "store.labels" . | nindent 8 }}
        app.kubernetes.io/component: customer-db
    spec:
      serviceAccountName: {{ include "store.fullname" . }}-db
      automountServiceAccountToken: {{ .Values.serviceAccount.automountServiceAccountToken }}
      {{- if .Values.podSecurityContext.enabled }}
      securityContext:
        fsGroup: {{ .Values.podSecurityContext.fsGroup }}
      {{- end }}
      containers:
        - name: customer-db
          image: {{ printf "%s/%s:%s" .Values.db.image.registry .Values.db.image.repository .Values.db.image.tag }}
          imagePullPolicy: {{ .Values.db.image.pullPolicy | quote }}
          {{- if .Values.containerSecurityContext.enabled }}
          securityContext:
            runAsUser: {{ .Values.containerSecurityContext.runAsUser }}
            runAsNonRoot: {{ .Values.containerSecurityContext.runAsNonRoot }}
            allowPrivilegeEscalation: {{ .Values.containerSecurityContext.allowPrivilegeEscalation }}
            readOnlyRootFilesystem: {{ .Values.containerSecurityContext.readOnlyRootFilesystem }}
          {{- end }}
          ports:
            - name: pgsql
              containerPort: {{ .Values.db.containerPort }}
          volumeMounts:
            - name: credentials
              mountPath: /etc/store/credentials
              readOnly: true
            - name: data
              mountPath: /var/lib/store/data
          resources:
            {{- toYaml .Values.db.resources | nindent 12 }}
      volumes:
        - name: credentials
          secret:
            secretName: {{ include "store.fullname" . }}-db-credentials
  volumeClaimTemplates:
    - metadata:
        name: data
      spec:
        accessModes:
          - ReadWriteOnce
        resources:
          requests:
            storage: {{ .Values.db.storage }}
---
apiVersion: v1
kind: Service
metadata:
  name: {{ include "store.fullname" . }}-db
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "store.labels" . | nindent 4 }}
    app.kubernetes.io/component: customer-db
spec:
  type: ClusterIP
  clusterIP: None
  ports:
    - name: pgsql
      port: {{ .Values.db.containerPort }}
      targetPort: pgsql
      protocol: TCP
  selector:
    {{- include "store.matchLabels" . | nindent 4 }}
    app.kubernetes.io/component: customer-db
`,
		"templates/serviceaccounts.yaml": `
{{- if .Values.serviceAccount.create }}
apiVersion: v1
kind: ServiceAccount
metadata:
  name: {{ include "store.fullname" . }}-api
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "store.labels" . | nindent 4 }}
    app.kubernetes.io/component: store-api
automountServiceAccountToken: {{ .Values.serviceAccount.automountServiceAccountToken }}
---
apiVersion: v1
kind: ServiceAccount
metadata:
  name: {{ include "store.fullname" . }}-processor
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "store.labels" . | nindent 4 }}
    app.kubernetes.io/component: order-processor
automountServiceAccountToken: {{ .Values.serviceAccount.automountServiceAccountToken }}
---
apiVersion: v1
kind: ServiceAccount
metadata:
  name: {{ include "store.fullname" . }}-db
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "store.labels" . | nindent 4 }}
    app.kubernetes.io/component: customer-db
automountServiceAccountToken: {{ .Values.serviceAccount.automountServiceAccountToken }}
{{- end }}
`,
		"templates/secrets.yaml": `
apiVersion: v1
kind: Secret
metadata:
  name: {{ include "store.fullname" . }}-api-credentials
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "store.labels" . | nindent 4 }}
    app.kubernetes.io/component: store-api
type: Opaque
stringData:
  token: {{ .Values.credentials.apiToken | quote }}
---
apiVersion: v1
kind: Secret
metadata:
  name: {{ include "store.fullname" . }}-processor-credentials
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "store.labels" . | nindent 4 }}
    app.kubernetes.io/component: order-processor
type: Opaque
stringData:
  QUEUE_PASSWORD: {{ .Values.credentials.queuePassword | quote }}
---
apiVersion: v1
kind: Secret
metadata:
  name: {{ include "store.fullname" . }}-db-credentials
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "store.labels" . | nindent 4 }}
    app.kubernetes.io/component: customer-db
type: Opaque
stringData:
  password: {{ .Values.credentials.dbPassword | quote }}
`,
		"templates/configmap.yaml": `
apiVersion: v1
kind: ConfigMap
metadata:
  name: {{ include "store.fullname" . }}-config
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "store.labels" . | nindent 4 }}
data:
  ORDER_QUEUE: orders
  DB_NAME: customers
  LOG_LEVEL: info
`,
		"templates/rbac.yaml": `
{{- if .Values.rbac.create }}
apiVersion: rbac.authorization.k8s.io/v1
kind: Role
metadata:
  name: {{ include "store.fullname" . }}-processor
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "store.labels" . | nindent 4 }}
    app.kubernetes.io/component: order-processor
rules:
  - apiGroups:
      - ""
    resources:
      - configmaps
    verbs:
      - get
      - list
      - watch
---
apiVersion: rbac.authorization.k8s.io/v1
kind: RoleBinding
metadata:
  name: {{ include "store.fullname" . }}-processor
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "store.labels" . | nindent 4 }}
    app.kubernetes.io/component: order-processor
roleRef:
  apiGroup: rbac.authorization.k8s.io
  kind: Role
  name: {{ include "store.fullname" . }}-processor
subjects:
  - kind: ServiceAccount
    name: {{ include "store.fullname" . }}-processor
    namespace: {{ .Release.Namespace }}
{{- end }}
`,
		"templates/networkpolicy.yaml": `
{{- if .Values.networkPolicy.enabled }}
apiVersion: networking.k8s.io/v1
kind: NetworkPolicy
metadata:
  name: {{ include "store.fullname" . }}-db
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "store.labels" . | nindent 4 }}
    app.kubernetes.io/component: customer-db
spec:
  podSelector:
    matchLabels:
      {{- include "store.matchLabels" . | nindent 6 }}
      app.kubernetes.io/component: customer-db
  policyTypes:
    - Ingress
  ingress:
    - from:
        - podSelector:
            matchLabels:
              app.kubernetes.io/component: store-api
        - podSelector:
            matchLabels:
              app.kubernetes.io/component: order-processor
      ports:
        - port: {{ .Values.db.containerPort }}
{{- end }}
`,
	}
}
