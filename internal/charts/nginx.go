package charts

import "repro/internal/chart"

// nginxChart re-creates the bitnami/nginx operator chart footprint:
// Deployment, Service, NetworkPolicy, ServiceAccount,
// HorizontalPodAutoscaler, PodDisruptionBudget (paper Fig. 9, row 1).
func nginxChart() chart.Fileset {
	return chart.Fileset{
		"Chart.yaml": `
name: nginx
version: 15.14.0
appVersion: "1.25.4"
description: NGINX Open Source packaged as a Kubernetes operator chart
`,
		"values.yaml": `
replicaCount: 1
image:
  registry: docker.io
  repository: bitnami/nginx
  tag: "1.25.4-debian-12"
  # IfNotPresent or Always
  pullPolicy: IfNotPresent
  pullSecrets: []
containerPorts:
  http: 8080
  https: 8443
extraEnvVars: []
commonLabels: {}
commonAnnotations: {}
resources:
  limits:
    cpu: 150m
    memory: 192Mi
  requests:
    cpu: 100m
    memory: 128Mi
livenessProbe:
  enabled: true
  initialDelaySeconds: 30
  periodSeconds: 10
  timeoutSeconds: 5
  failureThreshold: 6
  successThreshold: 1
readinessProbe:
  enabled: true
  initialDelaySeconds: 5
  periodSeconds: 5
  timeoutSeconds: 3
  failureThreshold: 3
  successThreshold: 1
podSecurityContext:
  enabled: true
  fsGroup: 1001
containerSecurityContext:
  enabled: true
  runAsUser: 1001
  runAsNonRoot: true
  allowPrivilegeEscalation: false
  readOnlyRootFilesystem: true
service:
  # ClusterIP or NodePort or LoadBalancer
  type: LoadBalancer
  ports:
    http: 80
    https: 443
  nodePorts:
    http: 30080
    https: 30443
  sessionAffinity: None
  # Cluster or Local
  externalTrafficPolicy: Cluster
  annotations: {}
networkPolicy:
  enabled: true
  allowExternal: true
serviceAccount:
  create: true
  name: ""
  automountServiceAccountToken: false
autoscaling:
  enabled: true
  minReplicas: 1
  maxReplicas: 11
  targetCPU: 50
  targetMemory: 50
pdb:
  create: true
  minAvailable: 1
`,
		"templates/_helpers.tpl": commonHelpers("nginx"),
		"templates/deployment.yaml": `
apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ include "nginx.fullname" . }}
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "nginx.labels" . | nindent 4 }}
    {{- range $k, $v := .Values.commonLabels }}
    {{ $k }}: {{ $v | quote }}
    {{- end }}
  {{- if .Values.commonAnnotations }}
  annotations:
    {{- toYaml .Values.commonAnnotations | nindent 4 }}
  {{- end }}
spec:
  {{- if not .Values.autoscaling.enabled }}
  replicas: {{ .Values.replicaCount }}
  {{- end }}
  selector:
    matchLabels:
      {{- include "nginx.matchLabels" . | nindent 6 }}
  strategy:
    type: RollingUpdate
  template:
    metadata:
      labels:
        {{- include "nginx.labels" . | nindent 8 }}
    spec:
      serviceAccountName: {{ include "nginx.serviceAccountName" . }}
      automountServiceAccountToken: {{ .Values.serviceAccount.automountServiceAccountToken }}
      {{- if .Values.image.pullSecrets }}
      imagePullSecrets:
        {{- range .Values.image.pullSecrets }}
        - name: {{ . }}
        {{- end }}
      {{- end }}
      {{- if .Values.podSecurityContext.enabled }}
      securityContext:
        fsGroup: {{ .Values.podSecurityContext.fsGroup }}
      {{- end }}
      containers:
        - name: nginx
          image: {{ include "nginx.image" . }}
          imagePullPolicy: {{ .Values.image.pullPolicy | quote }}
          {{- if .Values.containerSecurityContext.enabled }}
          securityContext:
            runAsUser: {{ .Values.containerSecurityContext.runAsUser }}
            runAsNonRoot: {{ .Values.containerSecurityContext.runAsNonRoot }}
            allowPrivilegeEscalation: {{ .Values.containerSecurityContext.allowPrivilegeEscalation }}
            readOnlyRootFilesystem: {{ .Values.containerSecurityContext.readOnlyRootFilesystem }}
          {{- end }}
          ports:
            - name: http
              containerPort: {{ .Values.containerPorts.http }}
            - name: https
              containerPort: {{ .Values.containerPorts.https }}
          {{- if .Values.extraEnvVars }}
          env:
            {{- toYaml .Values.extraEnvVars | nindent 12 }}
          {{- end }}
          {{- if .Values.livenessProbe.enabled }}
          livenessProbe:
            tcpSocket:
              port: http
            initialDelaySeconds: {{ .Values.livenessProbe.initialDelaySeconds }}
            periodSeconds: {{ .Values.livenessProbe.periodSeconds }}
            timeoutSeconds: {{ .Values.livenessProbe.timeoutSeconds }}
            failureThreshold: {{ .Values.livenessProbe.failureThreshold }}
            successThreshold: {{ .Values.livenessProbe.successThreshold }}
          {{- end }}
          {{- if .Values.readinessProbe.enabled }}
          readinessProbe:
            httpGet:
              path: /
              port: http
            initialDelaySeconds: {{ .Values.readinessProbe.initialDelaySeconds }}
            periodSeconds: {{ .Values.readinessProbe.periodSeconds }}
            timeoutSeconds: {{ .Values.readinessProbe.timeoutSeconds }}
            failureThreshold: {{ .Values.readinessProbe.failureThreshold }}
            successThreshold: {{ .Values.readinessProbe.successThreshold }}
          {{- end }}
          resources:
            {{- toYaml .Values.resources | nindent 12 }}
`,
		"templates/service.yaml": `
apiVersion: v1
kind: Service
metadata:
  name: {{ include "nginx.fullname" . }}
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "nginx.labels" . | nindent 4 }}
  {{- if .Values.service.annotations }}
  annotations:
    {{- toYaml .Values.service.annotations | nindent 4 }}
  {{- end }}
spec:
  type: {{ .Values.service.type }}
  {{- if eq .Values.service.type "LoadBalancer" }}
  externalTrafficPolicy: {{ .Values.service.externalTrafficPolicy }}
  {{- end }}
  sessionAffinity: {{ .Values.service.sessionAffinity }}
  ports:
    - name: http
      port: {{ .Values.service.ports.http }}
      targetPort: http
      protocol: TCP
      {{- if eq .Values.service.type "NodePort" }}
      nodePort: {{ .Values.service.nodePorts.http }}
      {{- end }}
    - name: https
      port: {{ .Values.service.ports.https }}
      targetPort: https
      protocol: TCP
      {{- if eq .Values.service.type "NodePort" }}
      nodePort: {{ .Values.service.nodePorts.https }}
      {{- end }}
  selector:
    {{- include "nginx.matchLabels" . | nindent 4 }}
`,
		"templates/networkpolicy.yaml": `
{{- if .Values.networkPolicy.enabled }}
apiVersion: networking.k8s.io/v1
kind: NetworkPolicy
metadata:
  name: {{ include "nginx.fullname" . }}
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "nginx.labels" . | nindent 4 }}
spec:
  podSelector:
    matchLabels:
      {{- include "nginx.matchLabels" . | nindent 6 }}
  policyTypes:
    - Ingress
  ingress:
    - ports:
        - port: {{ .Values.containerPorts.http }}
        - port: {{ .Values.containerPorts.https }}
      {{- if not .Values.networkPolicy.allowExternal }}
      from:
        - podSelector:
            matchLabels:
              {{ include "nginx.fullname" . }}-client: "true"
      {{- end }}
{{- end }}
`,
		"templates/serviceaccount.yaml": `
{{- if .Values.serviceAccount.create }}
apiVersion: v1
kind: ServiceAccount
metadata:
  name: {{ include "nginx.serviceAccountName" . }}
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "nginx.labels" . | nindent 4 }}
automountServiceAccountToken: {{ .Values.serviceAccount.automountServiceAccountToken }}
{{- end }}
`,
		"templates/hpa.yaml": `
{{- if .Values.autoscaling.enabled }}
apiVersion: autoscaling/v2
kind: HorizontalPodAutoscaler
metadata:
  name: {{ include "nginx.fullname" . }}
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "nginx.labels" . | nindent 4 }}
spec:
  scaleTargetRef:
    apiVersion: apps/v1
    kind: Deployment
    name: {{ include "nginx.fullname" . }}
  minReplicas: {{ .Values.autoscaling.minReplicas }}
  maxReplicas: {{ .Values.autoscaling.maxReplicas }}
  metrics:
    - type: Resource
      resource:
        name: cpu
        target:
          type: Utilization
          averageUtilization: {{ .Values.autoscaling.targetCPU }}
    - type: Resource
      resource:
        name: memory
        target:
          type: Utilization
          averageUtilization: {{ .Values.autoscaling.targetMemory }}
{{- end }}
`,
		"templates/pdb.yaml": `
{{- if .Values.pdb.create }}
apiVersion: policy/v1
kind: PodDisruptionBudget
metadata:
  name: {{ include "nginx.fullname" . }}
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "nginx.labels" . | nindent 4 }}
spec:
  minAvailable: {{ .Values.pdb.minAvailable }}
  selector:
    matchLabels:
      {{- include "nginx.matchLabels" . | nindent 6 }}
{{- end }}
`,
	}
}
