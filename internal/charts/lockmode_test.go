package charts

import (
	"testing"

	"repro/internal/chart"
	"repro/internal/core"
	"repro/internal/object"
	"repro/internal/validator"
)

// TestLockModeFalsePositiveAblation quantifies the DESIGN.md §6 lock-mode
// trade-off over the whole benign corpus: LockRequired must not reject any
// of our operators' deployments (their charts set the critical fields),
// and omitting runAsNonRoot must be denied only under LockRequired.
func TestLockModeFalsePositiveAblation(t *testing.T) {
	for _, mode := range []validator.LockMode{validator.LockIfPresent, validator.LockRequired} {
		falsePositives := 0
		benign := 0
		for _, name := range Names() {
			res, err := core.GeneratePolicy(MustLoad(name), core.Options{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			files, err := MustLoad(name).Render(nil, chart.ReleaseOptions{Name: "fprel", Namespace: "fp"})
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range chart.Objects(files) {
				benign++
				if vs := res.Validator.Validate(o); len(vs) != 0 {
					falsePositives++
					t.Logf("mode %v: %s/%s denied: %v", mode, name, o.Kind(), vs)
				}
			}
		}
		if falsePositives != 0 {
			t.Errorf("mode %v: %d/%d benign manifests denied", mode, falsePositives, benign)
		}
	}
}

func TestLockRequiredDeniesOmission(t *testing.T) {
	strict, err := core.GeneratePolicy(MustLoad("nginx"), core.Options{Mode: validator.LockRequired})
	if err != nil {
		t.Fatal(err)
	}
	lenient, err := core.GeneratePolicy(MustLoad("nginx"), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	files, err := MustLoad("nginx").Render(nil, chart.ReleaseOptions{Name: "r"})
	if err != nil {
		t.Fatal(err)
	}
	var dep object.Object
	for _, o := range chart.Objects(files) {
		if o.Kind() == "Deployment" {
			dep = o
		}
	}
	stripped := dep.DeepCopy()
	cs, _ := object.GetSlice(stripped, "spec.template.spec.containers")
	sc := cs[0].(map[string]any)["securityContext"].(map[string]any)
	delete(sc, "runAsNonRoot")

	if vs := lenient.Validator.Validate(stripped); len(vs) != 0 {
		t.Errorf("lenient mode should allow omission: %v", vs)
	}
	if vs := strict.Validator.Validate(stripped); len(vs) == 0 {
		t.Error("strict mode should deny omission of runAsNonRoot")
	}
}
