// Package charts embeds the five-operator Helm chart corpus used in the
// paper's evaluation (§VI-A): Nginx (networking), MLflow (AI/ML),
// PostgreSQL (database), RabbitMQ (data streaming), and SonarQube
// (security/code quality), originally drawn from Artifact Hub.
//
// The real Artifact Hub charts are third-party artifacts; these are
// re-creations with the same *resource-kind footprint* as the paper's
// Fig. 9 (which kinds each workload deploys), the same Helm constructs
// (helpers, conditionals, loops, enum-annotated values, security
// contexts), and realistic pod specs — so KubeFence's policy generation
// exercises the same code paths. See DESIGN.md §3 for the substitution
// rationale.
//
// Authoring constraints kept throughout the corpus (required for sound
// policy generation, documented in DESIGN.md):
//
//   - values-derived scalars are never passed through transforming
//     functions (b64enc, sha256sum) — Secrets use stringData — so type
//     placeholders survive rendering;
//   - boolean values gate every conditional block, so the exploration
//     phase reaches both branches;
//   - enumerative values carry comment annotations ("# A or B").
package charts

import (
	"fmt"
	"sort"

	"repro/internal/chart"
)

// Names lists the corpus workloads in the paper's Fig. 9 row order.
// The multi-service store scenario (ScenarioNames) is intentionally not
// part of this set: the committed robustness and learning baselines are
// pinned to the paper's five-chart corpus.
func Names() []string {
	return []string{"nginx", "mlflow", "postgresql", "rabbitmq", "sonarqube"}
}

// ScenarioNames lists the scenario charts that extend the evaluation
// beyond the paper's corpus — today the multi-service store application
// (store-api / order-processor / customer-db), used by the scenarios
// experiment and the cross-resource invariant tests.
func ScenarioNames() []string {
	return []string{"store"}
}

// Files returns the raw fileset of a corpus chart.
func Files(name string) (chart.Fileset, bool) {
	switch name {
	case "nginx":
		return nginxChart(), true
	case "mlflow":
		return mlflowChart(), true
	case "postgresql":
		return postgresqlChart(), true
	case "rabbitmq":
		return rabbitmqChart(), true
	case "sonarqube":
		return sonarqubeChart(), true
	case "store":
		return storeChart(), true
	default:
		return nil, false
	}
}

// Load parses a corpus chart by name.
func Load(name string) (*chart.Chart, error) {
	files, ok := Files(name)
	if !ok {
		return nil, fmt.Errorf("charts: unknown workload %q (have %v)", name, Names())
	}
	c, err := chart.Load(files)
	if err != nil {
		return nil, fmt.Errorf("charts: loading %s: %w", name, err)
	}
	return c, nil
}

// MustLoad is Load for tests and examples with a known-good name.
func MustLoad(name string) *chart.Chart {
	c, err := Load(name)
	if err != nil {
		panic(err)
	}
	return c
}

// ExpectedKinds maps each workload to the resource kinds its chart can
// deploy, matching the non-zero cells of the paper's Fig. 9 row.
func ExpectedKinds(name string) []string {
	var kinds []string
	switch name {
	case "nginx":
		kinds = []string{"Deployment", "Service", "NetworkPolicy",
			"ServiceAccount", "HorizontalPodAutoscaler", "PodDisruptionBudget"}
	case "mlflow":
		kinds = []string{"Deployment", "Service", "ConfigMap", "Ingress",
			"ServiceAccount", "Secret"}
	case "postgresql":
		kinds = []string{"StatefulSet", "CronJob", "Service", "ConfigMap",
			"NetworkPolicy", "ServiceAccount", "Secret", "Role", "RoleBinding"}
	case "rabbitmq":
		kinds = []string{"StatefulSet", "Service", "NetworkPolicy", "Ingress",
			"ServiceAccount", "PodDisruptionBudget", "Secret", "Role", "RoleBinding"}
	case "sonarqube":
		kinds = []string{"Deployment", "StatefulSet", "Pod", "Job", "Service",
			"ConfigMap", "NetworkPolicy", "Ingress", "IngressClass",
			"ServiceAccount", "PersistentVolumeClaim",
			"ValidatingWebhookConfiguration", "Secret", "Role", "RoleBinding",
			"ClusterRole", "ClusterRoleBinding"}
	case "store":
		kinds = []string{"Deployment", "StatefulSet", "Service", "ConfigMap",
			"NetworkPolicy", "ServiceAccount", "Secret", "Role", "RoleBinding"}
	}
	sort.Strings(kinds)
	return kinds
}

// commonHelpers is the _helpers.tpl shared across the corpus, mirroring
// the bitnami common-library style.
func commonHelpers(name string) string {
	return `
{{- define "` + name + `.fullname" -}}
{{- printf "%s-%s" .Release.Name .Chart.Name | trunc 63 | trimSuffix "-" -}}
{{- end -}}

{{- define "` + name + `.name" -}}
{{- .Chart.Name -}}
{{- end -}}

{{- define "` + name + `.labels" -}}
app.kubernetes.io/name: {{ include "` + name + `.name" . }}
app.kubernetes.io/instance: {{ .Release.Name }}
app.kubernetes.io/managed-by: {{ .Release.Service }}
helm.sh/chart: {{ printf "%s-%s" .Chart.Name .Chart.Version }}
{{- end -}}

{{- define "` + name + `.matchLabels" -}}
app.kubernetes.io/name: {{ include "` + name + `.name" . }}
app.kubernetes.io/instance: {{ .Release.Name }}
{{- end -}}

{{- define "` + name + `.serviceAccountName" -}}
{{- if .Values.serviceAccount.create -}}
{{- default (include "` + name + `.fullname" .) .Values.serviceAccount.name -}}
{{- else -}}
{{- default "default" .Values.serviceAccount.name -}}
{{- end -}}
{{- end -}}

{{- define "` + name + `.image" -}}
{{- printf "%s/%s:%s" .Values.image.registry .Values.image.repository .Values.image.tag -}}
{{- end -}}
`
}
