package charts

import (
	"sort"
	"testing"

	"repro/internal/chart"
	"repro/internal/explore"
	"repro/internal/object"
	"repro/internal/schema"
	"repro/internal/validator"
)

func TestNamesAndFiles(t *testing.T) {
	if len(Names()) != 5 {
		t.Fatalf("corpus has %d workloads, want 5", len(Names()))
	}
	for _, name := range Names() {
		files, ok := Files(name)
		if !ok {
			t.Fatalf("Files(%s) missing", name)
		}
		if _, ok := files["Chart.yaml"]; !ok {
			t.Errorf("%s: no Chart.yaml", name)
		}
		if _, ok := files["values.yaml"]; !ok {
			t.Errorf("%s: no values.yaml", name)
		}
	}
	if _, ok := Files("unknown"); ok {
		t.Error("unknown workload should not resolve")
	}
	if _, err := Load("unknown"); err == nil {
		t.Error("Load(unknown) should error")
	}
}

func renderedKinds(t *testing.T, objs []object.Object) []string {
	t.Helper()
	set := map[string]bool{}
	for _, o := range objs {
		set[o.Kind()] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// pipeline runs the full KubeFence generation pipeline for a workload and
// returns the validator plus the variant count.
func pipeline(t *testing.T, name string) (*validator.Validator, int) {
	t.Helper()
	c := MustLoad(name)
	s, err := schema.Generate(c, schema.Options{})
	if err != nil {
		t.Fatalf("%s: schema: %v", name, err)
	}
	variants := explore.Variants(s)
	var all []object.Object
	for i, v := range variants {
		files, err := c.RenderWithValues(v, chart.ReleaseOptions{Name: "kfrelease"})
		if err != nil {
			t.Fatalf("%s: rendering variant %d: %v", name, i, err)
		}
		all = append(all, chart.Objects(files)...)
	}
	val, err := validator.Build(all, validator.BuildOptions{
		Workload:    name,
		ReleaseName: "kfrelease",
	})
	if err != nil {
		t.Fatalf("%s: build validator: %v", name, err)
	}
	return val, len(variants)
}

func TestEveryChartRendersWithDefaults(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			c := MustLoad(name)
			files, err := c.Render(nil, chart.ReleaseOptions{Name: "myrel", Namespace: "prod"})
			if err != nil {
				t.Fatal(err)
			}
			objs := chart.Objects(files)
			if len(objs) == 0 {
				t.Fatal("no objects rendered")
			}
			for _, o := range objs {
				if o.Kind() == "" || o.APIVersion() == "" {
					t.Errorf("object missing kind/apiVersion: %v", o)
				}
				if o.Name() == "" {
					t.Errorf("%s object has no name", o.Kind())
				}
				if _, ok := object.LookupKind(o.Kind()); !ok {
					t.Errorf("kind %s not in REST mapping table", o.Kind())
				}
			}
		})
	}
}

func TestValidatorKindFootprintMatchesFig9(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			val, _ := pipeline(t, name)
			got := val.AllowedKinds()
			want := ExpectedKinds(name)
			if len(got) != len(want) {
				t.Fatalf("kinds = %v,\nwant %v", got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("kinds = %v,\nwant %v", got, want)
				}
			}
		})
	}
}

func TestExplorationCoversConditionalResources(t *testing.T) {
	// With defaults only, MLflow renders no Secret (postgres and s3 are
	// disabled); the exploration must reach it.
	c := MustLoad("mlflow")
	files, err := c.Render(nil, chart.ReleaseOptions{Name: "m"})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range chart.Objects(files) {
		if o.Kind() == "Secret" {
			t.Fatal("defaults should not render the MLflow secret")
		}
	}
	val, variants := pipeline(t, "mlflow")
	if variants < 2 {
		t.Fatalf("mlflow should need >= 2 variants, got %d", variants)
	}
	if _, ok := val.Kinds["Secret"]; !ok {
		t.Error("exploration missed the conditional Secret")
	}
}

func TestRealDeploymentPassesOwnPolicy(t *testing.T) {
	// The central soundness property (paper: "legitimate workload actions
	// were unaffected"): manifests rendered with the chart's real default
	// values must pass the validator generated for that workload.
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			val, _ := pipeline(t, name)
			c := MustLoad(name)
			files, err := c.Render(nil, chart.ReleaseOptions{Name: "prod-rel", Namespace: "prod"})
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range chart.Objects(files) {
				if vs := val.Validate(o); len(vs) != 0 {
					t.Errorf("%s %s denied by own policy:\n  %v",
						o.Kind(), o.Name(), vs)
				}
			}
		})
	}
}

func TestUserOverridesPassPolicy(t *testing.T) {
	// Users may override values within the schema's domains.
	val, _ := pipeline(t, "nginx")
	c := MustLoad("nginx")
	files, err := c.Render(map[string]any{
		"replicaCount": int64(5),
		"autoscaling":  map[string]any{"enabled": false},
		"service":      map[string]any{"type": "ClusterIP"},
		"image":        map[string]any{"tag": "1.27.0"},
	}, chart.ReleaseOptions{Name: "edge", Namespace: "edge-ns"})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range chart.Objects(files) {
		if vs := val.Validate(o); len(vs) != 0 {
			t.Errorf("%s %s denied: %v", o.Kind(), o.Name(), vs)
		}
	}
}

func TestOutOfDomainOverrideDenied(t *testing.T) {
	// A service type outside the enum annotation is outside the policy.
	val, _ := pipeline(t, "mlflow")
	c := MustLoad("mlflow")
	files, err := c.Render(map[string]any{
		"service": map[string]any{"type": "LoadBalancer"}, // enum: ClusterIP or NodePort
	}, chart.ReleaseOptions{Name: "m"})
	if err != nil {
		t.Fatal(err)
	}
	denied := false
	for _, o := range chart.Objects(files) {
		if o.Kind() == "Service" && len(val.Validate(o)) > 0 {
			denied = true
		}
	}
	if !denied {
		t.Error("LoadBalancer service should be outside the MLflow policy enum")
	}
}

func TestSecurityContextLockedInEveryWorkload(t *testing.T) {
	for _, name := range Names() {
		val, _ := pipeline(t, name)
		for _, kind := range []string{"Deployment", "StatefulSet"} {
			root, ok := val.Kinds[kind]
			if !ok {
				continue
			}
			n := findNode(root, []string{"spec", "template", "spec", "containers", "securityContext", "runAsNonRoot"})
			if n == nil {
				t.Errorf("%s/%s: runAsNonRoot missing from validator", name, kind)
				continue
			}
			if !n.Locked {
				t.Errorf("%s/%s: runAsNonRoot not locked", name, kind)
			}
			if len(n.Values) != 1 || n.Values[0] != true {
				t.Errorf("%s/%s: runAsNonRoot lock values = %v", name, kind, n.Values)
			}
		}
	}
}

func findNode(n *validator.Node, path []string) *validator.Node {
	cur := n
	for _, seg := range path {
		if cur == nil {
			return nil
		}
		switch cur.Kind {
		case validator.KindMap:
			cur = cur.Fields[seg]
		case validator.KindList:
			cur = cur.Item
			// Retry the same segment inside the item schema.
			if cur != nil && cur.Kind == validator.KindMap {
				cur = cur.Fields[seg]
			}
		default:
			return nil
		}
	}
	return cur
}

func TestHostNamespacesAbsentFromAllPolicies(t *testing.T) {
	// No corpus chart uses host namespaces; the generated policies must
	// not contain them (this is the reduced attack surface).
	for _, name := range Names() {
		val, _ := pipeline(t, name)
		for kind := range val.Kinds {
			for _, p := range val.AllowedPaths(kind) {
				for _, bad := range []string{"hostNetwork", "hostPID", "hostIPC", "subPath"} {
					if hasSuffix(p, bad) {
						t.Errorf("%s/%s: %s should not be in policy", name, kind, p)
					}
				}
			}
		}
	}
}

func hasSuffix(path, field string) bool {
	return path == field || len(path) > len(field) && path[len(path)-len(field)-1] == '.' &&
		path[len(path)-len(field):] == field
}

func TestPipelineDeterministic(t *testing.T) {
	a, _ := pipeline(t, "postgresql")
	b, _ := pipeline(t, "postgresql")
	ay, err := a.MarshalYAML()
	if err != nil {
		t.Fatal(err)
	}
	by, _ := b.MarshalYAML()
	if string(ay) != string(by) {
		t.Error("pipeline output differs across runs")
	}
}
