package charts

import "repro/internal/chart"

// postgresqlChart re-creates the bitnami/postgresql operator footprint:
// StatefulSet, CronJob (scheduled backups), Service (×2: client +
// headless), ConfigMap, NetworkPolicy, ServiceAccount, Secret, Role,
// RoleBinding (paper Fig. 9, row 3).
func postgresqlChart() chart.Fileset {
	return chart.Fileset{
		"Chart.yaml": `
name: postgresql
version: 14.3.3
appVersion: "16.2.0"
description: PostgreSQL packaged as a Kubernetes operator chart
`,
		"values.yaml": `
image:
  registry: docker.io
  repository: bitnami/postgresql
  tag: "16.2.0-debian-12"
  # IfNotPresent or Always
  pullPolicy: IfNotPresent
auth:
  username: postgres
  password: changeme-postgres
  database: appdb
architecture:
  # standalone or replication
  mode: standalone
  replicaCount: 1
primary:
  persistence:
    enabled: true
    size: 8Gi
    storageClass: ""
  extendedConfiguration: |
    max_connections = 200
    shared_buffers = 128MB
containerPorts:
  postgresql: 5432
podSecurityContext:
  enabled: true
  fsGroup: 1001
containerSecurityContext:
  enabled: true
  runAsUser: 1001
  runAsNonRoot: true
  allowPrivilegeEscalation: false
  readOnlyRootFilesystem: true
resources:
  limits:
    cpu: 750m
    memory: 768Mi
  requests:
    cpu: 250m
    memory: 256Mi
service:
  # ClusterIP or NodePort
  type: ClusterIP
  ports:
    postgresql: 5432
networkPolicy:
  enabled: true
  allowExternal: false
serviceAccount:
  create: true
  name: ""
rbac:
  create: true
backup:
  enabled: true
  cronjob:
    schedule: "0 2 * * *"
    # Allow or Forbid or Replace
    concurrencyPolicy: Forbid
    historyLimit: 3
  retention: 7
metrics:
  enabled: false
  port: 9187
`,
		"templates/_helpers.tpl": commonHelpers("postgresql") + `
{{- define "postgresql.primaryFullname" -}}
{{- printf "%s-primary" (include "postgresql.fullname" .) -}}
{{- end -}}
`,
		"templates/statefulset.yaml": `
apiVersion: apps/v1
kind: StatefulSet
metadata:
  name: {{ include "postgresql.primaryFullname" . }}
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "postgresql.labels" . | nindent 4 }}
spec:
  {{- if eq .Values.architecture.mode "replication" }}
  replicas: {{ .Values.architecture.replicaCount }}
  {{- else }}
  replicas: 1
  {{- end }}
  serviceName: {{ include "postgresql.fullname" . }}-hl
  podManagementPolicy: Parallel
  updateStrategy:
    type: RollingUpdate
  selector:
    matchLabels:
      {{- include "postgresql.matchLabels" . | nindent 6 }}
  template:
    metadata:
      labels:
        {{- include "postgresql.labels" . | nindent 8 }}
    spec:
      serviceAccountName: {{ include "postgresql.serviceAccountName" . }}
      {{- if .Values.podSecurityContext.enabled }}
      securityContext:
        fsGroup: {{ .Values.podSecurityContext.fsGroup }}
      {{- end }}
      containers:
        - name: postgresql
          image: {{ include "postgresql.image" . }}
          imagePullPolicy: {{ .Values.image.pullPolicy | quote }}
          {{- if .Values.containerSecurityContext.enabled }}
          securityContext:
            runAsUser: {{ .Values.containerSecurityContext.runAsUser }}
            runAsNonRoot: {{ .Values.containerSecurityContext.runAsNonRoot }}
            allowPrivilegeEscalation: {{ .Values.containerSecurityContext.allowPrivilegeEscalation }}
            readOnlyRootFilesystem: {{ .Values.containerSecurityContext.readOnlyRootFilesystem }}
          {{- end }}
          ports:
            - name: tcp-postgresql
              containerPort: {{ .Values.containerPorts.postgresql }}
          env:
            - name: POSTGRES_USER
              value: {{ .Values.auth.username | quote }}
            - name: POSTGRES_DB
              value: {{ .Values.auth.database | quote }}
            - name: POSTGRES_PASSWORD
              valueFrom:
                secretKeyRef:
                  name: {{ include "postgresql.fullname" . }}
                  key: postgres-password
            - name: POSTGRESQL_REPLICATION_MODE
              value: {{ .Values.architecture.mode | quote }}
          livenessProbe:
            exec:
              command:
                - /bin/sh
                - -c
                - pg_isready -U {{ .Values.auth.username }}
            initialDelaySeconds: 30
            periodSeconds: 10
          readinessProbe:
            tcpSocket:
              port: tcp-postgresql
            initialDelaySeconds: 5
            periodSeconds: 10
          resources:
            {{- toYaml .Values.resources | nindent 12 }}
          volumeMounts:
            - name: data
              mountPath: /bitnami/postgresql
            - name: config
              mountPath: /opt/bitnami/postgresql/conf/conf.d
      volumes:
        - name: config
          configMap:
            name: {{ include "postgresql.fullname" . }}-configuration
  {{- if .Values.primary.persistence.enabled }}
  volumeClaimTemplates:
    - metadata:
        name: data
      spec:
        accessModes:
          - ReadWriteOnce
        resources:
          requests:
            storage: {{ .Values.primary.persistence.size | quote }}
  {{- end }}
`,
		"templates/service.yaml": `
apiVersion: v1
kind: Service
metadata:
  name: {{ include "postgresql.fullname" . }}
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "postgresql.labels" . | nindent 4 }}
spec:
  type: {{ .Values.service.type }}
  ports:
    - name: tcp-postgresql
      port: {{ .Values.service.ports.postgresql }}
      targetPort: tcp-postgresql
      protocol: TCP
  selector:
    {{- include "postgresql.matchLabels" . | nindent 4 }}
---
apiVersion: v1
kind: Service
metadata:
  name: {{ include "postgresql.fullname" . }}-hl
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "postgresql.labels" . | nindent 4 }}
spec:
  type: ClusterIP
  clusterIP: None
  publishNotReadyAddresses: true
  ports:
    - name: tcp-postgresql
      port: {{ .Values.service.ports.postgresql }}
      targetPort: tcp-postgresql
  selector:
    {{- include "postgresql.matchLabels" . | nindent 4 }}
`,
		"templates/configmap.yaml": `
apiVersion: v1
kind: ConfigMap
metadata:
  name: {{ include "postgresql.fullname" . }}-configuration
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "postgresql.labels" . | nindent 4 }}
data:
  override.conf: |
{{ .Values.primary.extendedConfiguration | indent 4 }}
`,
		"templates/secret.yaml": `
apiVersion: v1
kind: Secret
metadata:
  name: {{ include "postgresql.fullname" . }}
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "postgresql.labels" . | nindent 4 }}
type: Opaque
stringData:
  postgres-password: {{ .Values.auth.password | quote }}
`,
		"templates/networkpolicy.yaml": `
{{- if .Values.networkPolicy.enabled }}
apiVersion: networking.k8s.io/v1
kind: NetworkPolicy
metadata:
  name: {{ include "postgresql.fullname" . }}
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "postgresql.labels" . | nindent 4 }}
spec:
  podSelector:
    matchLabels:
      {{- include "postgresql.matchLabels" . | nindent 6 }}
  policyTypes:
    - Ingress
    - Egress
  egress:
    - {}
  ingress:
    - ports:
        - port: {{ .Values.containerPorts.postgresql }}
      {{- if not .Values.networkPolicy.allowExternal }}
      from:
        - podSelector:
            matchLabels:
              {{ include "postgresql.fullname" . }}-client: "true"
      {{- end }}
{{- end }}
`,
		"templates/serviceaccount.yaml": `
{{- if .Values.serviceAccount.create }}
apiVersion: v1
kind: ServiceAccount
metadata:
  name: {{ include "postgresql.serviceAccountName" . }}
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "postgresql.labels" . | nindent 4 }}
automountServiceAccountToken: false
{{- end }}
`,
		"templates/role.yaml": `
{{- if .Values.rbac.create }}
apiVersion: rbac.authorization.k8s.io/v1
kind: Role
metadata:
  name: {{ include "postgresql.fullname" . }}
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "postgresql.labels" . | nindent 4 }}
rules:
  - apiGroups:
      - ""
    resources:
      - endpoints
    verbs:
      - get
      - list
      - watch
  - apiGroups:
      - ""
    resources:
      - configmaps
    verbs:
      - get
{{- end }}
`,
		"templates/rolebinding.yaml": `
{{- if .Values.rbac.create }}
apiVersion: rbac.authorization.k8s.io/v1
kind: RoleBinding
metadata:
  name: {{ include "postgresql.fullname" . }}
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "postgresql.labels" . | nindent 4 }}
roleRef:
  apiGroup: rbac.authorization.k8s.io
  kind: Role
  name: {{ include "postgresql.fullname" . }}
subjects:
  - kind: ServiceAccount
    name: {{ include "postgresql.serviceAccountName" . }}
    namespace: {{ .Release.Namespace }}
{{- end }}
`,
		"templates/backup-cronjob.yaml": `
{{- if .Values.backup.enabled }}
apiVersion: batch/v1
kind: CronJob
metadata:
  name: {{ include "postgresql.fullname" . }}-backup
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "postgresql.labels" . | nindent 4 }}
spec:
  schedule: {{ .Values.backup.cronjob.schedule | quote }}
  concurrencyPolicy: {{ .Values.backup.cronjob.concurrencyPolicy }}
  successfulJobsHistoryLimit: {{ .Values.backup.cronjob.historyLimit }}
  failedJobsHistoryLimit: {{ .Values.backup.cronjob.historyLimit }}
  jobTemplate:
    spec:
      backoffLimit: 2
      template:
        metadata:
          labels:
            {{- include "postgresql.labels" . | nindent 12 }}
        spec:
          restartPolicy: OnFailure
          serviceAccountName: {{ include "postgresql.serviceAccountName" . }}
          containers:
            - name: pg-dump
              image: {{ include "postgresql.image" . }}
              imagePullPolicy: {{ .Values.image.pullPolicy | quote }}
              securityContext:
                runAsNonRoot: true
                allowPrivilegeEscalation: false
              env:
                - name: PGHOST
                  value: {{ include "postgresql.fullname" . }}
                - name: PGUSER
                  value: {{ .Values.auth.username | quote }}
                - name: BACKUP_RETENTION_DAYS
                  value: {{ .Values.backup.retention | quote }}
              resources:
                requests:
                  cpu: 100m
                  memory: 128Mi
{{- end }}
`,
	}
}
