package charts

import (
	"sort"
	"testing"

	"repro/internal/chart"
	"repro/internal/core"
	"repro/internal/object"
)

// renderStore renders the multi-service scenario chart into its objects.
func renderStore(t *testing.T) []object.Object {
	t.Helper()
	files, err := MustLoad("store").Render(nil, chart.ReleaseOptions{Name: "rel", Namespace: "store"})
	if err != nil {
		t.Fatal(err)
	}
	return chart.Objects(files)
}

// TestStoreScenarioFootprint pins the multi-service chart's resource
// surface: three components with their Services and ServiceAccounts,
// per-component credential Secrets, RBAC for the processor, and the DB
// NetworkPolicy — and checks it stays OUT of the five-chart corpus the
// committed baselines are pinned to.
func TestStoreScenarioFootprint(t *testing.T) {
	for _, name := range Names() {
		if name == "store" {
			t.Fatal("store must not join the baseline corpus (Names)")
		}
	}
	found := false
	for _, name := range ScenarioNames() {
		if name == "store" {
			found = true
		}
	}
	if !found {
		t.Fatal("store missing from ScenarioNames")
	}

	objs := renderStore(t)
	kinds := map[string]bool{}
	for _, o := range objs {
		kinds[o.Kind()] = true
		if o.Namespace() != "store" {
			t.Errorf("%s/%s rendered outside the release namespace: %q", o.Kind(), o.Name(), o.Namespace())
		}
	}
	var got []string
	for k := range kinds {
		got = append(got, k)
	}
	sort.Strings(got)
	want := ExpectedKinds("store")
	if len(got) != len(want) {
		t.Fatalf("rendered kinds %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rendered kinds %v, want %v", got, want)
		}
	}

	// Every component is present on both workloads and Secrets, keyed by
	// the recommended component label — the hook the cross-resource
	// secret-ownership invariant derives from.
	workloads := map[string]bool{}
	secrets := map[string]bool{}
	for _, o := range objs {
		labels, ok := object.GetMap(o, "metadata.labels")
		if !ok {
			continue
		}
		component, _ := labels["app.kubernetes.io/component"].(string)
		switch o.Kind() {
		case "Deployment", "StatefulSet":
			workloads[component] = true
		case "Secret":
			secrets[component] = true
		}
	}
	for _, c := range []string{"store-api", "order-processor", "customer-db"} {
		if !workloads[c] {
			t.Errorf("no workload labeled component %s", c)
		}
		if !secrets[c] {
			t.Errorf("no credentials Secret labeled component %s", c)
		}
	}
}

// TestStorePolicySelfConsistent runs the store chart through the full
// policy-generation pipeline and checks the benign trace passes its own
// policy — the same (policy, trace) contract the corpus charts satisfy.
func TestStorePolicySelfConsistent(t *testing.T) {
	res, err := core.GeneratePolicy(MustLoad("store"), core.Options{Namespace: "store"})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range renderStore(t) {
		if vs := res.Validator.Validate(o); len(vs) != 0 {
			t.Errorf("benign %s/%s denied: %v", o.Kind(), o.Name(), vs)
		}
	}
}
