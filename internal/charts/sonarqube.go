package charts

import "repro/internal/chart"

// sonarqubeChart re-creates the openshift-bootstraps/sonarqube operator
// footprint — the widest of the corpus (paper Fig. 9, row 5): Deployment
// (app), StatefulSet (embedded search node), Pod (helm-test style
// connectivity check), Job (bootstrap/migration), Service, ConfigMap,
// NetworkPolicy, Ingress, IngressClass, ServiceAccount,
// PersistentVolumeClaim, ValidatingWebhookConfiguration (config guard),
// Secret, Role, RoleBinding, ClusterRole, ClusterRoleBinding.
func sonarqubeChart() chart.Fileset {
	return chart.Fileset{
		"Chart.yaml": `
name: sonarqube
version: 10.4.0
appVersion: "10.4.1"
description: SonarQube code-quality and security platform
`,
		"values.yaml": `
replicaCount: 1
image:
  registry: docker.io
  repository: bitnami/sonarqube
  tag: "10.4.1-debian-12"
  # IfNotPresent or Always
  pullPolicy: IfNotPresent
auth:
  adminUser: admin
  adminPassword: changeme-sonar
search:
  enabled: true
  replicaCount: 1
  heapSize: 512m
  persistence:
    size: 5Gi
jvm:
  xmx: 2G
  xms: 1G
monitoring:
  # Passcode for liveness checks of the web server
  passcode: sonar-liveness
containerPorts:
  http: 9000
  search: 9001
podSecurityContext:
  enabled: true
  fsGroup: 1000
containerSecurityContext:
  enabled: true
  runAsUser: 1000
  runAsNonRoot: true
  allowPrivilegeEscalation: false
  readOnlyRootFilesystem: true
resources:
  limits:
    cpu: 2000m
    memory: 4Gi
  requests:
    cpu: 500m
    memory: 2Gi
service:
  # ClusterIP or NodePort
  type: ClusterIP
  port: 9000
networkPolicy:
  enabled: true
persistence:
  enabled: true
  size: 10Gi
  # ReadWriteOnce or ReadWriteMany
  accessMode: ReadWriteOnce
serviceAccount:
  create: true
  name: ""
rbac:
  create: true
  clusterWide: true
ingress:
  enabled: true
  createIngressClass: true
  className: sonarqube-nginx
  host: sonarqube.local
  path: /
  # Prefix or Exact
  pathType: Prefix
bootstrapJob:
  enabled: true
  backoffLimit: 3
webhookGuard:
  enabled: true
  # Fail or Ignore
  failurePolicy: Fail
tests:
  enabled: true
`,
		"templates/_helpers.tpl": commonHelpers("sonarqube"),
		"templates/deployment.yaml": `
apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ include "sonarqube.fullname" . }}
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "sonarqube.labels" . | nindent 4 }}
spec:
  replicas: {{ .Values.replicaCount }}
  selector:
    matchLabels:
      {{- include "sonarqube.matchLabels" . | nindent 6 }}
  strategy:
    type: Recreate
  template:
    metadata:
      labels:
        {{- include "sonarqube.labels" . | nindent 8 }}
    spec:
      serviceAccountName: {{ include "sonarqube.serviceAccountName" . }}
      {{- if .Values.podSecurityContext.enabled }}
      securityContext:
        fsGroup: {{ .Values.podSecurityContext.fsGroup }}
      {{- end }}
      initContainers:
        - name: init-sysctl
          image: {{ include "sonarqube.image" . }}
          imagePullPolicy: {{ .Values.image.pullPolicy | quote }}
          securityContext:
            runAsNonRoot: true
            allowPrivilegeEscalation: false
          resources:
            requests:
              cpu: 50m
              memory: 64Mi
      containers:
        - name: sonarqube
          image: {{ include "sonarqube.image" . }}
          imagePullPolicy: {{ .Values.image.pullPolicy | quote }}
          {{- if .Values.containerSecurityContext.enabled }}
          securityContext:
            runAsUser: {{ .Values.containerSecurityContext.runAsUser }}
            runAsNonRoot: {{ .Values.containerSecurityContext.runAsNonRoot }}
            allowPrivilegeEscalation: {{ .Values.containerSecurityContext.allowPrivilegeEscalation }}
            readOnlyRootFilesystem: {{ .Values.containerSecurityContext.readOnlyRootFilesystem }}
          {{- end }}
          ports:
            - name: http
              containerPort: {{ .Values.containerPorts.http }}
          env:
            - name: SONAR_WEB_JAVAOPTS
              value: "-Xmx{{ .Values.jvm.xmx }} -Xms{{ .Values.jvm.xms }}"
            - name: SONAR_WEB_SYSTEMPASSCODE
              valueFrom:
                secretKeyRef:
                  name: {{ include "sonarqube.fullname" . }}-monitoring
                  key: passcode
            {{- if .Values.search.enabled }}
            - name: SONAR_ES_BOOTSTRAP_CHECKS_DISABLE
              value: "true"
            {{- end }}
          livenessProbe:
            httpGet:
              path: /api/system/liveness
              port: http
            initialDelaySeconds: 60
            periodSeconds: 30
          readinessProbe:
            httpGet:
              path: /api/system/status
              port: http
            initialDelaySeconds: 30
            periodSeconds: 30
          resources:
            {{- toYaml .Values.resources | nindent 12 }}
          volumeMounts:
            - name: data
              mountPath: /opt/sonarqube/data
            - name: config
              mountPath: /opt/sonarqube/conf
      volumes:
        - name: data
          {{- if .Values.persistence.enabled }}
          persistentVolumeClaim:
            claimName: {{ include "sonarqube.fullname" . }}-data
          {{- else }}
          emptyDir: {}
          {{- end }}
        - name: config
          configMap:
            name: {{ include "sonarqube.fullname" . }}-config
`,
		"templates/search-statefulset.yaml": `
{{- if .Values.search.enabled }}
apiVersion: apps/v1
kind: StatefulSet
metadata:
  name: {{ include "sonarqube.fullname" . }}-search
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "sonarqube.labels" . | nindent 4 }}
spec:
  replicas: {{ .Values.search.replicaCount }}
  serviceName: {{ include "sonarqube.fullname" . }}-search
  selector:
    matchLabels:
      {{- include "sonarqube.matchLabels" . | nindent 6 }}
  template:
    metadata:
      labels:
        {{- include "sonarqube.labels" . | nindent 8 }}
    spec:
      serviceAccountName: {{ include "sonarqube.serviceAccountName" . }}
      containers:
        - name: search
          image: {{ include "sonarqube.image" . }}
          imagePullPolicy: {{ .Values.image.pullPolicy | quote }}
          securityContext:
            runAsNonRoot: true
            allowPrivilegeEscalation: false
          ports:
            - name: search
              containerPort: {{ .Values.containerPorts.search }}
          env:
            - name: SONAR_SEARCH_JAVAOPTS
              value: "-Xmx{{ .Values.search.heapSize }} -Xms{{ .Values.search.heapSize }}"
          readinessProbe:
            tcpSocket:
              port: search
            initialDelaySeconds: 20
          resources:
            requests:
              cpu: 250m
              memory: 1Gi
          volumeMounts:
            - name: search-data
              mountPath: /opt/sonarqube/es
  volumeClaimTemplates:
    - metadata:
        name: search-data
      spec:
        accessModes:
          - ReadWriteOnce
        resources:
          requests:
            storage: {{ .Values.search.persistence.size | quote }}
{{- end }}
`,
		"templates/test-pod.yaml": `
{{- if .Values.tests.enabled }}
apiVersion: v1
kind: Pod
metadata:
  name: {{ include "sonarqube.fullname" . }}-test
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "sonarqube.labels" . | nindent 4 }}
  annotations:
    helm.sh/hook: test
spec:
  restartPolicy: Never
  serviceAccountName: {{ include "sonarqube.serviceAccountName" . }}
  containers:
    - name: curl
      image: {{ include "sonarqube.image" . }}
      imagePullPolicy: {{ .Values.image.pullPolicy | quote }}
      securityContext:
        runAsNonRoot: true
        allowPrivilegeEscalation: false
      env:
        - name: TARGET_URL
          value: "http://{{ include "sonarqube.fullname" . }}:{{ .Values.service.port }}/api/system/status"
      resources:
        requests:
          cpu: 50m
          memory: 64Mi
{{- end }}
`,
		"templates/bootstrap-job.yaml": `
{{- if .Values.bootstrapJob.enabled }}
apiVersion: batch/v1
kind: Job
metadata:
  name: {{ include "sonarqube.fullname" . }}-bootstrap
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "sonarqube.labels" . | nindent 4 }}
spec:
  backoffLimit: {{ .Values.bootstrapJob.backoffLimit }}
  template:
    metadata:
      labels:
        {{- include "sonarqube.labels" . | nindent 8 }}
    spec:
      restartPolicy: OnFailure
      serviceAccountName: {{ include "sonarqube.serviceAccountName" . }}
      containers:
        - name: bootstrap
          image: {{ include "sonarqube.image" . }}
          imagePullPolicy: {{ .Values.image.pullPolicy | quote }}
          securityContext:
            runAsNonRoot: true
            allowPrivilegeEscalation: false
          env:
            - name: SONAR_ADMIN_USER
              value: {{ .Values.auth.adminUser | quote }}
            - name: SONAR_ADMIN_PASSWORD
              valueFrom:
                secretKeyRef:
                  name: {{ include "sonarqube.fullname" . }}-admin
                  key: admin-password
          resources:
            requests:
              cpu: 100m
              memory: 128Mi
{{- end }}
`,
		"templates/service.yaml": `
apiVersion: v1
kind: Service
metadata:
  name: {{ include "sonarqube.fullname" . }}
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "sonarqube.labels" . | nindent 4 }}
spec:
  type: {{ .Values.service.type }}
  ports:
    - name: http
      port: {{ .Values.service.port }}
      targetPort: http
      protocol: TCP
  selector:
    {{- include "sonarqube.matchLabels" . | nindent 4 }}
---
{{- if .Values.search.enabled }}
apiVersion: v1
kind: Service
metadata:
  name: {{ include "sonarqube.fullname" . }}-search
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "sonarqube.labels" . | nindent 4 }}
spec:
  type: ClusterIP
  clusterIP: None
  ports:
    - name: search
      port: {{ .Values.containerPorts.search }}
      targetPort: search
  selector:
    {{- include "sonarqube.matchLabels" . | nindent 4 }}
{{- end }}
`,
		"templates/configmap.yaml": `
apiVersion: v1
kind: ConfigMap
metadata:
  name: {{ include "sonarqube.fullname" . }}-config
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "sonarqube.labels" . | nindent 4 }}
data:
  sonar.properties: |
    sonar.web.port={{ .Values.containerPorts.http }}
    sonar.search.port={{ .Values.containerPorts.search }}
  wrapper.conf: |
    wrapper.java.maxmemory={{ .Values.jvm.xmx }}
`,
		"templates/secret.yaml": `
apiVersion: v1
kind: Secret
metadata:
  name: {{ include "sonarqube.fullname" . }}-admin
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "sonarqube.labels" . | nindent 4 }}
type: Opaque
stringData:
  admin-user: {{ .Values.auth.adminUser | quote }}
  admin-password: {{ .Values.auth.adminPassword | quote }}
---
apiVersion: v1
kind: Secret
metadata:
  name: {{ include "sonarqube.fullname" . }}-monitoring
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "sonarqube.labels" . | nindent 4 }}
type: Opaque
stringData:
  passcode: {{ .Values.monitoring.passcode | quote }}
`,
		"templates/networkpolicy.yaml": `
{{- if .Values.networkPolicy.enabled }}
apiVersion: networking.k8s.io/v1
kind: NetworkPolicy
metadata:
  name: {{ include "sonarqube.fullname" . }}
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "sonarqube.labels" . | nindent 4 }}
spec:
  podSelector:
    matchLabels:
      {{- include "sonarqube.matchLabels" . | nindent 6 }}
  policyTypes:
    - Ingress
  ingress:
    - ports:
        - port: {{ .Values.containerPorts.http }}
        - port: {{ .Values.containerPorts.search }}
{{- end }}
`,
		"templates/pvc.yaml": `
{{- if .Values.persistence.enabled }}
apiVersion: v1
kind: PersistentVolumeClaim
metadata:
  name: {{ include "sonarqube.fullname" . }}-data
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "sonarqube.labels" . | nindent 4 }}
spec:
  accessModes:
    - {{ .Values.persistence.accessMode }}
  resources:
    requests:
      storage: {{ .Values.persistence.size | quote }}
{{- end }}
`,
		"templates/serviceaccount.yaml": `
{{- if .Values.serviceAccount.create }}
apiVersion: v1
kind: ServiceAccount
metadata:
  name: {{ include "sonarqube.serviceAccountName" . }}
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "sonarqube.labels" . | nindent 4 }}
automountServiceAccountToken: true
{{- end }}
`,
		"templates/rbac.yaml": `
{{- if .Values.rbac.create }}
apiVersion: rbac.authorization.k8s.io/v1
kind: Role
metadata:
  name: {{ include "sonarqube.fullname" . }}
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "sonarqube.labels" . | nindent 4 }}
rules:
  - apiGroups:
      - ""
    resources:
      - configmaps
      - secrets
    verbs:
      - get
      - list
---
apiVersion: rbac.authorization.k8s.io/v1
kind: RoleBinding
metadata:
  name: {{ include "sonarqube.fullname" . }}
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "sonarqube.labels" . | nindent 4 }}
roleRef:
  apiGroup: rbac.authorization.k8s.io
  kind: Role
  name: {{ include "sonarqube.fullname" . }}
subjects:
  - kind: ServiceAccount
    name: {{ include "sonarqube.serviceAccountName" . }}
    namespace: {{ .Release.Namespace }}
{{- end }}
{{- if and .Values.rbac.create .Values.rbac.clusterWide }}
---
apiVersion: rbac.authorization.k8s.io/v1
kind: ClusterRole
metadata:
  name: {{ include "sonarqube.fullname" . }}-webhook-reader
  labels:
    {{- include "sonarqube.labels" . | nindent 4 }}
rules:
  - apiGroups:
      - admissionregistration.k8s.io
    resources:
      - validatingwebhookconfigurations
    verbs:
      - get
      - list
      - watch
---
apiVersion: rbac.authorization.k8s.io/v1
kind: ClusterRoleBinding
metadata:
  name: {{ include "sonarqube.fullname" . }}-webhook-reader
  labels:
    {{- include "sonarqube.labels" . | nindent 4 }}
roleRef:
  apiGroup: rbac.authorization.k8s.io
  kind: ClusterRole
  name: {{ include "sonarqube.fullname" . }}-webhook-reader
subjects:
  - kind: ServiceAccount
    name: {{ include "sonarqube.serviceAccountName" . }}
    namespace: {{ .Release.Namespace }}
{{- end }}
`,
		"templates/ingress.yaml": `
{{- if .Values.ingress.enabled }}
{{- if .Values.ingress.createIngressClass }}
apiVersion: networking.k8s.io/v1
kind: IngressClass
metadata:
  name: {{ .Values.ingress.className }}
  labels:
    {{- include "sonarqube.labels" . | nindent 4 }}
spec:
  controller: k8s.io/ingress-nginx
---
{{- end }}
apiVersion: networking.k8s.io/v1
kind: Ingress
metadata:
  name: {{ include "sonarqube.fullname" . }}
  namespace: {{ .Release.Namespace }}
  labels:
    {{- include "sonarqube.labels" . | nindent 4 }}
spec:
  ingressClassName: {{ .Values.ingress.className }}
  rules:
    - host: {{ .Values.ingress.host | quote }}
      http:
        paths:
          - path: {{ .Values.ingress.path }}
            pathType: {{ .Values.ingress.pathType }}
            backend:
              service:
                name: {{ include "sonarqube.fullname" . }}
                port:
                  name: http
{{- end }}
`,
		"templates/webhook.yaml": `
{{- if .Values.webhookGuard.enabled }}
apiVersion: admissionregistration.k8s.io/v1
kind: ValidatingWebhookConfiguration
metadata:
  name: {{ include "sonarqube.fullname" . }}-config-guard
  labels:
    {{- include "sonarqube.labels" . | nindent 4 }}
webhooks:
  - name: config-guard.sonarqube.io
    clientConfig:
      service:
        namespace: {{ .Release.Namespace }}
        name: {{ include "sonarqube.fullname" . }}
        path: /admission/validate
        port: {{ .Values.service.port }}
    rules:
      - apiGroups:
          - ""
        apiVersions:
          - v1
        operations:
          - UPDATE
        resources:
          - configmaps
        scope: Namespaced
    failurePolicy: {{ .Values.webhookGuard.failurePolicy }}
    sideEffects: None
    timeoutSeconds: 10
    admissionReviewVersions:
      - v1
{{- end }}
`,
	}
}
