package object

import (
	"fmt"
	"strings"
)

// GVK identifies a Kubernetes API group, version, and kind.
type GVK struct {
	Group   string // "" for the core group
	Version string // e.g. "v1"
	Kind    string // e.g. "Deployment"
}

// String renders "apps/v1, Kind=Deployment" like upstream Kubernetes.
func (g GVK) String() string {
	return fmt.Sprintf("%s/%s, Kind=%s", g.Group, g.Version, g.Kind)
}

// APIVersion renders the apiVersion manifest field ("v1" or "apps/v1").
func (g GVK) APIVersion() string {
	if g.Group == "" {
		return g.Version
	}
	return g.Group + "/" + g.Version
}

// FromAPIVersionKind builds a GVK from manifest fields.
func FromAPIVersionKind(apiVersion, kind string) GVK {
	if i := strings.IndexByte(apiVersion, '/'); i >= 0 {
		return GVK{Group: apiVersion[:i], Version: apiVersion[i+1:], Kind: kind}
	}
	return GVK{Group: "", Version: apiVersion, Kind: kind}
}

// ResourceInfo describes the REST mapping for a kind.
type ResourceInfo struct {
	GVK        GVK
	Resource   string // plural lowercase resource name, e.g. "deployments"
	Namespaced bool
}

// knownResources is the REST mapping table for every kind the simulated
// API server serves. It covers the 20 endpoints of the paper's Fig. 9 plus
// Namespace, which the server needs for bootstrapping.
var knownResources = []ResourceInfo{
	{GVK{"", "v1", "Pod"}, "pods", true},
	{GVK{"", "v1", "Service"}, "services", true},
	{GVK{"", "v1", "ConfigMap"}, "configmaps", true},
	{GVK{"", "v1", "Secret"}, "secrets", true},
	{GVK{"", "v1", "ServiceAccount"}, "serviceaccounts", true},
	{GVK{"", "v1", "PersistentVolumeClaim"}, "persistentvolumeclaims", true},
	{GVK{"", "v1", "Namespace"}, "namespaces", false},
	{GVK{"apps", "v1", "Deployment"}, "deployments", true},
	{GVK{"apps", "v1", "StatefulSet"}, "statefulsets", true},
	{GVK{"apps", "v1", "DaemonSet"}, "daemonsets", true},
	{GVK{"apps", "v1", "ReplicaSet"}, "replicasets", true},
	{GVK{"batch", "v1", "Job"}, "jobs", true},
	{GVK{"batch", "v1", "CronJob"}, "cronjobs", true},
	{GVK{"networking.k8s.io", "v1", "NetworkPolicy"}, "networkpolicies", true},
	{GVK{"networking.k8s.io", "v1", "Ingress"}, "ingresses", true},
	{GVK{"networking.k8s.io", "v1", "IngressClass"}, "ingressclasses", false},
	{GVK{"autoscaling", "v2", "HorizontalPodAutoscaler"}, "horizontalpodautoscalers", true},
	{GVK{"policy", "v1", "PodDisruptionBudget"}, "poddisruptionbudgets", true},
	{GVK{"admissionregistration.k8s.io", "v1", "ValidatingWebhookConfiguration"}, "validatingwebhookconfigurations", false},
	{GVK{"rbac.authorization.k8s.io", "v1", "Role"}, "roles", true},
	{GVK{"rbac.authorization.k8s.io", "v1", "RoleBinding"}, "rolebindings", true},
	{GVK{"rbac.authorization.k8s.io", "v1", "ClusterRole"}, "clusterroles", false},
	{GVK{"rbac.authorization.k8s.io", "v1", "ClusterRoleBinding"}, "clusterrolebindings", false},
	// Operator-style custom resources served by the simulated cluster:
	// the mutation matrix's operator-crd class submits pod templates
	// through these API surfaces (internal/mutate).
	{GVK{"apps.example.com", "v1alpha1", "StoreApp"}, "storeapps", true},
	{GVK{"stable.example.com", "v1", "CronTab"}, "crontabs", true},
}

var (
	byKind     = buildIndex(func(ri ResourceInfo) string { return ri.GVK.Kind })
	byResource = buildIndex(func(ri ResourceInfo) string { return ri.GVK.Group + "/" + ri.Resource })
)

func buildIndex(key func(ResourceInfo) string) map[string]ResourceInfo {
	m := make(map[string]ResourceInfo, len(knownResources))
	for _, ri := range knownResources {
		m[key(ri)] = ri
	}
	return m
}

// LookupKind returns the REST mapping for a kind.
func LookupKind(kind string) (ResourceInfo, bool) {
	ri, ok := byKind[kind]
	return ri, ok
}

// LookupResource returns the REST mapping for a (group, plural resource)
// pair, e.g. ("apps", "deployments").
func LookupResource(group, resource string) (ResourceInfo, bool) {
	ri, ok := byResource[group+"/"+resource]
	return ri, ok
}

// AllResources returns the full REST mapping table, in registration order.
func AllResources() []ResourceInfo {
	out := make([]ResourceInfo, len(knownResources))
	copy(out, knownResources)
	return out
}

// Path returns the REST collection path for the resource within a
// namespace; ns is ignored for cluster-scoped resources.
func (ri ResourceInfo) Path(ns string) string {
	var b strings.Builder
	if ri.GVK.Group == "" {
		b.WriteString("/api/" + ri.GVK.Version)
	} else {
		b.WriteString("/apis/" + ri.GVK.Group + "/" + ri.GVK.Version)
	}
	if ri.Namespaced && ns != "" {
		b.WriteString("/namespaces/" + ns)
	}
	b.WriteString("/" + ri.Resource)
	return b.String()
}
