package object

import (
	"testing"
)

func TestParseJSONPreservesInt64Precision(t *testing.T) {
	// 9007199254740993 = 2^53 + 1: the first integer float64 cannot
	// represent. Plain json.Unmarshal coerces it to 9007199254740992.
	body := []byte(`{"kind":"Pod","spec":{"securityContext":{"runAsUser":9007199254740993}}}`)
	o, err := ParseJSON(body)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := Get(o, "spec.securityContext.runAsUser")
	if !ok {
		t.Fatal("runAsUser missing after decode")
	}
	i, ok := v.(int64)
	if !ok {
		t.Fatalf("runAsUser decoded as %T, want int64", v)
	}
	if i != 9007199254740993 {
		t.Fatalf("runAsUser = %d, precision lost (want 9007199254740993)", i)
	}
}

func TestParseJSONNumberForms(t *testing.T) {
	o, err := ParseJSON([]byte(`{"i":42,"neg":-7,"f":1.5,"intish":3.0,"exp":1e3,"big":99999999999999999999}`))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		key  string
		want any
	}{
		{"i", int64(42)},
		{"neg", int64(-7)},
		{"f", 1.5},
		// "3.0" and "1e3" fail json.Number.Int64 (ParseInt rejects the
		// dot/exponent) and land as float64, matching plain Unmarshal.
		{"intish", 3.0},
		{"exp", 1000.0},
		// Beyond int64 range: falls to float64 rather than erroring.
		{"big", 1e20},
	} {
		got := o[tc.key]
		if got != tc.want {
			t.Errorf("%s = %v (%T), want %v (%T)", tc.key, got, got, tc.want, tc.want)
		}
	}
}

func TestParseJSONErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		body string
	}{
		{"malformed", `{"a":`},
		{"array root", `[1,2]`},
		{"scalar root", `"x"`},
		{"trailing data", `{"a":1} {"b":2}`},
		{"overflowing exponent", `{"a":1e999}`},
		{"nested overflow", `{"a":{"b":[1e999]}}`},
	} {
		if _, err := ParseJSON([]byte(tc.body)); err == nil {
			t.Errorf("%s: ParseJSON(%q) succeeded, want error", tc.name, tc.body)
		}
	}
}

func TestScalarEqualPrecision(t *testing.T) {
	for _, tc := range []struct {
		a, b any
		want bool
	}{
		{int64(5), 5.0, true},
		{5.0, int64(5), true},
		{int64(5), int(5), true},
		{int64(5), 5.5, false},
		{1.5, 1.5, true},
		{1.5, 2.5, false},
		// The precision cases: adjacent int64s beyond 2^53 must stay
		// distinct, and an approximating float64 must not collide.
		{int64(9007199254740993), int64(9007199254740993), true},
		{int64(9007199254740993), int64(9007199254740992), false},
		{int64(9007199254740993), 9007199254740992.0, false},
		{int64(9007199254740992), 9007199254740992.0, true},
		{int64(5), "5", false},
		{1e300, int64(42), false},
	} {
		if got := Equal(tc.a, tc.b); got != tc.want {
			t.Errorf("Equal(%v (%T), %v (%T)) = %v, want %v",
				tc.a, tc.a, tc.b, tc.b, got, tc.want)
		}
	}
}
