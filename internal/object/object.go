// Package object provides the unstructured Kubernetes object model used
// throughout KubeFence: manifests decoded to map[string]any trees, group/
// version/kind (GVK) routing between kinds and REST endpoints, deep
// copy/get/set helpers, and dotted field-path utilities.
package object

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/yaml"
)

// Object is an unstructured Kubernetes object: the decoded form of a
// manifest. Values are map[string]any, []any, string, bool, int64,
// float64, or nil.
type Object map[string]any

// ParseManifest decodes a single-document YAML manifest into an Object.
func ParseManifest(data []byte) (Object, error) {
	v, err := yaml.Decode(data)
	if err != nil {
		return nil, err
	}
	if v == nil {
		return nil, fmt.Errorf("object: empty manifest")
	}
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("object: manifest root is %T, want mapping", v)
	}
	return Object(m), nil
}

// ParseManifests decodes a multi-document YAML stream, skipping empty docs.
func ParseManifests(data []byte) ([]Object, error) {
	docs, err := yaml.DecodeAll(data)
	if err != nil {
		return nil, err
	}
	var out []Object
	for _, d := range docs {
		if d == nil {
			continue
		}
		m, ok := d.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("object: document root is %T, want mapping", d)
		}
		if len(m) == 0 {
			continue
		}
		out = append(out, Object(m))
	}
	return out, nil
}

// MarshalYAML renders the object as deterministic YAML.
func (o Object) MarshalYAML() ([]byte, error) {
	return yaml.Marshal(map[string]any(o))
}

// Kind returns the object's kind, or "".
func (o Object) Kind() string {
	s, _ := o["kind"].(string)
	return s
}

// APIVersion returns the object's apiVersion, or "".
func (o Object) APIVersion() string {
	s, _ := o["apiVersion"].(string)
	return s
}

// Name returns metadata.name, or "".
func (o Object) Name() string {
	s, _ := GetString(o, "metadata.name")
	return s
}

// Namespace returns metadata.namespace, or "".
func (o Object) Namespace() string {
	s, _ := GetString(o, "metadata.namespace")
	return s
}

// SetNamespace sets metadata.namespace, creating metadata if needed.
func (o Object) SetNamespace(ns string) {
	md, ok := o["metadata"].(map[string]any)
	if !ok {
		md = map[string]any{}
		o["metadata"] = md
	}
	md["namespace"] = ns
}

// GVK returns the object's group/version/kind.
func (o Object) GVK() GVK {
	return FromAPIVersionKind(o.APIVersion(), o.Kind())
}

// DeepCopy returns a structurally independent copy of the object.
func (o Object) DeepCopy() Object {
	return Object(DeepCopyValue(map[string]any(o)).(map[string]any))
}

// DeepCopyValue copies an arbitrary decoded-YAML value tree.
func DeepCopyValue(v any) any {
	switch t := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(t))
		for k, val := range t {
			out[k] = DeepCopyValue(val)
		}
		return out
	case []any:
		out := make([]any, len(t))
		for i, val := range t {
			out[i] = DeepCopyValue(val)
		}
		return out
	default:
		return v
	}
}

// Get retrieves the value at a dotted path ("spec.template.spec"). Path
// segments index into mappings only; use GetAt for list indices.
func Get(o map[string]any, path string) (any, bool) {
	cur := any(o)
	for _, seg := range strings.Split(path, ".") {
		m, ok := cur.(map[string]any)
		if !ok {
			return nil, false
		}
		cur, ok = m[seg]
		if !ok {
			return nil, false
		}
	}
	return cur, true
}

// GetString retrieves a string at a dotted path.
func GetString(o map[string]any, path string) (string, bool) {
	v, ok := Get(o, path)
	if !ok {
		return "", false
	}
	s, ok := v.(string)
	return s, ok
}

// GetMap retrieves a mapping at a dotted path.
func GetMap(o map[string]any, path string) (map[string]any, bool) {
	v, ok := Get(o, path)
	if !ok {
		return nil, false
	}
	m, ok := v.(map[string]any)
	return m, ok
}

// GetSlice retrieves a sequence at a dotted path.
func GetSlice(o map[string]any, path string) ([]any, bool) {
	v, ok := Get(o, path)
	if !ok {
		return nil, false
	}
	s, ok := v.([]any)
	return s, ok
}

// Set writes a value at a dotted path, creating intermediate mappings.
// It fails if an intermediate segment exists and is not a mapping.
func Set(o map[string]any, path string, value any) error {
	segs := strings.Split(path, ".")
	cur := o
	for i, seg := range segs[:len(segs)-1] {
		next, ok := cur[seg]
		if !ok || next == nil {
			nm := map[string]any{}
			cur[seg] = nm
			cur = nm
			continue
		}
		nm, ok := next.(map[string]any)
		if !ok {
			return fmt.Errorf("object: path %q blocked at %q by %T",
				path, strings.Join(segs[:i+1], "."), next)
		}
		cur = nm
	}
	cur[segs[len(segs)-1]] = value
	return nil
}

// Delete removes the value at a dotted path. Missing paths are a no-op.
func Delete(o map[string]any, path string) {
	segs := strings.Split(path, ".")
	cur := o
	for _, seg := range segs[:len(segs)-1] {
		next, ok := cur[seg].(map[string]any)
		if !ok {
			return
		}
		cur = next
	}
	delete(cur, segs[len(segs)-1])
}

// Paths returns every leaf field path in the value tree, in sorted order.
// Sequence elements are traversed but do not contribute an index segment:
// all items of a list share the same path prefix, which matches how the
// KubeFence validator treats list schemas (one schema per item shape).
func Paths(v any) []string {
	set := map[string]bool{}
	collectPaths(v, "", set)
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func collectPaths(v any, prefix string, set map[string]bool) {
	switch t := v.(type) {
	case map[string]any:
		if len(t) == 0 && prefix != "" {
			set[prefix] = true
		}
		for k, val := range t {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			collectPaths(val, p, set)
		}
	case []any:
		if len(t) == 0 && prefix != "" {
			set[prefix] = true
		}
		for _, val := range t {
			collectPaths(val, prefix, set)
		}
	default:
		if prefix != "" {
			set[prefix] = true
		}
	}
}

// Equal reports deep equality of two decoded-YAML value trees, treating
// integral float64 and int64 as interchangeable (JSON decodes numbers as
// float64 while YAML produces int64).
func Equal(a, b any) bool {
	switch ta := a.(type) {
	case map[string]any:
		tb, ok := b.(map[string]any)
		if !ok || len(ta) != len(tb) {
			return false
		}
		for k, va := range ta {
			vb, ok := tb[k]
			if !ok || !Equal(va, vb) {
				return false
			}
		}
		return true
	case []any:
		tb, ok := b.([]any)
		if !ok || len(ta) != len(tb) {
			return false
		}
		for i := range ta {
			if !Equal(ta[i], tb[i]) {
				return false
			}
		}
		return true
	default:
		return scalarEqual(a, b)
	}
}

// scalarEqual compares scalars exactly. Integer forms (int, int64)
// compare as integers; a float64 equals an integer only when it is an
// exact integral value representing the same number. Comparing through
// float64 for ALL integer pairs (the old behavior) made every int64
// beyond the float53 mantissa equal to its neighbors, so a policy
// pinning runAsUser to 9007199254740993 would also accept ...992.
func scalarEqual(a, b any) bool {
	if a == b {
		return true
	}
	ai, aInt := toInt64(a)
	bi, bInt := toInt64(b)
	switch {
	case aInt && bInt:
		return ai == bi
	case aInt:
		f, ok := b.(float64)
		return ok && FloatEqualsInt(f, ai)
	case bInt:
		f, ok := a.(float64)
		return ok && FloatEqualsInt(f, bi)
	default:
		return false
	}
}

func toInt64(v any) (int64, bool) {
	switch t := v.(type) {
	case int:
		return int64(t), true
	case int64:
		return t, true
	}
	return 0, false
}

// FloatEqualsInt reports whether f is an exact integral float64 whose
// value is i — precision-preserving, unlike comparing float64(i) to f.
// Exported because the compiled engine's raw-bytes matcher (internal/
// compile) must compare parsed integer literals against policy values
// with exactly these semantics.
func FloatEqualsInt(f float64, i int64) bool {
	// 2^63 is exactly representable; everything at or beyond it cannot
	// be a valid int64.
	if f < -9223372036854775808.0 || f >= 9223372036854775808.0 {
		return false
	}
	n := int64(f)
	return float64(n) == f && n == i
}
