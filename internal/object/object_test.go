package object

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

const sampleDeployment = `
apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
  namespace: prod
spec:
  replicas: 3
  template:
    spec:
      containers:
      - name: nginx
        image: nginx:1.25
        securityContext:
          runAsNonRoot: true
`

func mustParse(t *testing.T, s string) Object {
	t.Helper()
	o, err := ParseManifest([]byte(s))
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestAccessors(t *testing.T) {
	o := mustParse(t, sampleDeployment)
	if o.Kind() != "Deployment" {
		t.Errorf("Kind = %q", o.Kind())
	}
	if o.APIVersion() != "apps/v1" {
		t.Errorf("APIVersion = %q", o.APIVersion())
	}
	if o.Name() != "web" {
		t.Errorf("Name = %q", o.Name())
	}
	if o.Namespace() != "prod" {
		t.Errorf("Namespace = %q", o.Namespace())
	}
	gvk := o.GVK()
	if gvk.Group != "apps" || gvk.Version != "v1" || gvk.Kind != "Deployment" {
		t.Errorf("GVK = %+v", gvk)
	}
}

func TestSetNamespace(t *testing.T) {
	o := Object{"kind": "Pod"}
	o.SetNamespace("dev")
	if o.Namespace() != "dev" {
		t.Errorf("Namespace = %q", o.Namespace())
	}
}

func TestGetSet(t *testing.T) {
	o := mustParse(t, sampleDeployment)
	if v, ok := Get(o, "spec.replicas"); !ok || v != int64(3) {
		t.Errorf("Get replicas = %v, %v", v, ok)
	}
	if _, ok := Get(o, "spec.missing.deep"); ok {
		t.Error("Get on missing path should fail")
	}
	if err := Set(o, "spec.strategy.type", "Recreate"); err != nil {
		t.Fatal(err)
	}
	if v, _ := GetString(o, "spec.strategy.type"); v != "Recreate" {
		t.Errorf("after Set, got %q", v)
	}
	// Setting through a scalar must fail.
	if err := Set(o, "kind.sub", 1); err == nil {
		t.Error("Set through scalar should fail")
	}
}

func TestDelete(t *testing.T) {
	o := mustParse(t, sampleDeployment)
	Delete(o, "spec.replicas")
	if _, ok := Get(o, "spec.replicas"); ok {
		t.Error("replicas still present after Delete")
	}
	Delete(o, "no.such.path") // must not panic
}

func TestDeepCopyIndependence(t *testing.T) {
	o := mustParse(t, sampleDeployment)
	c := o.DeepCopy()
	if err := Set(c, "spec.replicas", int64(9)); err != nil {
		t.Fatal(err)
	}
	if v, _ := Get(o, "spec.replicas"); v != int64(3) {
		t.Errorf("mutation leaked into original: %v", v)
	}
	cs, _ := GetSlice(c, "spec.template.spec.containers")
	cs[0].(map[string]any)["image"] = "evil"
	os, _ := GetSlice(o, "spec.template.spec.containers")
	if os[0].(map[string]any)["image"] != "nginx:1.25" {
		t.Error("slice mutation leaked into original")
	}
}

func TestPaths(t *testing.T) {
	o := mustParse(t, sampleDeployment)
	paths := Paths(map[string]any(o))
	want := []string{
		"apiVersion", "kind", "metadata.name", "metadata.namespace",
		"spec.replicas",
		"spec.template.spec.containers.image",
		"spec.template.spec.containers.name",
		"spec.template.spec.containers.securityContext.runAsNonRoot",
	}
	if !reflect.DeepEqual(paths, want) {
		t.Errorf("Paths = %v, want %v", paths, want)
	}
}

func TestPathsEmptyCollections(t *testing.T) {
	paths := Paths(map[string]any{
		"a": map[string]any{},
		"b": []any{},
	})
	if !reflect.DeepEqual(paths, []string{"a", "b"}) {
		t.Errorf("Paths = %v", paths)
	}
}

func TestEqualNumericBridge(t *testing.T) {
	// JSON decodes 3 as float64(3); YAML as int64(3). Equal must bridge.
	a := map[string]any{"replicas": int64(3), "list": []any{int64(1)}}
	b := map[string]any{"replicas": float64(3), "list": []any{float64(1)}}
	if !Equal(a, b) {
		t.Error("int64/float64 should compare equal")
	}
	if Equal(map[string]any{"x": int64(3)}, map[string]any{"x": float64(3.5)}) {
		t.Error("3 != 3.5")
	}
	if Equal(map[string]any{"x": "3"}, map[string]any{"x": int64(3)}) {
		t.Error(`"3" != 3`)
	}
}

func TestEqualStructural(t *testing.T) {
	if Equal(map[string]any{"a": int64(1)}, map[string]any{"a": int64(1), "b": int64(2)}) {
		t.Error("different sizes must differ")
	}
	if Equal([]any{int64(1), int64(2)}, []any{int64(2), int64(1)}) {
		t.Error("order matters in sequences")
	}
	if !Equal(nil, nil) {
		t.Error("nil == nil")
	}
}

func TestParseManifestsSkipsEmptyDocs(t *testing.T) {
	objs, err := ParseManifests([]byte("---\n# only a comment\n---\nkind: Pod\n---\nkind: Service\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("len = %d, want 2", len(objs))
	}
}

func TestParseManifestErrors(t *testing.T) {
	if _, err := ParseManifest(nil); err == nil {
		t.Error("empty manifest should error")
	}
	if _, err := ParseManifest([]byte("- just\n- a list\n")); err == nil {
		t.Error("non-mapping root should error")
	}
}

func TestGVKRoundTrip(t *testing.T) {
	tests := []struct {
		apiVersion string
		kind       string
		group      string
		version    string
	}{
		{"v1", "Pod", "", "v1"},
		{"apps/v1", "Deployment", "apps", "v1"},
		{"rbac.authorization.k8s.io/v1", "Role", "rbac.authorization.k8s.io", "v1"},
	}
	for _, tt := range tests {
		g := FromAPIVersionKind(tt.apiVersion, tt.kind)
		if g.Group != tt.group || g.Version != tt.version {
			t.Errorf("FromAPIVersionKind(%q) = %+v", tt.apiVersion, g)
		}
		if g.APIVersion() != tt.apiVersion {
			t.Errorf("APIVersion() = %q, want %q", g.APIVersion(), tt.apiVersion)
		}
	}
}

func TestLookupKind(t *testing.T) {
	ri, ok := LookupKind("Deployment")
	if !ok || ri.Resource != "deployments" || !ri.Namespaced {
		t.Errorf("LookupKind(Deployment) = %+v, %v", ri, ok)
	}
	ri, ok = LookupKind("ClusterRole")
	if !ok || ri.Namespaced {
		t.Errorf("ClusterRole should be cluster-scoped: %+v", ri)
	}
	if _, ok := LookupKind("NoSuchKind"); ok {
		t.Error("unknown kind should not resolve")
	}
}

func TestLookupResource(t *testing.T) {
	ri, ok := LookupResource("apps", "deployments")
	if !ok || ri.GVK.Kind != "Deployment" {
		t.Errorf("LookupResource = %+v, %v", ri, ok)
	}
	ri, ok = LookupResource("", "pods")
	if !ok || ri.GVK.Kind != "Pod" {
		t.Errorf("LookupResource core = %+v, %v", ri, ok)
	}
}

func TestResourcePaths(t *testing.T) {
	tests := []struct {
		kind string
		ns   string
		want string
	}{
		{"Pod", "default", "/api/v1/namespaces/default/pods"},
		{"Deployment", "prod", "/apis/apps/v1/namespaces/prod/deployments"},
		{"ClusterRole", "ignored", "/apis/rbac.authorization.k8s.io/v1/clusterroles"},
		{"Namespace", "", "/api/v1/namespaces"},
	}
	for _, tt := range tests {
		ri, ok := LookupKind(tt.kind)
		if !ok {
			t.Fatalf("kind %s missing", tt.kind)
		}
		if got := ri.Path(tt.ns); got != tt.want {
			t.Errorf("Path(%s, %s) = %q, want %q", tt.kind, tt.ns, got, tt.want)
		}
	}
}

func TestAllResourcesCoversFigure9Endpoints(t *testing.T) {
	// The 20 endpoints in the paper's Fig. 9.
	wanted := []string{
		"Deployment", "StatefulSet", "Pod", "Job", "CronJob", "Service",
		"ConfigMap", "NetworkPolicy", "Ingress", "IngressClass",
		"ServiceAccount", "HorizontalPodAutoscaler", "PodDisruptionBudget",
		"PersistentVolumeClaim", "ValidatingWebhookConfiguration", "Secret",
		"Role", "RoleBinding", "ClusterRole", "ClusterRoleBinding",
	}
	have := map[string]bool{}
	for _, ri := range AllResources() {
		have[ri.GVK.Kind] = true
	}
	for _, k := range wanted {
		if !have[k] {
			t.Errorf("missing Fig. 9 endpoint kind %s", k)
		}
	}
}

func TestDeepCopyQuick(t *testing.T) {
	f := func(n int64) bool {
		o := Object{
			"kind": "Pod",
			"n":    n,
			"m":    map[string]any{"list": []any{n, "s", map[string]any{"k": n}}},
		}
		c := o.DeepCopy()
		if !Equal(map[string]any(o), map[string]any(c)) {
			return false
		}
		c["m"].(map[string]any)["list"].([]any)[2].(map[string]any)["k"] = n + 1
		return o["m"].(map[string]any)["list"].([]any)[2].(map[string]any)["k"] == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMarshalYAMLStable(t *testing.T) {
	o := mustParse(t, sampleDeployment)
	a, err := o.MarshalYAML()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := o.MarshalYAML()
	if string(a) != string(b) {
		t.Error("MarshalYAML is not deterministic")
	}
	if !strings.Contains(string(a), "kind: Deployment") {
		t.Errorf("unexpected output:\n%s", a)
	}
}
