package object

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// ParseJSON decodes a JSON request body into an Object without losing
// integer precision: plain json.Unmarshal coerces every number to
// float64, so an int64 that doesn't fit the float53 mantissa (e.g.
// runAsUser: 9007199254740993) silently becomes its neighbor BEFORE the
// policy ever sees it — two adjacent UIDs validate identically. Numbers
// are decoded with json.Decoder.UseNumber and normalized to the value
// model the rest of KubeFence speaks (int64 when the literal is an
// exact integer, float64 otherwise), matching what the YAML decoder
// produces for manifests.
//
// A number that normalizes to neither (an exponent overflowing float64)
// is a decode error, exactly as it was for plain json.Unmarshal.
func ParseJSON(data []byte) (Object, error) {
	v, err := DecodeJSON(data)
	if err != nil {
		return nil, err
	}
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("object: request root is %s, want object", jsonRootName(v))
	}
	return Object(m), nil
}

// DecodeJSON decodes an arbitrary JSON document with the same
// precision-preserving number normalization as ParseJSON.
func DecodeJSON(data []byte) (any, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, err
	}
	// Mirror json.Unmarshal's strictness: trailing non-space content
	// after the document is an error, not silently ignored.
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("object: trailing data after JSON document")
	}
	return normalizeNumbers(v)
}

// normalizeNumbers rewrites every json.Number in a decoded tree to
// int64 (exact integers) or float64 (everything else), in place where
// possible.
func normalizeNumbers(v any) (any, error) {
	switch t := v.(type) {
	case map[string]any:
		for k, val := range t {
			nv, err := normalizeNumbers(val)
			if err != nil {
				return nil, err
			}
			t[k] = nv
		}
		return t, nil
	case []any:
		for i, val := range t {
			nv, err := normalizeNumbers(val)
			if err != nil {
				return nil, err
			}
			t[i] = nv
		}
		return t, nil
	case json.Number:
		if i, err := t.Int64(); err == nil {
			return i, nil
		}
		if f, err := t.Float64(); err == nil {
			return f, nil
		}
		return nil, fmt.Errorf("object: number %q overflows every supported numeric type", string(t))
	default:
		return v, nil
	}
}

func jsonRootName(v any) string {
	switch v.(type) {
	case []any:
		return "array"
	case nil:
		return "null"
	default:
		return fmt.Sprintf("%T", v)
	}
}
