package object

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// ParseJSON decodes a JSON request body into an Object without losing
// integer precision: plain json.Unmarshal coerces every number to
// float64, so an int64 that doesn't fit the float53 mantissa (e.g.
// runAsUser: 9007199254740993) silently becomes its neighbor BEFORE the
// policy ever sees it — two adjacent UIDs validate identically. Numbers
// are decoded with json.Decoder.UseNumber and normalized to the value
// model the rest of KubeFence speaks (int64 when the literal is an
// exact integer, float64 otherwise), matching what the YAML decoder
// produces for manifests.
//
// A number that normalizes to neither (an exponent overflowing float64)
// is a decode error, exactly as it was for plain json.Unmarshal.
func ParseJSON(data []byte) (Object, error) {
	v, err := DecodeJSON(data)
	if err != nil {
		return nil, err
	}
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("object: request root is %s, want object", jsonRootName(v))
	}
	return Object(m), nil
}

// maxDecodeDepth bounds the nesting the token-stream decoder accepts,
// matching the limit encoding/json's own Decode enforces.
const maxDecodeDepth = 10000

// DecodeJSON decodes an arbitrary JSON document with the same
// precision-preserving number normalization as ParseJSON. Unlike
// json.Unmarshal it REJECTS duplicate object keys: last-writer-wins
// decoding would let an early occurrence of a key smuggle a sibling
// value past any validator that only sees the decoded map (and past
// upstream parsers that keep the first occurrence instead), so a
// duplicated key is a decode error — the same stance the YAML decoder
// takes. The streaming raw matcher relies on this: it falls back on
// duplicates, and the decode path it falls back TO must not quietly
// collapse them.
func DecodeJSON(data []byte) (any, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	v, err := decodeValue(dec, 0)
	if err != nil {
		return nil, err
	}
	// Mirror json.Unmarshal's strictness: trailing non-space content
	// after the document is an error, not silently ignored.
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("object: trailing data after JSON document")
	}
	return v, nil
}

// decodeValue consumes one value from the token stream, normalizing
// numbers as it goes and rejecting duplicate object keys.
func decodeValue(dec *json.Decoder, depth int) (any, error) {
	tok, err := dec.Token()
	if err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("object: unexpected end of JSON document")
		}
		return nil, err
	}
	return decodeFromToken(dec, tok, depth)
}

func decodeFromToken(dec *json.Decoder, tok json.Token, depth int) (any, error) {
	if depth > maxDecodeDepth {
		return nil, fmt.Errorf("object: JSON document exceeds max nesting depth %d", maxDecodeDepth)
	}
	switch t := tok.(type) {
	case json.Delim:
		switch t {
		case '{':
			m := map[string]any{}
			for dec.More() {
				keyTok, err := dec.Token()
				if err != nil {
					return nil, err
				}
				key, ok := keyTok.(string)
				if !ok {
					return nil, fmt.Errorf("object: non-string object key %v", keyTok)
				}
				if _, dup := m[key]; dup {
					return nil, fmt.Errorf("object: duplicate key %q in JSON object", key)
				}
				val, err := decodeValue(dec, depth+1)
				if err != nil {
					return nil, err
				}
				m[key] = val
			}
			if _, err := dec.Token(); err != nil { // closing '}'
				return nil, err
			}
			return m, nil
		case '[':
			a := []any{}
			for dec.More() {
				val, err := decodeValue(dec, depth+1)
				if err != nil {
					return nil, err
				}
				a = append(a, val)
			}
			if _, err := dec.Token(); err != nil { // closing ']'
				return nil, err
			}
			return a, nil
		}
		return nil, fmt.Errorf("object: unexpected delimiter %v", t)
	case json.Number:
		if i, err := t.Int64(); err == nil {
			return i, nil
		}
		if f, err := t.Float64(); err == nil {
			return f, nil
		}
		return nil, fmt.Errorf("object: number %q overflows every supported numeric type", string(t))
	default:
		return t, nil // string, bool, or nil
	}
}

func jsonRootName(v any) string {
	switch v.(type) {
	case []any:
		return "array"
	case nil:
		return "null"
	default:
		return fmt.Sprintf("%T", v)
	}
}
