package rbac

import (
	"testing"

	"repro/internal/object"
)

func devAuthorizer() *Authorizer {
	a := New()
	a.AddRole(&Role{
		Name:      "pod-manager",
		Namespace: "dev",
		Rules: []Rule{
			{APIGroups: []string{""}, Resources: []string{"pods"},
				Verbs: []string{"get", "list", "create", "delete"}},
		},
	})
	a.AddRoleBinding(&RoleBinding{
		Name:      "alice-pods",
		Namespace: "dev",
		Subjects:  []Subject{{Kind: UserKind, Name: "alice"}},
		RoleRef:   RoleRef{Kind: "Role", Name: "pod-manager"},
	})
	a.AddClusterRole(&ClusterRole{
		Name: "deployment-admin",
		Rules: []Rule{
			{APIGroups: []string{"apps"}, Resources: []string{"deployments"},
				Verbs: []string{"*"}},
		},
	})
	a.AddClusterRoleBinding(&ClusterRoleBinding{
		Name:     "ops-deployments",
		Subjects: []Subject{{Kind: GroupKind, Name: "ops"}},
		RoleRef:  RoleRef{Kind: "ClusterRole", Name: "deployment-admin"},
	})
	return a
}

func TestRoleBindingScope(t *testing.T) {
	a := devAuthorizer()
	tests := []struct {
		name string
		attr Attributes
		want bool
	}{
		{"allowed verb+resource+ns", Attributes{User: "alice", Verb: "create", Resource: "pods", Namespace: "dev"}, true},
		{"get allowed", Attributes{User: "alice", Verb: "get", Resource: "pods", Namespace: "dev", Name: "web"}, true},
		{"wrong namespace", Attributes{User: "alice", Verb: "create", Resource: "pods", Namespace: "prod"}, false},
		{"wrong verb", Attributes{User: "alice", Verb: "update", Resource: "pods", Namespace: "dev"}, false},
		{"wrong resource", Attributes{User: "alice", Verb: "create", Resource: "secrets", Namespace: "dev"}, false},
		{"wrong user", Attributes{User: "bob", Verb: "create", Resource: "pods", Namespace: "dev"}, false},
		{"wrong api group", Attributes{User: "alice", Verb: "create", APIGroup: "apps", Resource: "pods", Namespace: "dev"}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, _ := a.Authorize(tt.attr)
			if got != tt.want {
				t.Errorf("Authorize(%s) = %v, want %v", tt.attr, got, tt.want)
			}
		})
	}
}

func TestClusterRoleBindingGrantsEverywhere(t *testing.T) {
	a := devAuthorizer()
	for _, ns := range []string{"dev", "prod", "kube-system"} {
		ok, by := a.Authorize(Attributes{
			User: "carol", Groups: []string{"ops"},
			Verb: "delete", APIGroup: "apps", Resource: "deployments", Namespace: ns,
		})
		if !ok {
			t.Errorf("ops group should manage deployments in %s", ns)
		}
		if by != "ClusterRoleBinding/ops-deployments" {
			t.Errorf("granted by %q", by)
		}
	}
}

func TestWildcardVerb(t *testing.T) {
	a := devAuthorizer()
	for _, verb := range []string{"get", "create", "patch", "watch"} {
		if ok, _ := a.Authorize(Attributes{
			User: "x", Groups: []string{"ops"},
			Verb: verb, APIGroup: "apps", Resource: "deployments",
		}); !ok {
			t.Errorf("verb %s should match wildcard", verb)
		}
	}
}

func TestServiceAccountSubject(t *testing.T) {
	a := New()
	a.AddRole(&Role{Name: "reader", Namespace: "dev",
		Rules: []Rule{{APIGroups: []string{""}, Resources: []string{"endpoints"}, Verbs: []string{"get"}}}})
	a.AddRoleBinding(&RoleBinding{
		Name: "sa-reader", Namespace: "dev",
		Subjects: []Subject{{Kind: ServiceAccountKind, Name: "app", Namespace: "dev"}},
		RoleRef:  RoleRef{Kind: "Role", Name: "reader"},
	})
	if ok, _ := a.Authorize(Attributes{
		User: "system:serviceaccount:dev:app", Verb: "get", Resource: "endpoints", Namespace: "dev",
	}); !ok {
		t.Error("service account should be authorized")
	}
	if ok, _ := a.Authorize(Attributes{
		User: "system:serviceaccount:other:app", Verb: "get", Resource: "endpoints", Namespace: "dev",
	}); ok {
		t.Error("service account from other namespace should be denied")
	}
}

func TestRoleBindingToClusterRole(t *testing.T) {
	// A RoleBinding can grant a ClusterRole's rules within its namespace.
	a := New()
	a.AddClusterRole(&ClusterRole{Name: "secret-reader",
		Rules: []Rule{{APIGroups: []string{""}, Resources: []string{"secrets"}, Verbs: []string{"get"}}}})
	a.AddRoleBinding(&RoleBinding{
		Name: "b", Namespace: "dev",
		Subjects: []Subject{{Kind: UserKind, Name: "alice"}},
		RoleRef:  RoleRef{Kind: "ClusterRole", Name: "secret-reader"},
	})
	if ok, _ := a.Authorize(Attributes{User: "alice", Verb: "get", Resource: "secrets", Namespace: "dev"}); !ok {
		t.Error("should be allowed in binding namespace")
	}
	if ok, _ := a.Authorize(Attributes{User: "alice", Verb: "get", Resource: "secrets", Namespace: "prod"}); ok {
		t.Error("must not leak outside binding namespace")
	}
}

func TestResourceNames(t *testing.T) {
	a := New()
	a.AddRole(&Role{Name: "one-cm", Namespace: "dev",
		Rules: []Rule{{APIGroups: []string{""}, Resources: []string{"configmaps"},
			Verbs: []string{"get"}, ResourceNames: []string{"app-config"}}}})
	a.AddRoleBinding(&RoleBinding{Name: "b", Namespace: "dev",
		Subjects: []Subject{{Kind: UserKind, Name: "alice"}},
		RoleRef:  RoleRef{Kind: "Role", Name: "one-cm"}})
	if ok, _ := a.Authorize(Attributes{User: "alice", Verb: "get", Resource: "configmaps",
		Namespace: "dev", Name: "app-config"}); !ok {
		t.Error("named resource should be allowed")
	}
	if ok, _ := a.Authorize(Attributes{User: "alice", Verb: "get", Resource: "configmaps",
		Namespace: "dev", Name: "other"}); ok {
		t.Error("other names should be denied")
	}
}

func TestDanglingBinding(t *testing.T) {
	a := New()
	a.AddRoleBinding(&RoleBinding{Name: "dangling", Namespace: "dev",
		Subjects: []Subject{{Kind: UserKind, Name: "alice"}},
		RoleRef:  RoleRef{Kind: "Role", Name: "missing-role"}})
	if ok, _ := a.Authorize(Attributes{User: "alice", Verb: "get", Resource: "pods", Namespace: "dev"}); ok {
		t.Error("binding to missing role must deny")
	}
}

func TestZeroAuthorizerDeniesAll(t *testing.T) {
	a := New()
	if ok, _ := a.Authorize(Attributes{User: "root", Verb: "get", Resource: "pods"}); ok {
		t.Error("empty authorizer must deny")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	role := &Role{Name: "r", Namespace: "ns", Rules: []Rule{
		{APIGroups: []string{""}, Resources: []string{"pods", "configmaps"},
			Verbs: []string{"get", "list"}, ResourceNames: []string{"x"}},
	}}
	binding := &RoleBinding{Name: "b", Namespace: "ns",
		Subjects: []Subject{
			{Kind: UserKind, Name: "alice"},
			{Kind: ServiceAccountKind, Name: "app", Namespace: "ns"},
		},
		RoleRef: RoleRef{Kind: "Role", Name: "r"}}

	a := New()
	if err := a.LoadObject(role.ToObject()); err != nil {
		t.Fatal(err)
	}
	if err := a.LoadObject(binding.ToObject()); err != nil {
		t.Fatal(err)
	}
	if ok, _ := a.Authorize(Attributes{User: "alice", Verb: "list", Resource: "configmaps", Namespace: "ns"}); !ok {
		t.Error("round-tripped policy should authorize alice")
	}
	if ok, _ := a.Authorize(Attributes{
		User: "system:serviceaccount:ns:app", Verb: "get", Resource: "pods", Namespace: "ns", Name: "x",
	}); !ok {
		t.Error("round-tripped policy should authorize the service account")
	}
}

func TestLoadObjectRejectsNonRBAC(t *testing.T) {
	a := New()
	if err := a.LoadObject(object.Object{"kind": "Pod"}); err == nil {
		t.Error("non-RBAC kind should error")
	}
}

func TestLoadObjectsIgnoresNonRBAC(t *testing.T) {
	a := New()
	a.LoadObjects([]object.Object{
		{"kind": "Pod", "metadata": map[string]any{"name": "x"}},
		(&ClusterRole{Name: "cr", Rules: []Rule{{APIGroups: []string{"*"},
			Resources: []string{"*"}, Verbs: []string{"*"}}}}).ToObject(),
		(&ClusterRoleBinding{Name: "crb",
			Subjects: []Subject{{Kind: UserKind, Name: "admin"}},
			RoleRef:  RoleRef{Kind: "ClusterRole", Name: "cr"}}).ToObject(),
	})
	if ok, _ := a.Authorize(Attributes{User: "admin", Verb: "delete",
		APIGroup: "apps", Resource: "deployments", Namespace: "any"}); !ok {
		t.Error("cluster-admin style policy should authorize")
	}
}

func TestRBACCannotSeeSpecFields(t *testing.T) {
	// Meta-test documenting the paper's core claim: Attributes carry no
	// request body, so two requests differing only in spec content are
	// indistinguishable to RBAC.
	a := devAuthorizer()
	benign := Attributes{User: "alice", Verb: "create", Resource: "pods", Namespace: "dev"}
	// A "malicious" pod (hostNetwork, privileged, …) produces the exact
	// same attributes:
	malicious := benign
	okB, _ := a.Authorize(benign)
	okM, _ := a.Authorize(malicious)
	if okB != okM || !okB {
		t.Error("RBAC must (by design) treat both identically")
	}
}
