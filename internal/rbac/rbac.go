// Package rbac implements Kubernetes role-based access control — the
// baseline enforcement mechanism KubeFence is evaluated against. It
// provides the four RBAC object kinds (Role, ClusterRole, RoleBinding,
// ClusterRoleBinding), an authorizer evaluating (user, verb, group,
// resource, namespace) tuples, and conversion to and from unstructured
// manifests so policies can be stored in the API server like any other
// object.
//
// As in upstream Kubernetes, RBAC decides per resource and verb only — it
// never inspects request bodies. That granularity gap is exactly what the
// paper demonstrates (Table III: RBAC blocks 0 of 15 specification-level
// attacks).
package rbac

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/object"
)

// Rule grants verbs on resources within API groups.
type Rule struct {
	APIGroups     []string
	Resources     []string
	Verbs         []string
	ResourceNames []string
}

// Role is a namespaced bundle of rules.
type Role struct {
	Name      string
	Namespace string
	Rules     []Rule
}

// ClusterRole is a cluster-scoped bundle of rules.
type ClusterRole struct {
	Name  string
	Rules []Rule
}

// SubjectKind enumerates binding subject kinds.
type SubjectKind string

// Subject kinds.
const (
	UserKind           SubjectKind = "User"
	GroupKind          SubjectKind = "Group"
	ServiceAccountKind SubjectKind = "ServiceAccount"
)

// Subject identifies who a binding grants to.
type Subject struct {
	Kind      SubjectKind
	Name      string
	Namespace string // ServiceAccount subjects only
}

// RoleRef points a binding at a Role or ClusterRole.
type RoleRef struct {
	Kind string // "Role" or "ClusterRole"
	Name string
}

// RoleBinding grants a role's rules to subjects within one namespace.
type RoleBinding struct {
	Name      string
	Namespace string
	Subjects  []Subject
	RoleRef   RoleRef
}

// ClusterRoleBinding grants a cluster role's rules cluster-wide.
type ClusterRoleBinding struct {
	Name     string
	Subjects []Subject
	RoleRef  RoleRef
}

// Attributes describe one authorization question.
type Attributes struct {
	User      string
	Groups    []string
	Verb      string // get, list, watch, create, update, patch, delete
	APIGroup  string // "" for core
	Resource  string // plural, e.g. "deployments"
	Namespace string // "" for cluster-scoped requests
	Name      string // object name, may be empty for list/create
}

// Authorizer evaluates attributes against loaded RBAC objects. The zero
// value denies everything; use New and the Add methods.
type Authorizer struct {
	roles               map[string]*Role // ns/name
	clusterRoles        map[string]*ClusterRole
	roleBindings        []*RoleBinding
	clusterRoleBindings []*ClusterRoleBinding
}

// New returns an empty (deny-all) authorizer.
func New() *Authorizer {
	return &Authorizer{
		roles:        map[string]*Role{},
		clusterRoles: map[string]*ClusterRole{},
	}
}

// AddRole registers a Role.
func (a *Authorizer) AddRole(r *Role) { a.roles[r.Namespace+"/"+r.Name] = r }

// AddClusterRole registers a ClusterRole.
func (a *Authorizer) AddClusterRole(r *ClusterRole) { a.clusterRoles[r.Name] = r }

// AddRoleBinding registers a RoleBinding.
func (a *Authorizer) AddRoleBinding(b *RoleBinding) { a.roleBindings = append(a.roleBindings, b) }

// AddClusterRoleBinding registers a ClusterRoleBinding.
func (a *Authorizer) AddClusterRoleBinding(b *ClusterRoleBinding) {
	a.clusterRoleBindings = append(a.clusterRoleBindings, b)
}

// Authorize reports whether the attributes are allowed, and by which
// binding ("" when denied).
func (a *Authorizer) Authorize(attr Attributes) (bool, string) {
	for _, b := range a.clusterRoleBindings {
		if !subjectsMatch(b.Subjects, attr) {
			continue
		}
		cr, ok := a.clusterRoles[b.RoleRef.Name]
		if !ok || b.RoleRef.Kind != "ClusterRole" {
			continue
		}
		if rulesMatch(cr.Rules, attr) {
			return true, "ClusterRoleBinding/" + b.Name
		}
	}
	for _, b := range a.roleBindings {
		if b.Namespace != attr.Namespace {
			continue
		}
		if !subjectsMatch(b.Subjects, attr) {
			continue
		}
		var rules []Rule
		switch b.RoleRef.Kind {
		case "Role":
			r, ok := a.roles[b.Namespace+"/"+b.RoleRef.Name]
			if !ok {
				continue
			}
			rules = r.Rules
		case "ClusterRole":
			r, ok := a.clusterRoles[b.RoleRef.Name]
			if !ok {
				continue
			}
			rules = r.Rules
		default:
			continue
		}
		if rulesMatch(rules, attr) {
			return true, "RoleBinding/" + b.Namespace + "/" + b.Name
		}
	}
	return false, ""
}

func subjectsMatch(subjects []Subject, attr Attributes) bool {
	for _, s := range subjects {
		switch s.Kind {
		case UserKind:
			if s.Name == attr.User {
				return true
			}
		case GroupKind:
			for _, g := range attr.Groups {
				if s.Name == g {
					return true
				}
			}
		case ServiceAccountKind:
			if attr.User == "system:serviceaccount:"+s.Namespace+":"+s.Name {
				return true
			}
		}
	}
	return false
}

func rulesMatch(rules []Rule, attr Attributes) bool {
	for _, r := range rules {
		if !matchList(r.APIGroups, attr.APIGroup) {
			continue
		}
		if !matchList(r.Resources, attr.Resource) {
			continue
		}
		if !matchList(r.Verbs, attr.Verb) {
			continue
		}
		if len(r.ResourceNames) > 0 && attr.Name != "" && !matchList(r.ResourceNames, attr.Name) {
			continue
		}
		return true
	}
	return false
}

func matchList(allowed []string, v string) bool {
	for _, a := range allowed {
		if a == "*" || a == v {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Manifest conversion
// ---------------------------------------------------------------------

// LoadObject folds an unstructured RBAC manifest into the authorizer.
// Non-RBAC kinds return an error.
func (a *Authorizer) LoadObject(o object.Object) error {
	switch o.Kind() {
	case "Role":
		a.AddRole(&Role{Name: o.Name(), Namespace: o.Namespace(), Rules: parseRules(o)})
	case "ClusterRole":
		a.AddClusterRole(&ClusterRole{Name: o.Name(), Rules: parseRules(o)})
	case "RoleBinding":
		a.AddRoleBinding(&RoleBinding{
			Name:      o.Name(),
			Namespace: o.Namespace(),
			Subjects:  parseSubjects(o),
			RoleRef:   parseRoleRef(o),
		})
	case "ClusterRoleBinding":
		a.AddClusterRoleBinding(&ClusterRoleBinding{
			Name:     o.Name(),
			Subjects: parseSubjects(o),
			RoleRef:  parseRoleRef(o),
		})
	default:
		return fmt.Errorf("rbac: %s is not an RBAC kind", o.Kind())
	}
	return nil
}

// LoadObjects folds a set of manifests, ignoring non-RBAC kinds.
func (a *Authorizer) LoadObjects(objs []object.Object) {
	for _, o := range objs {
		switch o.Kind() {
		case "Role", "ClusterRole", "RoleBinding", "ClusterRoleBinding":
			_ = a.LoadObject(o)
		}
	}
}

func parseRules(o object.Object) []Rule {
	items, _ := object.GetSlice(o, "rules")
	out := make([]Rule, 0, len(items))
	for _, it := range items {
		m, ok := it.(map[string]any)
		if !ok {
			continue
		}
		out = append(out, Rule{
			APIGroups:     stringSlice(m["apiGroups"]),
			Resources:     stringSlice(m["resources"]),
			Verbs:         stringSlice(m["verbs"]),
			ResourceNames: stringSlice(m["resourceNames"]),
		})
	}
	return out
}

func parseSubjects(o object.Object) []Subject {
	items, _ := object.GetSlice(o, "subjects")
	out := make([]Subject, 0, len(items))
	for _, it := range items {
		m, ok := it.(map[string]any)
		if !ok {
			continue
		}
		kind, _ := m["kind"].(string)
		name, _ := m["name"].(string)
		ns, _ := m["namespace"].(string)
		out = append(out, Subject{Kind: SubjectKind(kind), Name: name, Namespace: ns})
	}
	return out
}

func parseRoleRef(o object.Object) RoleRef {
	m, _ := object.GetMap(o, "roleRef")
	kind, _ := m["kind"].(string)
	name, _ := m["name"].(string)
	return RoleRef{Kind: kind, Name: name}
}

func stringSlice(v any) []string {
	items, ok := v.([]any)
	if !ok {
		return nil
	}
	out := make([]string, 0, len(items))
	for _, it := range items {
		if s, ok := it.(string); ok {
			out = append(out, s)
		}
	}
	return out
}

// ToObject renders a Role as an unstructured manifest.
func (r *Role) ToObject() object.Object {
	return object.Object{
		"apiVersion": "rbac.authorization.k8s.io/v1",
		"kind":       "Role",
		"metadata":   map[string]any{"name": r.Name, "namespace": r.Namespace},
		"rules":      rulesToAny(r.Rules),
	}
}

// ToObject renders a ClusterRole as an unstructured manifest.
func (r *ClusterRole) ToObject() object.Object {
	return object.Object{
		"apiVersion": "rbac.authorization.k8s.io/v1",
		"kind":       "ClusterRole",
		"metadata":   map[string]any{"name": r.Name},
		"rules":      rulesToAny(r.Rules),
	}
}

// ToObject renders a RoleBinding as an unstructured manifest.
func (b *RoleBinding) ToObject() object.Object {
	return object.Object{
		"apiVersion": "rbac.authorization.k8s.io/v1",
		"kind":       "RoleBinding",
		"metadata":   map[string]any{"name": b.Name, "namespace": b.Namespace},
		"subjects":   subjectsToAny(b.Subjects),
		"roleRef": map[string]any{
			"apiGroup": "rbac.authorization.k8s.io",
			"kind":     b.RoleRef.Kind,
			"name":     b.RoleRef.Name,
		},
	}
}

// ToObject renders a ClusterRoleBinding as an unstructured manifest.
func (b *ClusterRoleBinding) ToObject() object.Object {
	return object.Object{
		"apiVersion": "rbac.authorization.k8s.io/v1",
		"kind":       "ClusterRoleBinding",
		"metadata":   map[string]any{"name": b.Name},
		"subjects":   subjectsToAny(b.Subjects),
		"roleRef": map[string]any{
			"apiGroup": "rbac.authorization.k8s.io",
			"kind":     b.RoleRef.Kind,
			"name":     b.RoleRef.Name,
		},
	}
}

func rulesToAny(rules []Rule) []any {
	out := make([]any, 0, len(rules))
	for _, r := range rules {
		m := map[string]any{
			"apiGroups": anySlice(r.APIGroups),
			"resources": anySlice(r.Resources),
			"verbs":     anySlice(r.Verbs),
		}
		if len(r.ResourceNames) > 0 {
			m["resourceNames"] = anySlice(r.ResourceNames)
		}
		out = append(out, m)
	}
	return out
}

func subjectsToAny(subjects []Subject) []any {
	out := make([]any, 0, len(subjects))
	for _, s := range subjects {
		m := map[string]any{"kind": string(s.Kind), "name": s.Name}
		if s.Kind == ServiceAccountKind {
			m["namespace"] = s.Namespace
		} else {
			m["apiGroup"] = "rbac.authorization.k8s.io"
		}
		out = append(out, m)
	}
	return out
}

func anySlice(ss []string) []any {
	out := make([]any, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}

// Normalize sorts rule members for deterministic serialization.
func (r *Rule) Normalize() {
	sort.Strings(r.APIGroups)
	sort.Strings(r.Resources)
	sort.Strings(r.Verbs)
	sort.Strings(r.ResourceNames)
}

// String renders attributes for logs.
func (attr Attributes) String() string {
	parts := []string{attr.Verb}
	if attr.APIGroup != "" {
		parts = append(parts, attr.APIGroup)
	}
	parts = append(parts, attr.Resource)
	if attr.Namespace != "" {
		parts = append(parts, "ns="+attr.Namespace)
	}
	if attr.Name != "" {
		parts = append(parts, attr.Name)
	}
	return attr.User + ": " + strings.Join(parts, " ")
}
