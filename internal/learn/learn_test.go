package learn

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/chart"
	"repro/internal/charts"
	"repro/internal/compile"
	"repro/internal/object"
	"repro/internal/schema"
	"repro/internal/validator"
)

func pod(fields map[string]any) object.Object {
	o := object.Object{
		"apiVersion": "v1",
		"kind":       "Pod",
		"metadata":   map[string]any{"name": "p", "namespace": "ns"},
		"spec":       map[string]any{},
	}
	spec := o["spec"].(map[string]any)
	for k, v := range fields {
		spec[k] = v
	}
	return o
}

func mustPolicy(t *testing.T, m *Miner) *validator.Validator {
	t.Helper()
	v, err := m.Policy()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestMinerEmptyErrors(t *testing.T) {
	m := New("w", Options{})
	if _, err := m.Policy(); err == nil {
		t.Fatal("Policy on an empty miner must error")
	}
	m.Observe(object.Object{"metadata": map[string]any{}}) // no kind
	if _, err := m.Policy(); err == nil {
		t.Fatal("kindless observations must not produce a policy")
	}
}

// noRequired disables required-field inference so domain tests can probe
// fields in isolation.
const noRequired = ^uint64(0)

func TestMinerExactEnumOverflow(t *testing.T) {
	m := New("w", Options{MaxValueSet: 3, MinRequiredObs: noRequired})
	for i := 0; i < 10; i++ {
		m.Observe(pod(map[string]any{
			"hostname": "fixed",
			"priority": float64(i % 2),        // enum of 2
			"nodeName": fmt.Sprintf("n%d", i), // overflows to type string ("n" prefix < MinPatternPrefix)
		}))
	}
	v := mustPolicy(t, m)

	check := func(o object.Object, wantViolations bool, label string) {
		t.Helper()
		vs := v.Validate(o)
		if (len(vs) > 0) != wantViolations {
			t.Errorf("%s: violations = %v", label, vs)
		}
	}
	check(pod(map[string]any{"hostname": "fixed"}), false, "exact value allowed")
	check(pod(map[string]any{"hostname": "evil"}), true, "off-domain value denied")
	check(pod(map[string]any{"priority": float64(1)}), false, "enum member allowed")
	check(pod(map[string]any{"priority": float64(9)}), true, "outside enum denied")
	check(pod(map[string]any{"nodeName": "anything-goes"}), false, "overflowed string generalizes to type")
	check(pod(map[string]any{"nodeName": float64(3)}), true, "type string rejects numbers")
	check(pod(map[string]any{"smuggled": "x"}), true, "unobserved field denied")
}

func TestMinerPatternAndIPAndRange(t *testing.T) {
	m := New("w", Options{MaxValueSet: 2, MinRequiredObs: noRequired})
	for i := 0; i < 6; i++ {
		m.Observe(pod(map[string]any{
			"image": fmt.Sprintf("docker.io/bitnami/app:v%d", i),
			"podIP": fmt.Sprintf("10.0.0.%d", i),
			"port":  float64(8000 + i),
		}))
	}
	v := mustPolicy(t, m)

	if vs := v.Validate(pod(map[string]any{"image": "docker.io/bitnami/app:v99"})); len(vs) != 0 {
		t.Errorf("prefix-conforming image denied: %v", vs)
	}
	if vs := v.Validate(pod(map[string]any{"image": "evil.io/bitnami/app:v1"})); len(vs) == 0 {
		t.Error("image outside the mined prefix must be denied")
	}
	if vs := v.Validate(pod(map[string]any{"podIP": "192.168.1.1"})); len(vs) != 0 {
		t.Errorf("IP literal denied after IP generalization: %v", vs)
	}
	if vs := v.Validate(pod(map[string]any{"podIP": "not-an-ip"})); len(vs) == 0 {
		t.Error("non-IP must be denied after IP generalization")
	}
	if vs := v.Validate(pod(map[string]any{"port": float64(12)})); len(vs) != 0 {
		t.Errorf("int denied after numeric generalization: %v", vs)
	}
	if vs := v.Validate(pod(map[string]any{"port": "8080; rm -rf /"})); len(vs) == 0 {
		t.Error("non-numeric string must be denied for an int domain")
	}

	// The range survives into the summaries even though the validator
	// node only carries the type.
	var found bool
	for _, s := range m.Summaries() {
		if s.Path == "spec.port" {
			found = true
			if !strings.Contains(s.Domain, "range[8000,8005]") {
				t.Errorf("port summary lost its range: %q", s.Domain)
			}
		}
	}
	if !found {
		t.Error("no summary for spec.port")
	}
}

func TestRequiredInference(t *testing.T) {
	m := New("w", Options{})
	for i := 0; i < 4; i++ {
		fields := map[string]any{"serviceAccountName": "sa"}
		if i%2 == 0 {
			fields["hostname"] = "h" // present half the time: optional
		}
		m.Observe(pod(fields))
	}
	v := mustPolicy(t, m)

	// Omitting the always-present field is a violation...
	o := pod(nil)
	vs := v.Validate(o)
	if len(vs) == 0 {
		t.Fatal("omitting an always-present field must be denied")
	}
	// ...and so is gutting it with an empty stand-in at the parent level.
	noSpec := pod(nil)
	delete(noSpec, "spec")
	if vs := v.Validate(noSpec); len(vs) == 0 {
		t.Error("deleting the parent of a required field must be denied")
	}
	// The optional field may be omitted.
	ok := pod(map[string]any{"serviceAccountName": "sa"})
	if vs := v.Validate(ok); len(vs) != 0 {
		t.Errorf("optional-field omission wrongly denied: %v", vs)
	}
}

func TestRequiredNeedsEvidence(t *testing.T) {
	m := New("w", Options{})
	m.Observe(pod(map[string]any{"hostname": "h"}))
	v := mustPolicy(t, m)
	// A single observation is not evidence: nothing is required yet.
	if vs := v.Validate(pod(nil)); len(vs) != 0 {
		t.Errorf("required inferred from one observation: %v", vs)
	}
}

func TestGeneralizeAnyDefaults(t *testing.T) {
	m := New("w", Options{})
	o := pod(nil)
	o["metadata"].(map[string]any)["labels"] = map[string]any{"app": "x"}
	m.Observe(o)
	m.Observe(o)
	v := mustPolicy(t, m)
	probe := pod(nil)
	probe["metadata"].(map[string]any)["labels"] = map[string]any{"totally": "new", "keys": "ok"}
	if vs := v.Validate(probe); len(vs) != 0 {
		t.Errorf("labels must mine as free-form: %v", vs)
	}
}

func TestMinerScrubsServerFields(t *testing.T) {
	m := New("w", Options{})
	o := pod(nil)
	o["status"] = map[string]any{"phase": "Running"}
	o["metadata"].(map[string]any)["resourceVersion"] = "123"
	m.Observe(o)
	m.Observe(o)
	v := mustPolicy(t, m)
	for _, p := range v.AllowedPaths("Pod") {
		if strings.HasPrefix(p, "status") || strings.Contains(p, "resourceVersion") {
			t.Errorf("server-owned path mined into policy: %s", p)
		}
	}
}

func TestVersionTracksGrowth(t *testing.T) {
	m := New("w", Options{})
	o := pod(map[string]any{"hostname": "h"})
	m.Observe(o)
	v1 := m.Version()
	m.Observe(o) // identical: nothing grew
	if m.Version() != v1 {
		t.Error("version changed without domain growth")
	}
	m.Observe(pod(map[string]any{"hostname": "other"}))
	if m.Version() == v1 {
		t.Error("new value did not grow the version")
	}
}

func TestMixedStructureGeneralizes(t *testing.T) {
	m := New("w", Options{})
	m.Observe(pod(map[string]any{"overcommit": "x"}))
	m.Observe(pod(map[string]any{"overcommit": map[string]any{"a": "b"}}))
	v := mustPolicy(t, m)
	if vs := v.Validate(pod(map[string]any{"overcommit": []any{"anything"}})); len(vs) != 0 {
		t.Errorf("structurally conflicting field must generalize to any: %v", vs)
	}
}

// TestMinedChartPoliciesSelfConsistent is the anchor property: mining a
// chart's own rendered objects yields a policy that (a) compiles into
// the rule program, (b) allows every object it was mined from in both
// engines, and (c) denies an object of a never-observed kind.
func TestMinedChartPoliciesSelfConsistent(t *testing.T) {
	for _, name := range charts.Names() {
		t.Run(name, func(t *testing.T) {
			c := charts.MustLoad(name)
			files, err := c.Render(nil, chart.ReleaseOptions{Name: "rel", Namespace: name})
			if err != nil {
				t.Fatal(err)
			}
			objs := chart.Objects(files)
			if len(objs) == 0 {
				t.Fatal("no rendered objects")
			}
			m := New(name, Options{})
			for _, o := range objs {
				m.Observe(o)
				m.Observe(o) // the reconcile re-apply
			}
			v := mustPolicy(t, m)
			prog, err := compile.Compile(v)
			if err != nil {
				t.Fatalf("mined policy does not compile: %v", err)
			}
			for _, o := range objs {
				if vs := v.Validate(o); len(vs) != 0 {
					t.Fatalf("interpreted: mined policy denies its own trace %s/%s: %v",
						o.Kind(), o.Name(), vs)
				}
				if vs := prog.Validate(o); len(vs) != 0 {
					t.Fatalf("compiled: mined policy denies its own trace %s/%s: %v",
						o.Kind(), o.Name(), vs)
				}
			}
			alien := object.Object{
				"apiVersion": "v1", "kind": "NeverObservedKind",
				"metadata": map[string]any{"name": "x"},
			}
			if vs := v.Validate(alien); len(vs) == 0 {
				t.Error("unobserved kind must be denied")
			}
		})
	}
}

func TestDiffReportsAsymmetry(t *testing.T) {
	mined := New("w", Options{})
	base := New("w", Options{})
	mined.Observe(pod(map[string]any{"hostname": "h"}))
	base.Observe(pod(map[string]any{"nodeName": "n"}))
	mv := mustPolicy(t, mined)
	bv := mustPolicy(t, base)
	d := Diff(mv, bv)
	if !contains(d.MinedOnly, "Pod:spec.hostname") {
		t.Errorf("MinedOnly = %v", d.MinedOnly)
	}
	if !contains(d.BaseOnly, "Pod:spec.nodeName") {
		t.Errorf("BaseOnly = %v", d.BaseOnly)
	}
	if !strings.Contains(d.Render(), "mined-only") {
		t.Error("Render lost the asymmetry")
	}
	same := Diff(mv, mv)
	if len(same.MinedOnly) != 0 || len(same.BaseOnly) != 0 {
		t.Errorf("self-diff not empty: %+v", same)
	}
}

func TestSummariesCoverDomains(t *testing.T) {
	m := New("w", Options{MaxValueSet: 2})
	for i := 0; i < 5; i++ {
		m.Observe(pod(map[string]any{
			"hostname": "fixed",
			"nodeName": fmt.Sprintf("node-%d", i),
		}))
	}
	byPath := map[string]PathSummary{}
	for _, s := range m.Summaries() {
		byPath[s.Path] = s
	}
	if s := byPath["spec.hostname"]; s.Domain != "exact" || !s.Required {
		t.Errorf("hostname summary = %+v", s)
	}
	if s := byPath["spec.nodeName"]; !strings.HasPrefix(s.Domain, "pattern:^node-") {
		t.Errorf("nodeName summary = %+v", s)
	}
	if s := byPath["metadata.namespace"]; s.Observations != 5 {
		t.Errorf("namespace summary = %+v", s)
	}
}

func TestScalarTokenClassification(t *testing.T) {
	cases := map[string]any{
		schema.TokBool:   true,
		schema.TokInt:    int64(3),
		schema.TokFloat:  3.5,
		schema.TokString: "s",
		"null":           nil,
	}
	for want, v := range cases {
		if got := scalarToken(v); got != want {
			t.Errorf("scalarToken(%v) = %q, want %q", v, got, want)
		}
	}
	if got := scalarToken(float64(4)); got != schema.TokInt {
		t.Errorf("integral float classified as %q", got)
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

// TestPostOverflowLiveness pins the rollout liveness invariant: every
// observed value is allowed by the NEXT emitted candidate, even when
// the generalization cannot absorb it — otherwise a shadow false
// positive whose body grows nothing would strand the workload in
// shadow forever.
func TestPostOverflowLiveness(t *testing.T) {
	cases := []struct {
		name   string
		seed   func(i int) any // drives the domain into overflow
		tricky any             // a value the generalization cannot absorb
	}{
		{"pattern-vs-whitespace", func(i int) any { return fmt.Sprintf("registry.local/app:v%d", i) },
			"registry.local/app:v1 v2"},
		{"ip-vs-hostname", func(i int) any { return fmt.Sprintf("10.0.0.%d", i) }, "db.internal"},
		{"int-vs-label", func(i int) any { return float64(i) }, "n/a"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := New("w", Options{MaxValueSet: 3, MinRequiredObs: noRequired})
			for i := 0; i < 8; i++ {
				m.Observe(pod(map[string]any{"field": tc.seed(i)}))
			}
			v := mustPolicy(t, m)
			probe := pod(map[string]any{"field": tc.tricky})
			if vs := v.Validate(probe); len(vs) == 0 {
				t.Skip("generalization already absorbs the tricky value")
			}
			// The shadow feedback loop: the denied body is observed, and
			// the miner MUST both grow (so the controller republishes)
			// and allow the value next time.
			v0 := m.Version()
			m.Observe(probe)
			if m.Version() == v0 {
				t.Fatal("uncovered observation did not grow the miner (stuck-in-shadow)")
			}
			v = mustPolicy(t, m)
			if vs := v.Validate(probe); len(vs) != 0 {
				t.Fatalf("next candidate still denies the observed value: %v", vs)
			}
			// And it stays deduplicated: re-observing changes nothing.
			v1 := m.Version()
			m.Observe(probe)
			if m.Version() != v1 {
				t.Fatal("re-observing a covered value grew the miner again")
			}
		})
	}
}
