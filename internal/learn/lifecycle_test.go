package learn

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/object"
	"repro/internal/registry"
)

func benignObj(i int) object.Object {
	return object.Object{
		"apiVersion": "v1",
		"kind":       "Pod",
		"metadata":   map[string]any{"name": fmt.Sprintf("p%d", i%3), "namespace": "ns"},
		"spec": map[string]any{
			"hostname": "fixed",
			"nodeName": fmt.Sprintf("n%d", i%2),
		},
	}
}

func attackObj() object.Object {
	return object.Object{
		"apiVersion": "v1",
		"kind":       "Pod",
		"metadata":   map[string]any{"name": "evil", "namespace": "ns"},
		"spec": map[string]any{
			"hostname":    "fixed",
			"nodeName":    "n0",
			"hostNetwork": true,
		},
	}
}

func TestLifecycleLearnShadowEnforce(t *testing.T) {
	reg := registry.New(registry.Config{ShadowWindow: 64})
	ctl := NewController(reg, GateConfig{
		MinLearnRequests:  10,
		MinShadowRequests: 10,
	})
	miner, err := ctl.AddWorkload("w", registry.Selector{Namespace: "ns"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, ok := reg.Entry("w")
	if !ok || e.Mode() != registry.ModeLearn {
		t.Fatalf("workload not registered in learn mode (mode %v)", e.Mode())
	}

	// Not enough traffic: no transition.
	if trs := ctl.Tick(); len(trs) != 0 {
		t.Fatalf("premature transition: %+v", trs)
	}

	// Learn phase: feed the observer the way the proxy would.
	for i := 0; i < 12; i++ {
		e.ObserveLearn(benignObj(i))
	}
	if miner.Requests() != 12 {
		t.Fatalf("miner observed %d", miner.Requests())
	}
	trs := ctl.Tick()
	if len(trs) != 1 || trs[0].To != registry.ModeShadow {
		t.Fatalf("expected learn→shadow, got %+v", trs)
	}
	if e.Mode() != registry.ModeShadow {
		t.Fatal("mode not shadow after transition")
	}

	// Shadow phase: benign traffic validates clean against the candidate.
	for i := 0; i < 12; i++ {
		if vs, _ := reg.ShadowValidate(e, nil, benignObj(i)); len(vs) != 0 {
			t.Fatalf("candidate denies its own trace: %v", vs)
		}
	}
	trs = ctl.Tick()
	if len(trs) != 1 || trs[0].To != registry.ModeEnforce {
		t.Fatalf("expected shadow→enforce, got %+v (shadow %+v)", trs, e.ShadowStats())
	}

	// Enforced: the mined policy blocks what it never saw.
	if vs := reg.Validate(e, nil, attackObj()); len(vs) == 0 {
		t.Fatal("hostNetwork attack not denied by the promoted policy")
	}
	if vs := reg.Validate(e, nil, benignObj(1)); len(vs) != 0 {
		t.Fatalf("benign denied after promotion: %v", vs)
	}

	states := ctl.States()
	if len(states) != 1 || states[0].Mode != "enforce" || states[0].Promotions != 1 {
		t.Fatalf("states = %+v", states)
	}
}

func TestShadowFPFeedbackGrowsCandidate(t *testing.T) {
	reg := registry.New(registry.Config{})
	ctl := NewController(reg, GateConfig{MinLearnRequests: 4, MinShadowRequests: 8})
	miner, err := ctl.AddWorkload("w", registry.Selector{Namespace: "ns"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := reg.Entry("w")
	for i := 0; i < 4; i++ {
		e.ObserveLearn(benignObj(0))
	}
	ctl.Tick() // → shadow
	gen1 := e.Generation()

	// A benign object the candidate has never seen: shadow would-deny.
	novel := benignObj(0)
	novel["spec"].(map[string]any)["subdomain"] = "svc"
	vs, _ := reg.ShadowValidate(e, nil, novel)
	if len(vs) == 0 {
		t.Fatal("novel field should shadow-deny before feedback")
	}
	// The proxy feeds would-denied shadow traffic back to the observer.
	v0 := miner.Version()
	miner.Observe(novel)
	if miner.Version() == v0 {
		t.Fatal("feedback did not grow the miner")
	}
	// Next tick publishes the grown candidate (no promotion yet).
	if trs := ctl.Tick(); len(trs) != 0 {
		t.Fatalf("unexpected transition: %+v", trs)
	}
	if e.Generation() == gen1 {
		t.Fatal("candidate not re-published after growth")
	}
	if vs, _ := reg.ShadowValidate(e, nil, novel); len(vs) != 0 {
		t.Fatalf("grown candidate still denies the fed-back object: %v", vs)
	}
}

func TestDemotionOnDenialSpike(t *testing.T) {
	reg := registry.New(registry.Config{})
	ctl := NewController(reg, GateConfig{
		MinLearnRequests:  2,
		MinShadowRequests: 2,
		DemoteDenyRate:    0.5,
		DemoteMinRequests: 4,
	})
	if _, err := ctl.AddWorkload("w", registry.Selector{Namespace: "ns"}, Options{}); err != nil {
		t.Fatal(err)
	}
	e, _ := reg.Entry("w")
	for i := 0; i < 3; i++ {
		e.ObserveLearn(benignObj(i))
	}
	ctl.Tick() // → shadow
	for i := 0; i < 3; i++ {
		reg.ShadowValidate(e, nil, benignObj(i))
	}
	ctl.Tick() // → enforce
	if e.Mode() != registry.ModeEnforce {
		t.Fatalf("not enforcing: %v", e.Mode())
	}
	ctl.Tick() // establishes the enforce-mode rate basis

	// A burst of denials (e.g. a chart upgrade changed the workload's
	// manifests): every request denied.
	for i := 0; i < 6; i++ {
		if vs := reg.Validate(e, nil, attackObj()); len(vs) > 0 {
			e.RecordViolation(registry.Record{})
		}
	}
	trs := ctl.Tick()
	if len(trs) != 1 || trs[0].To != registry.ModeShadow {
		t.Fatalf("expected enforce→shadow demotion, got %+v", trs)
	}
	if e.Mode() != registry.ModeShadow {
		t.Fatal("not demoted")
	}
	if ctl.States()[0].Demotions != 1 {
		t.Fatalf("states = %+v", ctl.States())
	}
}

func TestPromoteRefusesStaleGeneration(t *testing.T) {
	reg := registry.New(registry.Config{})
	ctl := NewController(reg, GateConfig{MinLearnRequests: 1, MinShadowRequests: 1})
	miner, err := ctl.AddWorkload("w", registry.Selector{Namespace: "ns"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := reg.Entry("w")
	e.ObserveLearn(benignObj(0))
	ctl.Tick() // → shadow
	gen := e.Generation()
	reg.ShadowValidate(e, nil, benignObj(0))

	// A swap lands after the gate evaluation: promotion must refuse.
	pol, err := miner.Policy()
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Swap("w", pol); err != nil {
		t.Fatal(err)
	}
	if err := reg.Promote("w", gen); err == nil {
		t.Fatal("Promote accepted a stale generation")
	}
	if e.Mode() != registry.ModeShadow {
		t.Fatal("mode changed despite refused promotion")
	}
}

func TestTraceRoundTripAndSkipAccounting(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	for i := 0; i < 3; i++ {
		if err := tw.Record(TraceEntry{
			Workload: "w", Method: "POST", Path: "/api/v1/namespaces/ns/pods",
			Object: map[string]any(benignObj(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt the stream the way a crashed tap would: a truncated line
	// and a line with no object.
	buf.WriteString("{\"workload\":\"w\",\"object\":{\"kind\":")
	buf.WriteString("\n{\"workload\":\"w\"}\n\n")

	entries, skipped, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %d", len(entries))
	}
	if len(skipped) != 2 {
		t.Fatalf("skipped = %+v", skipped)
	}
	if skipped[0].Line != 4 || !strings.Contains(skipped[0].Error(), "line 4") {
		t.Errorf("skipped[0] = %+v", skipped[0])
	}

	m := New("w", Options{})
	if n := m.ObserveTrace(entries); n != 3 {
		t.Fatalf("observed %d", n)
	}
	if _, err := m.Policy(); err != nil {
		t.Fatal(err)
	}
	// Foreign-workload entries are skipped.
	other := New("other", Options{})
	if n := other.ObserveTrace(entries); n != 0 {
		t.Fatalf("foreign observations = %d", n)
	}
}

func TestAdoptShadowsExistingPolicy(t *testing.T) {
	reg := registry.New(registry.Config{})
	ctl := NewController(reg, GateConfig{MinLearnRequests: 1, MinShadowRequests: 3})

	// A chart-derived policy registered the classic way: enforce mode.
	base := New("w", Options{})
	for i := 0; i < 3; i++ {
		base.Observe(benignObj(i))
	}
	basePol, err := base.Policy()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("w", registry.Selector{Namespace: "ns"}, basePol); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Adopt("w", Options{}); err != nil {
		t.Fatal(err)
	}
	e, _ := reg.Entry("w")
	if e.Mode() != registry.ModeShadow {
		t.Fatalf("adopted workload not shadowing: %v", e.Mode())
	}

	// Shadow FP feedback: a benign object outside the base policy.
	novel := benignObj(0)
	novel["spec"].(map[string]any)["subdomain"] = "svc"
	vs, _ := reg.ShadowValidate(e, nil, novel)
	if len(vs) == 0 {
		t.Fatal("novel object should shadow-deny against the base policy")
	}
	if obs := e.Observer(); obs == nil {
		t.Fatal("no observer attached by Adopt")
	} else {
		obs.Observe(novel)
	}
	ctl.Tick() // publishes base ∪ mined

	// The union must keep the base surface AND admit the fed-back shape.
	if vs, _ := reg.ShadowValidate(e, nil, novel); len(vs) != 0 {
		t.Fatalf("union candidate still denies the fed-back object: %v", vs)
	}
	for i := 0; i < 3; i++ {
		if vs, _ := reg.ShadowValidate(e, nil, benignObj(i)); len(vs) != 0 {
			t.Fatalf("union candidate dropped base surface: %v", vs)
		}
	}
	if trs := ctl.Tick(); len(trs) != 1 || trs[0].To != registry.ModeEnforce {
		t.Fatalf("expected promotion, got %+v", trs)
	}
	if vs := reg.Validate(e, nil, attackObj()); len(vs) == 0 {
		t.Fatal("attack allowed after adopted promotion")
	}
}

func TestAdoptRequiresExistingPolicy(t *testing.T) {
	reg := registry.New(registry.Config{})
	ctl := NewController(reg, GateConfig{})
	if _, err := ctl.Adopt("missing", Options{}); err == nil {
		t.Error("adopting an unregistered workload must error")
	}
	if _, err := reg.RegisterLearning("bare", registry.Selector{}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Adopt("bare", Options{}); err == nil {
		t.Error("adopting a policy-less workload must error")
	}
}
