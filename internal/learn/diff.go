// Candidate diffing: a mined policy is most trustworthy when it can be
// compared against an independently derived one. For workloads that DO
// have a chart, diffing the traffic-mined candidate against the
// chart-derived policy is the reviewer's tool: paths only traffic
// produced reveal undocumented behavior (or an attacker already inside
// the learning window); paths only the chart produced reveal surface the
// workload never exercised and could lose.
package learn

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/validator"
)

// DiffReport compares a mined candidate against a base policy.
type DiffReport struct {
	Workload string `json:"workload"`
	// MinedKinds / BaseKinds count the kinds each side allows.
	MinedKinds int `json:"mined_kinds"`
	BaseKinds  int `json:"base_kinds"`
	// MinedPaths / BasePaths count allowed field paths across kinds.
	MinedPaths int `json:"mined_paths"`
	BasePaths  int `json:"base_paths"`
	// MinedOnly lists "Kind:path" entries the candidate allows and the
	// base policy does not; BaseOnly the reverse. Kinds absent from one
	// side entirely contribute a single "Kind" entry.
	MinedOnly []string `json:"mined_only,omitempty"`
	BaseOnly  []string `json:"base_only,omitempty"`
}

// Diff compares a mined candidate against a base (typically
// chart-derived) policy for the same workload.
func Diff(mined, base *validator.Validator) *DiffReport {
	rep := &DiffReport{Workload: mined.Workload}
	minedPaths := pathSet(mined)
	basePaths := pathSet(base)
	rep.MinedKinds = len(mined.Kinds)
	rep.BaseKinds = len(base.Kinds)
	rep.MinedPaths = len(minedPaths)
	rep.BasePaths = len(basePaths)
	for p := range minedPaths {
		if !basePaths[p] {
			rep.MinedOnly = append(rep.MinedOnly, p)
		}
	}
	for p := range basePaths {
		if !minedPaths[p] {
			rep.BaseOnly = append(rep.BaseOnly, p)
		}
	}
	sort.Strings(rep.MinedOnly)
	sort.Strings(rep.BaseOnly)
	return rep
}

func pathSet(v *validator.Validator) map[string]bool {
	set := map[string]bool{}
	for _, kind := range v.AllowedKinds() {
		set[kind] = true
		for _, p := range v.AllowedPaths(kind) {
			set[kind+":"+p] = true
		}
	}
	return set
}

// Render formats the report for humans.
func (d *DiffReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy diff for workload %s: mined %d kinds / %d paths, base %d kinds / %d paths\n",
		d.Workload, d.MinedKinds, d.MinedPaths, d.BaseKinds, d.BasePaths)
	if len(d.MinedOnly) == 0 && len(d.BaseOnly) == 0 {
		b.WriteString("  surfaces identical\n")
		return b.String()
	}
	for _, p := range d.MinedOnly {
		fmt.Fprintf(&b, "  +mined-only %s\n", p)
	}
	for _, p := range d.BaseOnly {
		fmt.Fprintf(&b, "  -base-only  %s\n", p)
	}
	return b.String()
}
