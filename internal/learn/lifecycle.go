// Rollout lifecycle controller: drives workloads along
// learn → shadow → enforce with explicit, auditable gates.
//
// The XI-commandments SoK's practical objection to default-deny is the
// rollout path: a policy that was never rehearsed against live traffic
// will deny something legitimate the moment it is enforced. The
// controller closes that gap:
//
//	learn    enough traffic observed  →  emit candidate, shadow it
//	shadow   candidate's would-deny rate holds the gate over a full
//	         window of its OWN generation  →  promote (generation-pinned)
//	enforce  live denial rate spikes  →  demote back to shadow
//
// While a workload shadows, requests its candidate would have denied are
// fed back into the miner: pre-enforcement traffic is trusted by
// definition of the rollout, so every shadow false positive is a
// learning opportunity, and the controller swaps the grown candidate in
// on its next tick. The swapped candidate starts a fresh shadow window —
// promotion can never ride on verdicts an older generation earned.
package learn

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/registry"
	"repro/internal/validator"
)

// GateConfig parameterizes the promotion and demotion gates.
type GateConfig struct {
	// MinLearnRequests is the number of observed requests before the
	// first candidate is emitted and shadowed (default 50).
	MinLearnRequests uint64
	// MinShadowRequests is the number of shadow verdicts the CURRENT
	// policy generation must accumulate before promotion is considered
	// (default 200).
	MinShadowRequests uint64
	// MaxShadowDenyRate is the highest would-deny rate over the sliding
	// window that still promotes (default 0 — a candidate must shadow
	// clean).
	MaxShadowDenyRate float64
	// DemoteDenyRate is the live denial rate (denials/requests between
	// two ticks) above which an enforcing workload demotes back to
	// shadow (default 0.25).
	DemoteDenyRate float64
	// DemoteMinRequests is the minimum number of requests between two
	// ticks before the demotion rate is judged at all (default 20).
	DemoteMinRequests uint64
}

func (g GateConfig) withDefaults() GateConfig {
	if g.MinLearnRequests == 0 {
		g.MinLearnRequests = 50
	}
	if g.MinShadowRequests == 0 {
		g.MinShadowRequests = 200
	}
	if g.DemoteDenyRate == 0 {
		g.DemoteDenyRate = 0.25
	}
	if g.DemoteMinRequests == 0 {
		g.DemoteMinRequests = 20
	}
	return g
}

// Transition records one lifecycle move a Tick performed.
type Transition struct {
	Workload   string        `json:"workload"`
	From, To   registry.Mode `json:"-"`
	FromName   string        `json:"from"`
	ToName     string        `json:"to"`
	Generation uint64        `json:"generation"`
	Reason     string        `json:"reason"`
}

// WorkloadState snapshots one managed workload for reporting.
type WorkloadState struct {
	Workload   string               `json:"workload"`
	Mode       string               `json:"mode"`
	Generation uint64               `json:"generation"`
	Observed   uint64               `json:"observed"`
	Candidates int                  `json:"candidates"`
	Promotions int                  `json:"promotions"`
	Demotions  int                  `json:"demotions"`
	Shadow     registry.ShadowStats `json:"shadow"`
}

// managed is the controller's per-workload bookkeeping.
type managed struct {
	miner        *Miner
	minerVersion uint64 // miner version the current candidate reflects
	// base is the pre-existing policy of an Adopted workload (nil for
	// learned-from-scratch ones); candidates are unioned onto it so
	// shadow feedback can only widen, never replace, the base.
	base          *validator.Validator
	candidates    int
	promotions    int
	demotions     int
	lastRequests  uint64 // enforce-mode rate tracking between ticks
	lastDenied    uint64
	haveRateBasis bool
}

// Controller advances managed workloads along the rollout lifecycle.
// Tick is safe to call from a timer goroutine while the enforcement
// point serves traffic.
type Controller struct {
	reg   *registry.Registry
	gates GateConfig

	// mu guards the workload map; tickMu serializes Tick (and States'
	// reads of per-workload bookkeeping) so two timers can never
	// interleave gate evaluations for the same workload.
	mu        sync.Mutex
	tickMu    sync.Mutex
	workloads map[string]*managed
}

// NewController builds a controller over a registry.
func NewController(reg *registry.Registry, gates GateConfig) *Controller {
	return &Controller{
		reg:       reg,
		gates:     gates.withDefaults(),
		workloads: map[string]*managed{},
	}
}

// AddWorkload registers a workload in learn mode with a fresh miner
// attached as its observer, and places it under lifecycle management.
func (c *Controller) AddWorkload(workload string, sel registry.Selector, opts Options) (*Miner, error) {
	m := New(workload, opts)
	if _, err := c.reg.RegisterLearning(workload, sel, m); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workloads[workload] = &managed{miner: m}
	return m, nil
}

// Adopt places an ALREADY-REGISTERED workload (typically carrying a
// chart-derived policy) under lifecycle management: a fresh miner is
// attached as its observer, and the workload is moved to shadow mode so
// the existing policy can rehearse against live traffic before it
// enforces. Candidates emitted from shadow feedback are unioned onto
// the original policy — traffic can widen a chart policy's domains, but
// never drop the chart's surface.
func (c *Controller) Adopt(workload string, opts Options) (*Miner, error) {
	e, ok := c.reg.Entry(workload)
	if !ok {
		return nil, fmt.Errorf("learn: workload %s is not registered", workload)
	}
	base := e.Policy()
	if base == nil {
		return nil, fmt.Errorf("learn: workload %s has no policy to adopt (use AddWorkload)", workload)
	}
	m := New(workload, opts)
	if err := c.reg.SetObserver(workload, m); err != nil {
		return nil, err
	}
	if err := c.reg.SetMode(workload, registry.ModeShadow); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workloads[workload] = &managed{miner: m, base: base}
	return m, nil
}

// Miner returns the miner managing a workload.
func (c *Controller) Miner(workload string) (*Miner, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	mg, ok := c.workloads[workload]
	if !ok {
		return nil, false
	}
	return mg.miner, true
}

// Workloads lists the managed workload names, sorted.
func (c *Controller) Workloads() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.workloads))
	for w := range c.workloads {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// Tick evaluates every managed workload's gates once and performs any
// due transitions, returning them for logging.
func (c *Controller) Tick() []Transition {
	c.tickMu.Lock()
	defer c.tickMu.Unlock()
	c.mu.Lock()
	names := make([]string, 0, len(c.workloads))
	for w := range c.workloads {
		names = append(names, w)
	}
	c.mu.Unlock()
	sort.Strings(names)

	var out []Transition
	for _, w := range names {
		if tr, ok := c.tickWorkload(w); ok {
			out = append(out, tr)
		}
	}
	return out
}

func (c *Controller) tickWorkload(workload string) (Transition, bool) {
	c.mu.Lock()
	mg, ok := c.workloads[workload]
	c.mu.Unlock()
	if !ok {
		return Transition{}, false
	}
	e, ok := c.reg.Entry(workload)
	if !ok {
		return Transition{}, false
	}

	switch e.Mode() {
	case registry.ModeLearn:
		if mg.miner.Requests() < c.gates.MinLearnRequests {
			return Transition{}, false
		}
		if err := c.swapCandidate(workload, mg); err != nil {
			return Transition{}, false
		}
		if err := c.reg.SetMode(workload, registry.ModeShadow); err != nil {
			return Transition{}, false
		}
		return transition(workload, registry.ModeLearn, registry.ModeShadow,
			e.Generation(), fmt.Sprintf("candidate #%d emitted after %d observed requests",
				mg.candidates, mg.miner.Requests())), true

	case registry.ModeShadow:
		// A grown miner means shadow traffic taught the candidate
		// something (a would-deny was fed back): publish the new
		// candidate first — it must earn its own clean window.
		if v := mg.miner.Version(); v != mg.minerVersion {
			if err := c.swapCandidate(workload, mg); err != nil {
				return Transition{}, false
			}
			return Transition{}, false
		}
		gen := e.Generation()
		st := e.ShadowStats()
		if st.Generation != gen || st.GenRequests < c.gates.MinShadowRequests {
			return Transition{}, false
		}
		if st.WindowDenyRate() > c.gates.MaxShadowDenyRate {
			return Transition{}, false
		}
		if err := c.reg.Promote(workload, gen); err != nil {
			// Lost a race against a swap; the next tick re-gates.
			return Transition{}, false
		}
		mg.promotions++
		mg.haveRateBasis = false
		return transition(workload, registry.ModeShadow, registry.ModeEnforce, gen,
			fmt.Sprintf("gate held: %d shadow requests, window deny rate %.4f <= %.4f",
				st.GenRequests, st.WindowDenyRate(), c.gates.MaxShadowDenyRate)), true

	case registry.ModeEnforce:
		met := e.Metrics()
		basis := mg.haveRateBasis
		dReq := met.Requests - mg.lastRequests
		dDen := met.Denied - mg.lastDenied
		mg.lastRequests, mg.lastDenied = met.Requests, met.Denied
		mg.haveRateBasis = true
		if !basis || dReq < c.gates.DemoteMinRequests {
			return Transition{}, false
		}
		rate := float64(dDen) / float64(dReq)
		if rate <= c.gates.DemoteDenyRate {
			return Transition{}, false
		}
		if _, err := c.reg.Demote(workload); err != nil {
			return Transition{}, false
		}
		mg.demotions++
		return transition(workload, registry.ModeEnforce, registry.ModeShadow,
			e.Generation(), fmt.Sprintf("denial rate %.4f > %.4f over %d requests",
				rate, c.gates.DemoteDenyRate, dReq)), true
	}
	return Transition{}, false
}

// swapCandidate emits the miner's current candidate and publishes it.
// For adopted workloads the candidate is unioned onto the base policy:
// a request is allowed if either the base or the mined evidence allows
// it.
func (c *Controller) swapCandidate(workload string, mg *managed) error {
	version := mg.miner.Version()
	pol, err := mg.miner.Policy()
	if err != nil {
		return err
	}
	if mg.base != nil {
		pol.Mode = mg.base.Mode
		pol, err = validator.Union(workload, mg.base, pol)
		if err != nil {
			return err
		}
	}
	if err := c.reg.Swap(workload, pol); err != nil {
		return err
	}
	mg.minerVersion = version
	mg.candidates++
	return nil
}

func transition(w string, from, to registry.Mode, gen uint64, reason string) Transition {
	return Transition{
		Workload: w, From: from, To: to,
		FromName: from.String(), ToName: to.String(),
		Generation: gen, Reason: reason,
	}
}

// States snapshots every managed workload, sorted by name.
func (c *Controller) States() []WorkloadState {
	c.tickMu.Lock()
	defer c.tickMu.Unlock()
	names := c.Workloads()
	out := make([]WorkloadState, 0, len(names))
	for _, w := range names {
		c.mu.Lock()
		mg := c.workloads[w]
		c.mu.Unlock()
		e, ok := c.reg.Entry(w)
		if !ok || mg == nil {
			continue
		}
		out = append(out, WorkloadState{
			Workload:   w,
			Mode:       e.Mode().String(),
			Generation: e.Generation(),
			Observed:   mg.miner.Requests(),
			Candidates: mg.candidates,
			Promotions: mg.promotions,
			Demotions:  mg.demotions,
			Shadow:     e.ShadowStats(),
		})
	}
	return out
}
