// Admission-trace persistence: the offline path into the miner. The
// proxy's live tap (internal/proxy Config.Tap) records inspected
// requests as JSON lines; this file reads such traces back — tolerating
// malformed lines with explicit accounting, mirroring
// internal/audit.ReadJSONL — and replays them into a Miner.
package learn

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/jsonl"
	"repro/internal/object"
)

// TraceEntry is one recorded admission request.
type TraceEntry struct {
	Time     time.Time      `json:"time,omitempty"`
	Workload string         `json:"workload,omitempty"`
	User     string         `json:"user,omitempty"`
	Method   string         `json:"method,omitempty"`
	Path     string         `json:"path,omitempty"`
	Object   map[string]any `json:"object"`
}

// TraceWriter appends trace entries as JSON lines; safe for concurrent
// use (the proxy tap runs on request goroutines).
type TraceWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewTraceWriter wraps a writer.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{enc: json.NewEncoder(w)}
}

// Record appends one entry.
func (tw *TraceWriter) Record(e TraceEntry) error {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if err := tw.enc.Encode(e); err != nil {
		return fmt.Errorf("learn: encoding trace entry: %w", err)
	}
	return nil
}

// TraceParseError records one line of a trace that could not be parsed.
type TraceParseError struct {
	Line int
	Err  error
}

func (e TraceParseError) Error() string {
	return fmt.Sprintf("line %d: %v", e.Line, e.Err)
}

// ReadTrace parses a JSONL admission trace. Malformed lines and entries
// without an object are skipped, not fatal — a trace tapped from live
// traffic may be truncated mid-line by a crash — and returned as
// structured parse errors so the caller can audit the data loss. The
// error return covers I/O-level failures only.
func ReadTrace(r io.Reader) ([]TraceEntry, []TraceParseError, error) {
	var out []TraceEntry
	skipped, err := jsonl.Read(r, func(data []byte) error {
		var e TraceEntry
		if err := json.Unmarshal(data, &e); err != nil {
			return err
		}
		if len(e.Object) == 0 {
			return fmt.Errorf("trace entry carries no object")
		}
		out = append(out, e)
		return nil
	})
	parseErrs := make([]TraceParseError, len(skipped))
	for i, s := range skipped {
		parseErrs[i] = TraceParseError{Line: s.Line, Err: s.Err}
	}
	if err != nil {
		return out, parseErrs, fmt.Errorf("learn: %w", err)
	}
	return out, parseErrs, nil
}

// ObserveTrace replays trace entries into the miner, returning how many
// were observed. Entries attributed to a different workload are skipped
// when the miner's workload is set and the entry names one.
func (m *Miner) ObserveTrace(entries []TraceEntry) int {
	n := 0
	for _, e := range entries {
		if e.Workload != "" && m.workload != "" && e.Workload != m.workload {
			continue
		}
		m.Observe(object.Object(e.Object))
		n++
	}
	return n
}
