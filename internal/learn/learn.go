// Package learn mines KubeFence policies from observed admission
// traffic. The paper derives workload policies from Helm charts; real
// clusters also run workloads with no usable spec — hand-rolled
// manifests, closed-source operators, legacy tooling. For those, the
// only ground truth available is what the workload actually asks the API
// server to do.
//
// The Miner is a streaming learner: each observed request object is
// folded into per-kind field statistics, and at any point the
// accumulated observations generalize into a candidate policy in the
// exact validator form the chart pipeline produces (so the whole
// enforcement stack — compile, registry, proxy, replay — applies
// unchanged, and a mined policy can be diffed against a chart-derived
// one field by field). Generalization follows the same ladder the paper
// uses for chart values:
//
//   - a field observed with one constant stays exact;
//   - a small set of constants becomes an enumeration (the cardinality
//     bound is Options.MaxValueSet);
//   - an overflowing set generalizes to its observed scalar type, to an
//     anchored common-prefix pattern when every observation is a string
//     sharing a meaningful prefix (registry/repository paths), or to the
//     IP type when every observation is an IPv4 literal — with the
//     observed numeric range retained in the mined summary;
//   - fields present in (nearly) every observation of their parent are
//     inferred required, which is what lets a mined policy block
//     deletion-style attacks (the paper's E5) the way RequiredPaths does
//     for chart policies.
//
// A mined policy is only a *candidate*: the rollout lifecycle
// (Controller, internal/registry modes) shadows it against live traffic
// and promotes it to enforcement only once its would-deny rate holds a
// configured gate.
package learn

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"

	"repro/internal/object"
	"repro/internal/schema"
	"repro/internal/validator"
)

// Options configure mining.
type Options struct {
	// MaxValueSet bounds the distinct scalars a field keeps before its
	// domain generalizes to a type/pattern (default 8).
	MaxValueSet int
	// RequiredThreshold is the presence frequency (0..1] at or above
	// which a field of a map is inferred required (default 1.0: present
	// in every observation of its parent).
	RequiredThreshold float64
	// MinRequiredObs is the minimum number of parent observations before
	// required inference applies at all (default 2) — one observation is
	// not evidence of an invariant.
	MinRequiredObs uint64
	// MinPatternPrefix is the shortest common string prefix worth
	// preserving as an anchored pattern when a string domain overflows
	// (default 4). Shorter prefixes generalize to the bare string type.
	MinPatternPrefix int
	// GeneralizeAny lists path suffixes mined as free-form subtrees.
	// Defaults to the chart pipeline's list (labels, annotations,
	// selectors), keeping mined and chart policies comparable.
	GeneralizeAny []string
}

func (o Options) withDefaults() Options {
	if o.MaxValueSet <= 0 {
		o.MaxValueSet = 8
	}
	if o.RequiredThreshold <= 0 || o.RequiredThreshold > 1 {
		o.RequiredThreshold = 1.0
	}
	if o.MinRequiredObs == 0 {
		o.MinRequiredObs = 2
	}
	if o.MinPatternPrefix <= 0 {
		o.MinPatternPrefix = 4
	}
	if o.GeneralizeAny == nil {
		o.GeneralizeAny = validator.DefaultGeneralizeAny()
	}
	return o
}

// Miner accumulates admission-request observations for one workload and
// generalizes them into candidate policies. All methods are safe for
// concurrent use; it implements registry.Observer.
type Miner struct {
	workload string
	opts     Options

	mu          sync.Mutex
	kinds       map[string]*stats
	apiVersions map[string]map[string]bool
	requests    uint64
	version     uint64 // bumped whenever an observation grew a domain
}

// New builds a Miner for one workload.
func New(workload string, opts Options) *Miner {
	return &Miner{
		workload:    workload,
		opts:        opts.withDefaults(),
		kinds:       map[string]*stats{},
		apiVersions: map[string]map[string]bool{},
	}
}

// Workload names the workload the miner learns.
func (m *Miner) Workload() string { return m.workload }

// Requests counts the observations folded in so far.
func (m *Miner) Requests() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.requests
}

// Version is an opaque counter that changes whenever an observation grew
// some field's domain (new kind, field, value, type, or pattern). A
// rollout controller uses it to skip re-emitting an unchanged candidate.
func (m *Miner) Version() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.version
}

// Observe folds one request object into the statistics. Objects without
// a kind are ignored (the proxy denies them before any policy applies).
// The body is scrubbed exactly like the validator scrubs incoming
// requests — apiVersion/kind/status and server-owned metadata never
// become policy surface.
func (m *Miner) Observe(o object.Object) {
	kind := o.Kind()
	if kind == "" {
		return
	}
	// Shallow scrub copies only: merge never mutates the observed tree
	// and retains nothing but scalars (s.values), so the full DeepCopy
	// the validator needs for its delete-based scrub would be pure
	// allocation on the learn-mode request path.
	body := make(map[string]any, len(o))
	for k, v := range o {
		if !validator.ScrubRootKey(k) {
			body[k] = v
		}
	}
	if md, ok := body["metadata"].(map[string]any); ok {
		scrubbed := make(map[string]any, len(md))
		for k, v := range md {
			if !validator.ScrubMetaKey(k) {
				scrubbed[k] = v
			}
		}
		body["metadata"] = scrubbed
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests++
	grew := false
	if m.kinds[kind] == nil {
		m.kinds[kind] = &stats{}
		grew = true
	}
	if av := o.APIVersion(); av != "" {
		if m.apiVersions[kind] == nil {
			m.apiVersions[kind] = map[string]bool{}
		}
		if !m.apiVersions[kind][av] {
			m.apiVersions[kind][av] = true
			grew = true
		}
	}
	if m.kinds[kind].merge(body, "", &m.opts) {
		grew = true
	}
	if grew {
		m.version++
	}
}

// stats is the observation record for one field path.
type stats struct {
	obs uint64 // times this path was observed (presence count)

	anyForced bool
	mapObs    uint64
	listObs   uint64
	scalarObs uint64

	fields map[string]*stats
	item   *stats

	// Scalar domain.
	values   []any // distinct observed constants, bounded by MaxValueSet
	overflow bool
	types    map[string]bool // observed type tokens
	hasNum   bool
	min, max float64
	// lcp tracks the longest common prefix of observed strings; allIP
	// stays true while every observed string is an IPv4 literal.
	lcp    string
	hasLCP bool
	allIP  bool
}

var ipLiteralRe = regexp.MustCompile(`^(\d{1,3}\.){3}\d{1,3}$`)

// merge folds one observed value into the node, reporting whether any
// domain grew (new field, value, type, structural shape, or a pattern
// prefix shrink — anything that could change the emitted candidate).
func (s *stats) merge(v any, path string, opts *Options) bool {
	s.obs++
	if s.anyForced {
		return false
	}
	for _, suffix := range opts.GeneralizeAny {
		if suffixMatch(path, suffix) {
			s.anyForced = true
			return true
		}
	}
	switch t := v.(type) {
	case map[string]any:
		grew := s.mapObs == 0
		s.mapObs++
		if s.fields == nil {
			s.fields = map[string]*stats{}
		}
		// A known field absent from this observation can only LOWER a
		// presence frequency; when the field was present in every prior
		// observation, the required-inference outcome just changed, and
		// the rollout controller must re-emit the candidate even though
		// no domain grew.
		for k, child := range s.fields {
			if _, present := t[k]; !present && s.mapObs > 1 && child.obs == s.mapObs-1 {
				grew = true
			}
		}
		for k, val := range t {
			child := s.fields[k]
			if child == nil {
				child = &stats{}
				s.fields[k] = child
				grew = true
			}
			if child.merge(val, joinPath(path, k), opts) {
				grew = true
			}
		}
		return grew
	case []any:
		grew := s.listObs == 0
		s.listObs++
		for _, item := range t {
			if s.item == nil {
				s.item = &stats{}
				grew = true
			}
			if s.item.merge(item, path, opts) {
				grew = true
			}
		}
		return grew
	default:
		return s.mergeScalar(t, opts)
	}
}

func (s *stats) mergeScalar(v any, opts *Options) bool {
	grew := s.scalarObs == 0
	s.scalarObs++
	if s.types == nil {
		s.types = map[string]bool{}
		s.allIP = true
	}
	tok := scalarToken(v)
	if !s.types[tok] {
		s.types[tok] = true
		grew = true
	}
	if f, ok := toFloat(v); ok {
		if !s.hasNum || f < s.min {
			s.min = f
		}
		if !s.hasNum || f > s.max {
			s.max = f
		}
		s.hasNum = true
	}
	if str, ok := v.(string); ok {
		if s.allIP && !ipLiteralRe.MatchString(str) {
			s.allIP = false
			grew = true
		}
		if !s.hasLCP {
			s.lcp, s.hasLCP = str, true
		} else if p := commonPrefix(s.lcp, str); p != s.lcp {
			s.lcp = p
			grew = true
		}
	} else if s.allIP && s.types[schema.TokString] {
		s.allIP = false
		grew = true
	}
	if !s.overflow {
		found := false
		for _, existing := range s.values {
			if object.Equal(existing, v) {
				found = true
				break
			}
		}
		if !found {
			if len(s.values) >= opts.MaxValueSet {
				s.overflow = true
			} else {
				s.values = append(s.values, v)
			}
			grew = true
		}
		return grew
	}
	// Post-overflow liveness invariant: every observed value must be
	// allowed by the NEXT emitted candidate, or a shadow false positive
	// whose body teaches the miner nothing would leave the workload
	// stuck in shadow forever (the rollout controller only republishes
	// when the miner grew). A value the current generalization does not
	// absorb is retained as an explicit enum member past the cardinality
	// bound — bounded in practice by how many shapes real traffic has.
	if !s.covered(v, opts) {
		s.values = append(s.values, v)
		grew = true
	}
	return grew
}

// covered reports whether the current generalization (as scalarNode
// would emit it) already allows the value.
func (s *stats) covered(v any, opts *Options) bool {
	n, _ := s.scalarNode(opts)
	if n.Type != "" && validator.TypeMatches(n.Type, v) {
		return true
	}
	if str, ok := v.(string); ok {
		for _, p := range n.Patterns {
			if re, err := regexp.Compile(p); err == nil && re.MatchString(str) {
				return true
			}
		}
	}
	for _, allowed := range n.Values {
		if object.Equal(allowed, v) {
			return true
		}
	}
	return false
}

// scalarToken classifies an observed scalar as a placeholder type token.
func scalarToken(v any) string {
	switch t := v.(type) {
	case bool:
		return schema.TokBool
	case int, int64:
		return schema.TokInt
	case float64:
		if t == float64(int64(t)) {
			return schema.TokInt
		}
		return schema.TokFloat
	case string:
		return schema.TokString
	case nil:
		return "null"
	default:
		return fmt.Sprintf("%T", v)
	}
}

func toFloat(v any) (float64, bool) {
	switch t := v.(type) {
	case int:
		return float64(t), true
	case int64:
		return float64(t), true
	case float64:
		return t, true
	}
	return 0, false
}

func commonPrefix(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return a[:i]
}

func suffixMatch(path, suffix string) bool {
	if path == suffix {
		return true
	}
	return strings.HasSuffix(path, "."+suffix)
}

func joinPath(path, key string) string {
	if path == "" {
		return key
	}
	return path + "." + key
}

// PathSummary describes how one mined field path generalized — the
// human-auditable record of what the candidate allows and why.
type PathSummary struct {
	Kind string `json:"kind"`
	Path string `json:"path"`
	// Observations counts how many times the path was present.
	Observations uint64 `json:"observations"`
	// Distinct is the number of distinct scalar values retained (0 for
	// non-scalar nodes).
	Distinct int `json:"distinct,omitempty"`
	// Domain renders the generalization outcome: "exact", "enum(n)",
	// "type:int range[80,443]", "pattern:^docker.io/…", "any", "object",
	// "list".
	Domain string `json:"domain"`
	// Required marks paths inferred mandatory from presence frequency.
	Required bool `json:"required,omitempty"`
}

// Policy generalizes the accumulated observations into a candidate
// policy validator. It errors until at least one object was observed.
func (m *Miner) Policy() (*validator.Validator, error) {
	v, _, ok := m.emit(false)
	if !ok {
		return nil, fmt.Errorf("learn: workload %s: no observations to generalize", m.workload)
	}
	return v, nil
}

// Summaries renders the per-path generalization outcomes of the current
// candidate, sorted by (kind, path). Empty until something was observed.
func (m *Miner) Summaries() []PathSummary {
	_, s, ok := m.emit(true)
	if !ok {
		return nil
	}
	return s
}

// emitState avoids recomputing summaries when the caller only wants the
// validator.
func (m *Miner) emit(withSummaries bool) (*validator.Validator, []PathSummary, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.requests == 0 || len(m.kinds) == 0 {
		return nil, nil, false
	}
	v := &validator.Validator{
		Workload:    m.workload,
		Kinds:       map[string]*validator.Node{},
		APIVersions: map[string]map[string]bool{},
		Mode:        validator.LockIfPresent,
	}
	var summaries []PathSummary
	for kind, st := range m.kinds {
		var sink *[]PathSummary
		if withSummaries {
			sink = &summaries
		}
		v.Kinds[kind] = st.node("", kind, &m.opts, sink)
		avs := map[string]bool{}
		for av := range m.apiVersions[kind] {
			avs[av] = true
		}
		v.APIVersions[kind] = avs
	}
	if withSummaries {
		sort.Slice(summaries, func(i, j int) bool {
			if summaries[i].Kind != summaries[j].Kind {
				return summaries[i].Kind < summaries[j].Kind
			}
			return summaries[i].Path < summaries[j].Path
		})
	}
	return v, summaries, true
}

// node lowers one stats record into a validator node.
func (s *stats) node(path, kind string, opts *Options, summaries *[]PathSummary) *validator.Node {
	summarize := func(n *validator.Node, domain string, distinct int) *validator.Node {
		if summaries != nil && path != "" {
			*summaries = append(*summaries, PathSummary{
				Kind: kind, Path: path, Observations: s.obs,
				Distinct: distinct, Domain: domain, Required: n.Required,
			})
		}
		return n
	}
	structural := 0
	for _, c := range []uint64{s.mapObs, s.listObs, s.scalarObs} {
		if c > 0 {
			structural++
		}
	}
	if s.anyForced || structural > 1 {
		// Free-form by configuration, or structurally conflicting
		// observations — same generalization the chart builder applies.
		return summarize(&validator.Node{Kind: validator.KindAny}, "any", 0)
	}
	switch {
	case s.mapObs > 0:
		n := &validator.Node{Kind: validator.KindMap, Fields: map[string]*validator.Node{}}
		for k, child := range s.fields {
			cn := child.node(joinPath(path, k), kind, opts, nil) // summaries attached below
			if s.mapObs >= opts.MinRequiredObs &&
				float64(child.obs)/float64(s.mapObs) >= opts.RequiredThreshold &&
				child.hasContent() {
				cn.Required = true
			}
			n.Fields[k] = cn
		}
		// Re-walk for summaries with the Required flags settled.
		if summaries != nil {
			for _, k := range sortedFieldKeys(s.fields) {
				s.fields[k].summaryWalk(joinPath(path, k), kind, n.Fields[k], opts, summaries)
			}
		}
		return summarize(n, "object", 0)
	case s.listObs > 0:
		n := &validator.Node{Kind: validator.KindList}
		if s.item != nil {
			n.Item = s.item.node(path, kind, opts, nil)
			if summaries != nil {
				s.item.summaryWalk(path, kind, n.Item, opts, summaries)
			}
		}
		return summarize(n, "list", 0)
	default:
		n, domain := s.scalarNode(opts)
		return summarize(n, domain, len(s.values))
	}
}

// summaryWalk re-records summaries for an already-lowered subtree (the
// Required flags live on the lowered nodes, not the stats).
func (s *stats) summaryWalk(path, kind string, n *validator.Node, opts *Options, summaries *[]PathSummary) {
	domain, distinct := s.describe(opts)
	*summaries = append(*summaries, PathSummary{
		Kind: kind, Path: path, Observations: s.obs,
		Distinct: distinct, Domain: domain, Required: n.Required,
	})
	if n.Kind == validator.KindMap && s.fields != nil {
		for _, k := range sortedFieldKeys(s.fields) {
			if child := n.Fields[k]; child != nil {
				s.fields[k].summaryWalk(joinPath(path, k), kind, child, opts, summaries)
			}
		}
	}
	if n.Kind == validator.KindList && n.Item != nil && s.item != nil {
		s.item.summaryWalk(path, kind, n.Item, opts, summaries)
	}
}

// describe renders the domain label for summaries without rebuilding the
// node.
func (s *stats) describe(opts *Options) (string, int) {
	structural := 0
	for _, c := range []uint64{s.mapObs, s.listObs, s.scalarObs} {
		if c > 0 {
			structural++
		}
	}
	if s.anyForced || structural > 1 {
		return "any", 0
	}
	switch {
	case s.mapObs > 0:
		return "object", 0
	case s.listObs > 0:
		return "list", 0
	default:
		_, domain := s.scalarNode(opts)
		return domain, len(s.values)
	}
}

// scalarNode lowers a scalar domain, returning the node and the summary
// label.
func (s *stats) scalarNode(opts *Options) (*validator.Node, string) {
	n := &validator.Node{Kind: validator.KindScalar}
	if !s.overflow {
		n.Values = append([]any(nil), s.values...)
		if len(s.values) == 1 {
			return n, "exact"
		}
		return n, fmt.Sprintf("enum(%d)", len(s.values))
	}
	// The observed set overflowed the cardinality bound: generalize, from
	// most to least specific — IP literal, anchored common prefix,
	// numeric type with range, bare type. The retained values ride along
	// as an enum fallback in every branch: values observed AFTER the
	// overflow that the generalization does not absorb (see covered) are
	// only allowed through them, and the pre-overflow retainees were
	// legitimately observed anyway.
	n.Values = append([]any(nil), s.values...)
	onlyString := s.types[schema.TokString] && len(s.types) == 1
	switch {
	case onlyString && s.allIP:
		n.Type = schema.TokIP
		return n, "type:IP"
	case onlyString && len(s.lcp) >= opts.MinPatternPrefix:
		n.Patterns = []string{"^" + regexp.QuoteMeta(s.lcp) + `[^\s]*$`}
		return n, "pattern:^" + s.lcp + "…"
	case onlyString:
		n.Type = schema.TokString
		return n, "type:string"
	case s.numericOnly():
		if s.types[schema.TokFloat] {
			n.Type = schema.TokFloat
		} else {
			n.Type = schema.TokInt
		}
		return n, fmt.Sprintf("type:%s range[%s,%s]", n.Type,
			renderNum(s.min), renderNum(s.max))
	case s.types[schema.TokBool] && len(s.types) == 1:
		n.Type = schema.TokBool
		return n, "type:bool"
	default:
		// Mixed scalar types: fall back to string plus the enum.
		n.Type = schema.TokString
		return n, "type:string+enum"
	}
}

// hasContent reports whether the node was ever observed non-empty. A
// field that is always present but always empty ({} or []) must not be
// inferred required: the validator's required check rejects empty
// stand-ins, so requiring it would deny the very trace it was mined
// from.
func (s *stats) hasContent() bool {
	if s.scalarObs > 0 || s.anyForced {
		return true
	}
	if s.mapObs > 0 {
		return len(s.fields) > 0
	}
	if s.listObs > 0 {
		return s.item != nil
	}
	return false
}

func (s *stats) numericOnly() bool {
	if len(s.types) == 0 {
		return false
	}
	for tok := range s.types {
		if tok != schema.TokInt && tok != schema.TokFloat {
			return false
		}
	}
	return true
}

func renderNum(f float64) string {
	if f == float64(int64(f)) {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}

func sortedFieldKeys(m map[string]*stats) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
