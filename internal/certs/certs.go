// Package certs provides the PKI used to enforce the paper's Complete
// Mediation property (§V-B): the API server accepts only mTLS connections
// from clients presenting a certificate signed by the cluster CA, and the
// only such client certificate is issued to the KubeFence proxy — so API
// requests cannot bypass validation. Clients in turn trust the proxy CA,
// letting the proxy terminate and inspect their TLS traffic, exactly like
// the mitmproxy deployment in the paper.
package certs

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"net"
	"time"
)

// CA is a certificate authority able to issue leaf certificates.
type CA struct {
	Cert *x509.Certificate
	Key  *ecdsa.PrivateKey
	// DER is the CA certificate in DER form (for pools).
	DER []byte
}

// NewCA creates a self-signed certificate authority.
func NewCA(commonName string) (*CA, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("certs: generating CA key: %w", err)
	}
	serial, err := randomSerial()
	if err != nil {
		return nil, err
	}
	tpl := &x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: commonName, Organization: []string{"kubefence"}},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * 365 * time.Hour),
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tpl, tpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("certs: self-signing CA: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("certs: parsing CA cert: %w", err)
	}
	return &CA{Cert: cert, Key: key, DER: der}, nil
}

// Leaf is an issued certificate with its private key.
type Leaf struct {
	Cert *x509.Certificate
	Key  *ecdsa.PrivateKey
	DER  []byte
}

// IssueServer issues a server certificate for the given hosts (DNS names
// or IP literals).
func (ca *CA) IssueServer(commonName string, hosts ...string) (*Leaf, error) {
	return ca.issue(commonName, hosts, x509.ExtKeyUsageServerAuth)
}

// IssueClient issues a client certificate; commonName becomes the
// authenticated user identity at the API server.
func (ca *CA) IssueClient(commonName string) (*Leaf, error) {
	return ca.issue(commonName, nil, x509.ExtKeyUsageClientAuth)
}

func (ca *CA) issue(commonName string, hosts []string, usage x509.ExtKeyUsage) (*Leaf, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("certs: generating key for %s: %w", commonName, err)
	}
	serial, err := randomSerial()
	if err != nil {
		return nil, err
	}
	tpl := &x509.Certificate{
		SerialNumber: serial,
		Subject:      pkix.Name{CommonName: commonName, Organization: []string{"kubefence"}},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(24 * 365 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{usage},
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			tpl.IPAddresses = append(tpl.IPAddresses, ip)
		} else {
			tpl.DNSNames = append(tpl.DNSNames, h)
		}
	}
	der, err := x509.CreateCertificate(rand.Reader, tpl, ca.Cert, &key.PublicKey, ca.Key)
	if err != nil {
		return nil, fmt.Errorf("certs: issuing %s: %w", commonName, err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("certs: parsing issued cert: %w", err)
	}
	return &Leaf{Cert: cert, Key: key, DER: der}, nil
}

// Pool returns a cert pool containing only this CA.
func (ca *CA) Pool() *x509.CertPool {
	pool := x509.NewCertPool()
	pool.AddCert(ca.Cert)
	return pool
}

// TLSCertificate converts the leaf into a tls.Certificate.
func (l *Leaf) TLSCertificate() tls.Certificate {
	return tls.Certificate{Certificate: [][]byte{l.DER}, PrivateKey: l.Key}
}

// ServerTLSConfig builds the API server's TLS configuration: it presents
// serverCert and requires client certificates signed by clientCA
// (complete mediation — only the proxy holds one).
func ServerTLSConfig(serverCert *Leaf, clientCA *CA) *tls.Config {
	return &tls.Config{
		Certificates: []tls.Certificate{serverCert.TLSCertificate()},
		ClientAuth:   tls.RequireAndVerifyClientCert,
		ClientCAs:    clientCA.Pool(),
		MinVersion:   tls.VersionTLS12,
	}
}

// ClientTLSConfig builds a client configuration that trusts serverCA and
// optionally presents a client certificate.
func ClientTLSConfig(serverCA *CA, clientCert *Leaf) *tls.Config {
	cfg := &tls.Config{
		RootCAs:    serverCA.Pool(),
		MinVersion: tls.VersionTLS12,
	}
	if clientCert != nil {
		cfg.Certificates = []tls.Certificate{clientCert.TLSCertificate()}
	}
	return cfg
}

func randomSerial() (*big.Int, error) {
	limit := new(big.Int).Lsh(big.NewInt(1), 128)
	serial, err := rand.Int(rand.Reader, limit)
	if err != nil {
		return nil, fmt.Errorf("certs: generating serial: %w", err)
	}
	return serial, nil
}
