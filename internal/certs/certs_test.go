package certs

import (
	"crypto/tls"
	"crypto/x509"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestCAIsSelfSignedCA(t *testing.T) {
	ca, err := NewCA("test-ca")
	if err != nil {
		t.Fatal(err)
	}
	if !ca.Cert.IsCA {
		t.Error("certificate is not a CA")
	}
	if ca.Cert.Subject.CommonName != "test-ca" {
		t.Errorf("CN = %q", ca.Cert.Subject.CommonName)
	}
	// Self-signature verifies against its own pool.
	if _, err := ca.Cert.Verify(x509.VerifyOptions{Roots: ca.Pool()}); err != nil {
		t.Errorf("self verification failed: %v", err)
	}
}

func TestIssueServerHosts(t *testing.T) {
	ca, err := NewCA("ca")
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.IssueServer("api", "127.0.0.1", "kubernetes.default.svc")
	if err != nil {
		t.Fatal(err)
	}
	if len(leaf.Cert.IPAddresses) != 1 || leaf.Cert.IPAddresses[0].String() != "127.0.0.1" {
		t.Errorf("IPs = %v", leaf.Cert.IPAddresses)
	}
	if len(leaf.Cert.DNSNames) != 1 || leaf.Cert.DNSNames[0] != "kubernetes.default.svc" {
		t.Errorf("DNS = %v", leaf.Cert.DNSNames)
	}
	opts := x509.VerifyOptions{
		Roots:     ca.Pool(),
		DNSName:   "kubernetes.default.svc",
		KeyUsages: []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	if _, err := leaf.Cert.Verify(opts); err != nil {
		t.Errorf("chain verification failed: %v", err)
	}
}

func TestClientCertIdentity(t *testing.T) {
	ca, err := NewCA("ca")
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.IssueClient("kubefence-proxy")
	if err != nil {
		t.Fatal(err)
	}
	if leaf.Cert.Subject.CommonName != "kubefence-proxy" {
		t.Errorf("CN = %q", leaf.Cert.Subject.CommonName)
	}
	opts := x509.VerifyOptions{
		Roots:     ca.Pool(),
		KeyUsages: []x509.ExtKeyUsage{x509.ExtKeyUsageClientAuth},
	}
	if _, err := leaf.Cert.Verify(opts); err != nil {
		t.Errorf("client chain verification failed: %v", err)
	}
}

func TestWrongCARejected(t *testing.T) {
	caA, _ := NewCA("a")
	caB, _ := NewCA("b")
	leaf, err := caA.IssueServer("srv", "127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := leaf.Cert.Verify(x509.VerifyOptions{Roots: caB.Pool()}); err == nil {
		t.Error("cert from CA A must not verify against CA B")
	}
}

func TestMutualTLSHandshake(t *testing.T) {
	serverCA, _ := NewCA("server-ca")
	clientCA, _ := NewCA("client-ca")
	serverCert, err := serverCA.IssueServer("srv", "127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	clientCert, err := clientCA.IssueClient("good-client")
	if err != nil {
		t.Fatal(err)
	}

	var gotCN string
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if len(r.TLS.PeerCertificates) > 0 {
			gotCN = r.TLS.PeerCertificates[0].Subject.CommonName
		}
	}))
	ts.TLS = ServerTLSConfig(serverCert, clientCA)
	ts.Config.ErrorLog = discardLogger()
	ts.StartTLS()
	defer ts.Close()

	// With a valid client cert the request succeeds and the server sees
	// the identity.
	okClient := &http.Client{Transport: &http.Transport{
		TLSClientConfig: ClientTLSConfig(serverCA, clientCert),
	}}
	resp, err := okClient.Get(ts.URL)
	if err != nil {
		t.Fatalf("mTLS request failed: %v", err)
	}
	resp.Body.Close()
	if gotCN != "good-client" {
		t.Errorf("server saw CN %q", gotCN)
	}

	// Without a client cert the handshake fails.
	noCert := &http.Client{Transport: &http.Transport{
		TLSClientConfig: ClientTLSConfig(serverCA, nil),
	}}
	if _, err := noCert.Get(ts.URL); err == nil {
		t.Error("handshake without client cert should fail")
	}

	// A client cert from the wrong CA fails too.
	otherCA, _ := NewCA("other")
	badCert, _ := otherCA.IssueClient("imposter")
	badClient := &http.Client{Transport: &http.Transport{
		TLSClientConfig: &tls.Config{
			RootCAs:      serverCA.Pool(),
			Certificates: []tls.Certificate{badCert.TLSCertificate()},
			MinVersion:   tls.VersionTLS12,
		},
	}}
	if _, err := badClient.Get(ts.URL); err == nil {
		t.Error("handshake with wrong-CA client cert should fail")
	}
}
