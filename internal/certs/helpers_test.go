package certs

import (
	"io"
	"log"
)

// discardLogger silences httptest servers during expected-failure
// handshakes.
func discardLogger() *log.Logger { return log.New(io.Discard, "", 0) }
