// Package surface quantifies the Kubernetes API attack surface and its
// reduction (paper §VI-B): the per-workload, per-endpoint field
// utilization matrix of Fig. 9 and the RBAC-vs-KubeFence restrictable-
// field comparison of Table I.
//
// The measuring stick is the apischema catalog (the configurable fields of
// the 20 endpoints); a workload's *used* fields are the catalog paths its
// KubeFence validator allows. RBAC can only restrict whole endpoints the
// workload never touches, while KubeFence additionally restricts every
// unused field within partially-used endpoints — making it a strict
// superset of RBAC's enforcement.
package surface

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/apischema"
	"repro/internal/validator"
)

// Usage is one cell of the Fig. 9 matrix.
type Usage struct {
	Workload string
	Kind     string
	Used     int
	Total    int
}

// Percent returns the utilization percentage.
func (u Usage) Percent() float64 {
	if u.Total == 0 {
		return 0
	}
	return 100 * float64(u.Used) / float64(u.Total)
}

// Matrix is the full Fig. 9 utilization matrix.
type Matrix struct {
	Workloads []string
	Kinds     []string
	cells     map[string]Usage // workload + "/" + kind
}

// Cell returns the usage for one (workload, kind).
func (m *Matrix) Cell(workload, kind string) Usage {
	return m.cells[workload+"/"+kind]
}

// ComputeUsage builds the utilization matrix from per-workload policies.
func ComputeUsage(policies map[string]*validator.Validator) *Matrix {
	workloads := make([]string, 0, len(policies))
	for w := range policies {
		workloads = append(workloads, w)
	}
	sort.Strings(workloads)
	m := &Matrix{
		Workloads: workloads,
		Kinds:     apischema.Kinds(),
		cells:     map[string]Usage{},
	}
	for _, w := range workloads {
		pol := policies[w]
		for _, res := range apischema.Catalog() {
			used := UsedFields(pol, res)
			m.cells[w+"/"+res.Kind] = Usage{
				Workload: w, Kind: res.Kind,
				Used: used, Total: res.Count(),
			}
		}
	}
	return m
}

// UsedFields counts the catalog fields of a resource that the policy
// allows: catalog paths reachable in the validator tree. A free-form
// (KindAny) validator subtree marks the whole catalog subtree beneath it
// as exposed — conservative from the defender's standpoint.
func UsedFields(pol *validator.Validator, res apischema.Resource) int {
	root, ok := pol.Kinds[res.Kind]
	if !ok {
		return 0
	}
	used := 0
	for _, path := range res.Paths() {
		if pathAllowed(root, strings.Split(path, ".")) {
			used++
		}
	}
	return used
}

func pathAllowed(n *validator.Node, segs []string) bool {
	if n == nil {
		return false
	}
	if len(segs) == 0 {
		return true
	}
	switch n.Kind {
	case validator.KindAny:
		return true
	case validator.KindMap:
		child, ok := n.Fields[segs[0]]
		if !ok {
			return false
		}
		return pathAllowed(child, segs[1:])
	case validator.KindList:
		return pathAllowed(n.Item, segs)
	default:
		return false
	}
}

// Reduction is one row of Table I.
type Reduction struct {
	Workload string
	// TotalFields is the catalog total (the paper's 4,882 denominator).
	TotalFields int
	// RBACRestrictable counts fields restrictable by denying whole
	// endpoints the workload does not use.
	RBACRestrictable int
	// KubeFenceRestrictable counts every field outside the workload's
	// policy, including unused fields of partially-used endpoints.
	KubeFenceRestrictable int
}

// RBACPercent is the RBAC attack-surface reduction.
func (r Reduction) RBACPercent() float64 {
	return 100 * float64(r.RBACRestrictable) / float64(r.TotalFields)
}

// KubeFencePercent is the KubeFence attack-surface reduction.
func (r Reduction) KubeFencePercent() float64 {
	return 100 * float64(r.KubeFenceRestrictable) / float64(r.TotalFields)
}

// Improvement is the percentage-point gain of KubeFence over RBAC.
func (r Reduction) Improvement() float64 {
	return r.KubeFencePercent() - r.RBACPercent()
}

// ComputeReduction builds a workload's Table I row from its policy.
func ComputeReduction(workload string, pol *validator.Validator) Reduction {
	total := apischema.TotalFields()
	red := Reduction{Workload: workload, TotalFields: total}
	for _, res := range apischema.Catalog() {
		used := UsedFields(pol, res)
		if _, kindUsed := pol.Kinds[res.Kind]; !kindUsed {
			// Whole endpoint unused: RBAC can deny the endpoint.
			red.RBACRestrictable += res.Count()
		}
		red.KubeFenceRestrictable += res.Count() - used
	}
	return red
}

// ComputeReductions builds Table I for a set of policies, sorted by
// workload name.
func ComputeReductions(policies map[string]*validator.Validator) []Reduction {
	names := make([]string, 0, len(policies))
	for w := range policies {
		names = append(names, w)
	}
	sort.Strings(names)
	out := make([]Reduction, 0, len(names))
	for _, w := range names {
		out = append(out, ComputeReduction(w, policies[w]))
	}
	return out
}

// AverageImprovement is the paper's headline "average 35% reduction
// compared to RBAC".
func AverageImprovement(rows []Reduction) float64 {
	if len(rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rows {
		sum += r.Improvement()
	}
	return sum / float64(len(rows))
}

// RenderFig9 renders the matrix in the paper's heatmap layout (rows =
// workloads, columns = endpoints, cells = % of fields used).
func RenderFig9(m *Matrix) string {
	var b strings.Builder
	b.WriteString("Figure 9: Percentage of API usage across workloads and endpoints\n\n")
	fmt.Fprintf(&b, "%-12s", "workload")
	for _, k := range m.Kinds {
		fmt.Fprintf(&b, " %*s", colWidth(k), abbreviate(k))
	}
	b.WriteByte('\n')
	for _, w := range m.Workloads {
		fmt.Fprintf(&b, "%-12s", w)
		for _, k := range m.Kinds {
			fmt.Fprintf(&b, " %*.2f%%", colWidth(k)-1, m.Cell(w, k).Percent())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderTableI renders Table I in the paper's layout.
func RenderTableI(rows []Reduction) string {
	var b strings.Builder
	b.WriteString("Table I: Attack surface reduction achievable by KubeFence vs RBAC\n\n")
	fmt.Fprintf(&b, "%-12s %22s %22s %10s %11s\n",
		"Workload", "RBAC restrictable", "KubeFence restrictable", "RBAC %", "KubeFence %")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %12d / %6d %12d / %6d %9.2f%% %10.2f%%\n",
			r.Workload,
			r.RBACRestrictable, r.TotalFields,
			r.KubeFenceRestrictable, r.TotalFields,
			r.RBACPercent(), r.KubeFencePercent())
	}
	fmt.Fprintf(&b, "\naverage improvement over RBAC: %.2f percentage points (paper: ~35)\n",
		AverageImprovement(rows))
	return b.String()
}

func abbreviate(kind string) string {
	replacements := map[string]string{
		"HorizontalPodAutoscaler":        "HPA",
		"PodDisruptionBudget":            "PDB",
		"PersistentVolumeClaim":          "PVC",
		"ValidatingWebhookConfiguration": "ValWebhook",
		"ServiceAccount":                 "SvcAcct",
		"NetworkPolicy":                  "NetPol",
		"ClusterRoleBinding":             "CRBinding",
		"ClusterRole":                    "CRole",
		"RoleBinding":                    "RoleBind",
		"StatefulSet":                    "STS",
		"IngressClass":                   "IngClass",
	}
	if r, ok := replacements[kind]; ok {
		return r
	}
	return kind
}

func colWidth(kind string) int {
	w := len(abbreviate(kind)) + 1
	if w < 8 {
		w = 8
	}
	return w
}
