package surface

import (
	"strings"
	"testing"

	"repro/internal/apischema"
	"repro/internal/charts"
	"repro/internal/core"
	"repro/internal/validator"
)

func policies(t *testing.T) map[string]*validator.Validator {
	t.Helper()
	out := map[string]*validator.Validator{}
	for _, name := range charts.Names() {
		res, err := core.GeneratePolicy(charts.MustLoad(name), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		out[name] = res.Validator
	}
	return out
}

func TestUsageMatrixShape(t *testing.T) {
	m := ComputeUsage(policies(t))
	if len(m.Workloads) != 5 {
		t.Fatalf("workloads = %v", m.Workloads)
	}
	if len(m.Kinds) != 20 {
		t.Fatalf("kinds = %d", len(m.Kinds))
	}
}

func TestFig9ZeroAndNonZeroPattern(t *testing.T) {
	// The zero/non-zero pattern of the matrix must match the paper's
	// Fig. 9 rows (which kinds each workload uses).
	m := ComputeUsage(policies(t))
	for _, w := range m.Workloads {
		expected := map[string]bool{}
		for _, k := range charts.ExpectedKinds(w) {
			expected[k] = true
		}
		for _, k := range m.Kinds {
			cell := m.Cell(w, k)
			if expected[k] && cell.Used == 0 {
				t.Errorf("%s/%s: expected non-zero usage", w, k)
			}
			if !expected[k] && cell.Used != 0 {
				t.Errorf("%s/%s: expected zero usage, got %d fields", w, k, cell.Used)
			}
		}
	}
}

func TestUsageIsSmallFractionOfSurface(t *testing.T) {
	// Core paper finding: workloads use only a small subset of each
	// endpoint's fields.
	m := ComputeUsage(policies(t))
	for _, w := range m.Workloads {
		for _, k := range m.Kinds {
			cell := m.Cell(w, k)
			if cell.Used == 0 {
				continue
			}
			if pct := cell.Percent(); pct > 60 {
				t.Errorf("%s/%s uses %.1f%% of fields — implausibly high", w, k, pct)
			}
		}
	}
}

func TestTableIKubeFenceDominatesRBAC(t *testing.T) {
	rows := ComputeReductions(policies(t))
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.KubeFenceRestrictable <= r.RBACRestrictable {
			t.Errorf("%s: KubeFence (%d) must restrict strictly more than RBAC (%d)",
				r.Workload, r.KubeFenceRestrictable, r.RBACRestrictable)
		}
		if r.KubeFencePercent() < 90 {
			t.Errorf("%s: KubeFence reduction %.1f%% — paper reports 96–99%%",
				r.Workload, r.KubeFencePercent())
		}
		if r.KubeFenceRestrictable > r.TotalFields {
			t.Errorf("%s: restrictable exceeds total", r.Workload)
		}
	}
}

func TestTableIOrderingMatchesPaper(t *testing.T) {
	// SonarQube uses the most endpoints, so its RBAC reduction is the
	// lowest of the five (paper: 20.73% vs 59–80% for the others) and its
	// improvement the highest (+77pp).
	rows := ComputeReductions(policies(t))
	byName := map[string]Reduction{}
	for _, r := range rows {
		byName[r.Workload] = r
	}
	sq := byName["sonarqube"]
	for name, r := range byName {
		if name == "sonarqube" {
			continue
		}
		if sq.RBACPercent() >= r.RBACPercent() {
			t.Errorf("sonarqube RBAC reduction (%.1f%%) should be lowest, but %s has %.1f%%",
				sq.RBACPercent(), name, r.RBACPercent())
		}
		if sq.Improvement() <= r.Improvement() {
			t.Errorf("sonarqube improvement (%.1fpp) should be highest, but %s has %.1fpp",
				sq.Improvement(), name, r.Improvement())
		}
	}
}

func TestAverageImprovementMagnitude(t *testing.T) {
	rows := ComputeReductions(policies(t))
	avg := AverageImprovement(rows)
	// Paper: average 35 percentage points over RBAC. Accept the same
	// order of magnitude on our re-created corpus.
	if avg < 15 || avg > 60 {
		t.Errorf("average improvement = %.1fpp, want within [15, 60] (paper: ~35)", avg)
	}
	t.Logf("average improvement over RBAC: %.2f percentage points (paper: ~35)", avg)
}

func TestRenderOutputs(t *testing.T) {
	pols := policies(t)
	fig9 := RenderFig9(ComputeUsage(pols))
	if !strings.Contains(fig9, "nginx") || !strings.Contains(fig9, "%") {
		t.Errorf("fig9 output malformed:\n%s", fig9)
	}
	tab1 := RenderTableI(ComputeReductions(pols))
	if !strings.Contains(tab1, "sonarqube") || !strings.Contains(tab1, "average improvement") {
		t.Errorf("table I output malformed:\n%s", tab1)
	}
}

func TestUsedFieldsUnknownKind(t *testing.T) {
	pols := policies(t)
	res, _ := apischema.Lookup("Pod")
	if got := UsedFields(pols["nginx"], res); got != 0 {
		t.Errorf("nginx does not use Pod; used = %d", got)
	}
}
