package plane

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/object"
	"repro/internal/registry"
)

// recordingObserver collects the objects a learning workload's traffic
// feeds it.
type recordingObserver struct {
	mu   sync.Mutex
	seen []object.Object
}

func (o *recordingObserver) Observe(obj object.Object) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.seen = append(o.seen, obj)
}

func TestPlaneLearningDeregisterLifecycle(t *testing.T) {
	pl := newTestPlane(t, 2, Config{})

	// A learning workload has no policy: traffic forwards and feeds the
	// observer on the owning replica.
	obs := &recordingObserver{}
	if err := pl.RegisterLearning("novel", registry.Selector{Namespace: "novel"}, obs); err != nil {
		t.Fatal(err)
	}
	if m, err := pl.Mode("novel"); err != nil || m != registry.ModeLearn {
		t.Fatalf("Mode(novel) = %v, %v; want ModeLearn", m, err)
	}
	if w := post(t, pl, "/api/v1/namespaces/novel/pods", podBody(true, "docker.io/evil:1")); w.Code != http.StatusOK {
		t.Fatalf("learn-mode request = %d, want 200", w.Code)
	}
	obs.mu.Lock()
	fed := len(obs.seen)
	obs.mu.Unlock()
	if fed != 1 {
		t.Fatalf("observer saw %d objects, want 1", fed)
	}
	if err := pl.RegisterLearning("novel", registry.Selector{}, obs); err == nil {
		t.Error("duplicate RegisterLearning should fail")
	}

	// Enforce → Demote back to shadow, tier-wide.
	if err := pl.Register("web", registry.Selector{Namespace: "web"}, policyFor(t, "web", false, "docker.io/web:1")); err != nil {
		t.Fatal(err)
	}
	if err := pl.Demote("web"); err != nil {
		t.Fatal(err)
	}
	if m, _ := pl.Mode("web"); m != registry.ModeShadow {
		t.Fatalf("Mode(web) after Demote = %v, want ModeShadow", m)
	}
	// Shadowed violations forward instead of denying.
	if w := post(t, pl, "/api/v1/namespaces/web/pods", podBody(true, "docker.io/evil:1")); w.Code != http.StatusOK {
		t.Fatalf("shadow-mode violation = %d, want 200 (forwarded)", w.Code)
	}

	if got := pl.Replicas(); got != 2 {
		t.Fatalf("Replicas() = %d, want 2", got)
	}
	ws := pl.Workloads()
	if len(ws) != 2 {
		t.Fatalf("Workloads() = %v, want 2 entries", ws)
	}

	// Deregister removes the workload everywhere; its traffic then fails
	// closed at the replica (no governing policy).
	if !pl.Deregister("novel") {
		t.Fatal("Deregister(novel) = false, want true")
	}
	if pl.Deregister("novel") {
		t.Fatal("second Deregister(novel) = true, want false")
	}
	if _, err := pl.Mode("novel"); err == nil {
		t.Error("Mode after Deregister should fail")
	}
	if w := post(t, pl, "/api/v1/namespaces/novel/pods", podBody(false, "docker.io/x:1")); w.Code != http.StatusForbidden {
		t.Fatalf("deregistered workload's traffic = %d, want 403 (fail closed)", w.Code)
	}
}

func TestPlaneDeregisterPinnedReleasesShard(t *testing.T) {
	pl := newTestPlane(t, 2, Config{})
	if err := pl.RegisterPinned("pinned", registry.Selector{Namespace: "pin"},
		policyFor(t, "pinned", false, "docker.io/p:1"), 1); err != nil {
		t.Fatal(err)
	}
	if !pl.Deregister("pinned") {
		t.Fatal("Deregister(pinned) = false")
	}
	// The shard key is free again: re-pinning it elsewhere succeeds.
	if err := pl.RegisterPinned("pinned2", registry.Selector{Namespace: "pin"},
		policyFor(t, "pinned2", false, "docker.io/p:1"), 0); err != nil {
		t.Fatalf("re-pinning released shard: %v", err)
	}
}

func TestPlaneStateAndStateString(t *testing.T) {
	pl := newTestPlane(t, 2, Config{})
	if _, err := pl.State(-1); err == nil {
		t.Error("State(-1) should fail")
	}
	if _, err := pl.State(2); err == nil {
		t.Error("State(2) on a 2-replica tier should fail")
	}
	if s, err := pl.State(0); err != nil || s != ReplicaActive {
		t.Fatalf("State(0) = %v, %v; want ReplicaActive", s, err)
	}
	for state, want := range map[ReplicaState]string{
		ReplicaActive:   "active",
		ReplicaDraining: "draining",
		ReplicaDown:     "down",
		ReplicaState(9): "ReplicaState(9)",
	} {
		if got := state.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int32(state), got, want)
		}
	}
}

func TestBodyFormatClassification(t *testing.T) {
	tests := []struct {
		contentType string
		want        bodyFormatKind
		ok          bool
	}{
		{"", formatJSON, true},
		{"application/json", formatJSON, true},
		{"text/json; charset=utf-8", formatJSON, true},
		{"application/yaml", formatYAML, true},
		{"text/yaml", formatYAML, true},
		{"application/x-yaml", formatYAML, true},
		{"application/xml", 0, false},
		{"not a media type ;;;", 0, false},
	}
	for _, tt := range tests {
		got, ok := bodyFormat(tt.contentType)
		if ok != tt.ok || (ok && got != tt.want) {
			t.Errorf("bodyFormat(%q) = %v, %v; want %v, %v", tt.contentType, got, ok, tt.want, tt.ok)
		}
	}
}

func TestRouteKeyDerivation(t *testing.T) {
	mkReq := func(method, path, contentType string) *http.Request {
		req := httptest.NewRequest(method, path, nil)
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		return req
	}
	tests := []struct {
		name        string
		method      string
		path        string
		contentType string
		body        string
		want        string
	}{
		{
			name:   "json body namespace wins over path",
			method: "POST", path: "/api/v1/namespaces/urlns/pods", contentType: "application/json",
			body: `{"kind":"Pod","metadata":{"name":"p","namespace":"bodyns"}}`,
			want: "ns/bodyns",
		},
		{
			name:   "block yaml body namespace",
			method: "POST", path: "/api/v1/pods", contentType: "application/yaml",
			body: "kind: Pod\nmetadata:\n  name: p\n  namespace: yns\n",
			want: "ns/yns",
		},
		{
			name:   "flow yaml falls back to decode",
			method: "POST", path: "/api/v1/pods", contentType: "application/yaml",
			body: "kind: Pod\nmetadata: {name: p, namespace: flowns}\n",
			want: "ns/flowns",
		},
		{
			name:   "cluster-scoped body routes by kind",
			method: "POST", path: "/apis/rbac.authorization.k8s.io/v1/clusterroles", contentType: "application/json",
			body: `{"kind":"ClusterRole","metadata":{"name":"cr"}}`,
			want: "kind/ClusterRole",
		},
		{
			name:   "undecodable body uses path namespace",
			method: "POST", path: "/api/v1/namespaces/urlns/pods", contentType: "application/json",
			body: "{not json",
			want: "ns/urlns",
		},
		{
			name:   "uninspectable method uses path namespace",
			method: "DELETE", path: "/api/v1/namespaces/delns/pods/p", contentType: "",
			body: `{"kind":"Pod","metadata":{"namespace":"ignored"}}`,
			want: "ns/delns",
		},
		{
			name:   "no namespace anywhere falls back to path",
			method: "GET", path: "/healthz", contentType: "",
			want: "path//healthz",
		},
		{
			name:   "unsupported content type skips body inspection",
			method: "POST", path: "/api/v1/namespaces/xmlns/pods", contentType: "application/xml",
			body: `<pod/>`,
			want: "ns/xmlns",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			req := mkReq(tt.method, tt.path, tt.contentType)
			if got := routeKey(req, []byte(tt.body)); got != tt.want {
				t.Errorf("routeKey = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestDecodeObjectFormats(t *testing.T) {
	o, err := decodeObject([]byte(`{"kind":"Pod","metadata":{"name":"p"}}`), formatJSON)
	if err != nil || o.Kind() != "Pod" {
		t.Fatalf("decodeObject json = %v, %v", o, err)
	}
	o, err = decodeObject([]byte("kind: Pod\nmetadata:\n  name: p\n"), formatYAML)
	if err != nil || o.Kind() != "Pod" {
		t.Fatalf("decodeObject yaml = %v, %v", o, err)
	}
	if _, err := decodeObject([]byte("{broken"), formatJSON); err == nil {
		t.Error("decodeObject on broken JSON should fail")
	}
}

func TestPlaneErrorSurfaces(t *testing.T) {
	pl := newTestPlane(t, 2, Config{})
	if err := pl.SetMode("ghost", registry.ModeShadow); err == nil ||
		!strings.Contains(err.Error(), "not registered") {
		t.Errorf("SetMode(ghost) = %v, want not-registered error", err)
	}
	if _, err := pl.Owners("ghost"); err == nil {
		t.Error("Owners(ghost) should fail")
	}
	if err := pl.RegisterPinned("p", registry.Selector{},
		policyFor(t, "p", false, "docker.io/p:1"), 0); err == nil {
		t.Error("pinning a wildcard selector should fail")
	}
	if err := pl.Register("v", registry.Selector{}, nil); err == nil {
		t.Error("Register with nil validator should fail")
	}
	if err := pl.Register("far", registry.Selector{Namespace: "far"},
		policyFor(t, "far", false, "docker.io/f:1")); err != nil {
		t.Fatal(err)
	}
	if err := pl.Register("far", registry.Selector{Namespace: "far2"},
		policyFor(t, "far", false, "docker.io/f:1")); err == nil {
		t.Error("duplicate Register should fail")
	}
}
