package plane

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/registry"
	"repro/internal/telemetry"
)

// telemetryPlane builds a tier with telemetry on and a workload per
// namespace, so requests fan out across replica hubs.
func telemetryPlane(t *testing.T, replicas int, namespaces []string) *Plane {
	t.Helper()
	pl := newTestPlane(t, replicas, Config{
		Telemetry: &telemetry.Config{SampleEvery: 1},
	})
	for _, ns := range namespaces {
		if err := pl.Register("wl-"+ns, registry.Selector{Namespace: ns}, policyFor(t, "wl-"+ns, false, img)); err != nil {
			t.Fatalf("Register %s: %v", ns, err)
		}
	}
	return pl
}

func TestPlaneTelemetryMergedEqualsReplicaSum(t *testing.T) {
	namespaces := []string{"alpha", "beta", "gamma", "delta"}
	pl := telemetryPlane(t, 3, namespaces)
	const rounds = 25
	admitted := 0
	for i := 0; i < rounds; i++ {
		for _, ns := range namespaces {
			path := "/api/v1/namespaces/" + ns + "/pods"
			if w := post(t, pl, path, podBody(false, img)); w.Code != http.StatusOK {
				t.Fatalf("benign %s: code %d, body %s", ns, w.Code, w.Body)
			}
			if w := post(t, pl, path, podBody(true, img)); w.Code != http.StatusForbidden {
				t.Fatalf("attack %s: code %d, want 403", ns, w.Code)
			}
			admitted += 2
		}
	}

	// The tier rollup must equal the cell-by-cell sum over the replica
	// hubs plus the front door — the plane-level half of the merge
	// property the telemetry package proves hub-by-hub.
	merged := pl.Telemetry()
	var replicaSum, replicaTraced uint64
	perCell := map[[3]string]uint64{}
	for i := 0; ; i++ {
		hub := pl.ReplicaTelemetry(i)
		if hub == nil {
			break
		}
		snap := hub.Snapshot()
		replicaSum += snap.Decisions()
		replicaTraced += snap.Sampled
		for _, ws := range snap.Workloads {
			for _, c := range ws.Cells {
				perCell[[3]string{ws.Workload, c.Verdict, c.Path}] += c.Count
			}
		}
	}
	if replicaSum != uint64(admitted) {
		t.Errorf("replica hubs recorded %d decisions, want %d", replicaSum, admitted)
	}
	front := merged.Workload(FrontDoorWorkload)
	if front == nil {
		t.Fatal("merged snapshot has no front-door workload")
	}
	routed := front.Cell(telemetry.VerdictRouted.String(), telemetry.PathRaw.String())
	if routed == nil || routed.Count != uint64(admitted) {
		t.Fatalf("front door routed cell = %+v, want count %d", routed, admitted)
	}
	var frontTotal uint64
	for _, c := range front.Cells {
		frontTotal += c.Count
	}
	if got, want := merged.Decisions(), replicaSum+frontTotal; got != want {
		t.Errorf("merged decisions = %d, want replicas+front = %d", got, want)
	}
	for cell, want := range perCell {
		ws := merged.Workload(cell[0])
		if ws == nil {
			t.Fatalf("merged snapshot lost workload %s", cell[0])
		}
		c := ws.Cell(cell[1], cell[2])
		if c == nil || c.Count != want {
			t.Errorf("merged cell %v = %+v, want count %d", cell, c, want)
		}
	}

	// Sampling at 1/1 traces every replica decision; the tier view
	// surfaces them.
	if replicaTraced != uint64(admitted) {
		t.Errorf("replicas sampled %d traces, want %d", replicaTraced, admitted)
	}
	if len(pl.Traces()) == 0 {
		t.Error("tier trace view is empty despite 1/1 sampling")
	}
}

func TestPlaneTelemetrySurvivesRestart(t *testing.T) {
	pl := telemetryPlane(t, 1, []string{"alpha"})
	path := "/api/v1/namespaces/alpha/pods"
	if w := post(t, pl, path, podBody(false, img)); w.Code != http.StatusOK {
		t.Fatalf("pre-restart request: code %d", w.Code)
	}
	snap := pl.ReplicaTelemetry(0).Snapshot()
	before := snap.Decisions()
	if before == 0 {
		t.Fatal("no decisions recorded before restart")
	}
	if err := pl.Kill(0); err != nil {
		t.Fatal(err)
	}
	if err := pl.Restart(0); err != nil {
		t.Fatal(err)
	}
	if w := post(t, pl, path, podBody(false, img)); w.Code != http.StatusOK {
		t.Fatalf("post-restart request: code %d", w.Code)
	}
	// The hub is created once per replica slot, not per proxy boot:
	// counters span generations.
	after := pl.ReplicaTelemetry(0).Snapshot()
	if got := after.Decisions(); got != before+1 {
		t.Errorf("decisions after restart = %d, want %d", got, before+1)
	}
}

func TestPlaneHealthz(t *testing.T) {
	pl := telemetryPlane(t, 2, []string{"alpha"})
	get := func() (*httptest.ResponseRecorder, map[string]any) {
		t.Helper()
		req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
		w := httptest.NewRecorder()
		pl.ServeHTTP(w, req)
		var body map[string]any
		if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
			t.Fatalf("healthz body %q: %v", w.Body, err)
		}
		return w, body
	}
	w, body := get()
	if w.Code != http.StatusOK {
		t.Fatalf("healthz with active replicas: code %d", w.Code)
	}
	if body["status"] != "ok" {
		t.Errorf("healthz status = %v, want ok", body["status"])
	}
	// A health scrape is not admission traffic.
	if pl.Metrics().Requests != 0 {
		t.Errorf("healthz counted as admission: Requests = %d", pl.Metrics().Requests)
	}
	for i := 0; i < 2; i++ {
		if err := pl.Kill(i); err != nil {
			t.Fatal(err)
		}
	}
	if w, body = get(); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz with no active replicas: code %d, body %v", w.Code, body)
	}
}

func TestPlaneVarz(t *testing.T) {
	pl := telemetryPlane(t, 2, []string{"alpha"})
	if w := post(t, pl, "/api/v1/namespaces/alpha/pods", podBody(false, img)); w.Code != http.StatusOK {
		t.Fatalf("seed request: code %d", w.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/varz", nil)
	w := httptest.NewRecorder()
	pl.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("varz: code %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("varz content type %q", ct)
	}
	var body struct {
		Tier      json.RawMessage    `json:"tier"`
		Telemetry telemetry.Snapshot `json:"telemetry"`
		Traces    []telemetry.Trace  `json:"traces"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("varz body: %v", err)
	}
	if len(body.Tier) == 0 {
		t.Error("varz has no tier rollup")
	}
	if body.Telemetry.Decisions() == 0 {
		t.Error("varz telemetry snapshot is empty")
	}
	if len(body.Traces) == 0 {
		t.Error("varz has no traces despite 1/1 sampling")
	}
}
