package plane

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over the plane's active replicas.
// Shard keys (namespace or cluster-scoped kind, see routeKey) hash onto
// the ring and walk clockwise to the first virtual node; each replica
// contributes VirtualNodes points so removing a replica moves only the
// keys it owned, spread roughly evenly across the survivors — the
// "deterministic shard re-assignment on drain" contract. The ring is
// immutable once built: the control plane builds a fresh one under its
// lock and publishes it atomically to the data path.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash    uint64
	replica int
}

// buildRing places vnodes virtual nodes per replica. Replicas are the
// ACTIVE replica indices only — draining and down replicas own nothing.
func buildRing(replicas []int, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVirtualNodes
	}
	rg := &ring{points: make([]ringPoint, 0, len(replicas)*vnodes)}
	for _, idx := range replicas {
		for v := 0; v < vnodes; v++ {
			rg.points = append(rg.points, ringPoint{
				hash:    hashKey(fmt.Sprintf("replica-%d/vnode-%d", idx, v)),
				replica: idx,
			})
		}
	}
	sort.Slice(rg.points, func(i, j int) bool {
		if rg.points[i].hash != rg.points[j].hash {
			return rg.points[i].hash < rg.points[j].hash
		}
		// Identical 64-bit hashes are astronomically unlikely but must
		// still order deterministically across builds.
		return rg.points[i].replica < rg.points[j].replica
	})
	return rg
}

// lookup maps a shard key to its owning replica. ok is false when the
// ring is empty (every replica drained or down).
func (rg *ring) lookup(key string) (int, bool) {
	if len(rg.points) == 0 {
		return 0, false
	}
	h := hashKey(key)
	i := sort.Search(len(rg.points), func(i int) bool { return rg.points[i].hash >= h })
	if i == len(rg.points) {
		i = 0 // wrap: clockwise past the highest point lands on the first
	}
	return rg.points[i].replica, true
}

// hashKey hashes a shard key or virtual-node label onto the ring.
// Plain FNV-1a keeps near-identical strings ("…/vnode-17" vs
// "…/vnode-18") in one contiguous hash band, which would degenerate
// the ring into one giant arc per replica; the 64-bit avalanche
// finalizer spreads the bands so virtual nodes actually interleave.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
