// Package plane is the distributed admission tier: one http.Handler
// front door fronting N proxy replicas, each with its own policy
// registry, decision cache, and backpressure bound.
//
// Sharding. Workloads are distributed across replicas by consistent
// hashing over the shard keys their selector can be addressed by: a
// namespaced selector is owned by the replica that owns "ns/<namespace>"
// (plus "kind/<k>" for every cluster-scoped kind it claims), while
// kind-only and wildcard selectors are broadcast to every replica —
// requests route by namespace first, so a selector that matches any
// namespace must be present wherever a request can land, or the tier
// would fail closed on traffic the policy actually covers. Explicit
// pins (RegisterPinned) override both the routing table and ownership
// for a namespace. Requests are routed by the same key function, so a
// request always lands on a replica whose local registry holds every
// selector that could match it — per-replica resolution then applies
// the registry's usual specificity rules unchanged.
//
// Policy distribution. Register/Swap/Promote/Demote/SetMode are
// serialized under one control-plane lock and published to every owning
// replica before they return, reusing the registry's generation-pinned
// immutable snapshots: each replica-local Swap is atomic, and a replica
// that was down during a publish re-enters the ring only after a full
// resync (Restart), so a replica never serves policy state the control
// plane has not finished publishing. While a multi-replica publish is
// in flight, different owners of a broadcast workload may briefly serve
// different generations; that mixed-generation window is bounded by the
// publish completing and observable via TierMetrics.PublishesStarted vs
// PublishesCompleted.
//
// Fail-closed shedding. Per-replica backpressure (MaxInFlight +
// QueueTimeout) sheds overload with 429 and routes to dead replicas
// with 503 — a shed request is always an explicit denial-shaped
// response, never a silent allow.
package plane

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compile"
	"repro/internal/object"
	"repro/internal/proxy"
	"repro/internal/registry"
	"repro/internal/telemetry"
	"repro/internal/validator"
)

// defaultVirtualNodes is the per-replica virtual-node count when
// Config.VirtualNodes is zero: enough to spread a drained replica's
// keys roughly evenly across survivors at small replica counts.
const defaultVirtualNodes = 64

// ReplicaState is a replica's lifecycle state.
type ReplicaState int32

const (
	// ReplicaActive serves routed requests and owns ring shards.
	ReplicaActive ReplicaState = iota
	// ReplicaDraining serves already-routed requests but owns no ring
	// shards; its workloads have been re-assigned.
	ReplicaDraining
	// ReplicaDown sheds every request (503) until Restart resyncs it.
	ReplicaDown
)

// String names the state for metrics and logs.
func (s ReplicaState) String() string {
	switch s {
	case ReplicaActive:
		return "active"
	case ReplicaDraining:
		return "draining"
	case ReplicaDown:
		return "down"
	default:
		return fmt.Sprintf("ReplicaState(%d)", int32(s))
	}
}

// Config configures the admission tier.
type Config struct {
	// Replicas is the number of proxy replicas (required, >= 1).
	Replicas int
	// Upstream is the API server base URL shared by every replica.
	Upstream string
	// Transport carries requests upstream. Defaults to
	// http.DefaultTransport.
	Transport http.RoundTripper
	// CacheSize bounds each replica registry's per-workload decision
	// cache. Zero disables caching.
	CacheSize int
	// MaxInFlight bounds the requests concurrently admitted into one
	// replica; excess requests wait up to QueueTimeout for a slot and
	// are then shed with 429. Zero means unbounded.
	MaxInFlight int
	// QueueTimeout is how long a request may wait for a replica slot
	// before being shed. Zero sheds immediately when the replica is
	// saturated.
	QueueTimeout time.Duration
	// VirtualNodes is the consistent-hash virtual-node count per
	// replica (default 64).
	VirtualNodes int
	// ProxyUser is forwarded to every replica proxy (header-auth
	// identity asserted upstream).
	ProxyUser string
	// DisableRawFastPath forces every replica through the decode-first
	// path (ablation/debugging).
	DisableRawFastPath bool
	// Telemetry, when non-nil, equips every replica proxy with its own
	// telemetry hub plus a front-door hub for routing outcomes
	// (routed/shed/unavailable). Hubs are created once and survive
	// Restart, so counters span replica generations; Plane.Telemetry()
	// merges them into one tier snapshot.
	Telemetry *telemetry.Config
	// Placement selects the shard placement policy: PlacementHash (the
	// default) places shard keys by consistent hashing alone;
	// PlacementWeighted overlays load-aware assignment — Rebalance
	// migrates the heaviest keys (and their hot decision caches) off
	// overloaded replicas.
	Placement PlacementPolicy
	// RebalanceThreshold is the weighted placement's hysteresis band: a
	// rebalance only moves shards while the most loaded replica exceeds
	// the mean load by this fraction (default 0.2).
	RebalanceThreshold float64
	// RebalanceInterval, when > 0 on a weighted-placement tier, runs
	// Rebalance on a background ticker until Close.
	RebalanceInterval time.Duration
	// LoadSmoothing is the EWMA coefficient for per-workload load
	// scores (0 < alpha <= 1, default 0.5); higher weights the latest
	// epoch more.
	LoadSmoothing float64
}

// workloadState is the control plane's desired state for one workload —
// the source of truth replicas are resynced from after a restart.
type workloadState struct {
	selector  registry.Selector
	validator *validator.Validator
	mode      registry.Mode
	observer  registry.Observer
	// gen is the plane generation of the last completed publish; Promote
	// pins against it exactly like registry.Promote pins entry
	// generations.
	gen uint64
	// pin, when >= 0, forces ownership (and routing of the selector's
	// shard keys) to one replica.
	pin int
	// owners are the replica indices the workload is currently
	// published to.
	owners []int
}

// replica is one proxy instance plus its tier bookkeeping.
type replica struct {
	index int
	state atomic.Int32

	// proxy is read by the data path and replaced wholesale on Restart
	// (a restarted replica is a fresh process: new registry, new proxy).
	proxy atomic.Pointer[proxy.Proxy]
	// reg is the control plane's handle to the replica's registry; only
	// touched under Plane.mu.
	reg *registry.Registry
	// installed maps workload -> plane generation last published to
	// this replica. Control-plane bookkeeping, under Plane.mu.
	installed map[string]uint64

	// inflight is the backpressure semaphore (nil when unbounded).
	inflight chan struct{}

	// hub is the replica's telemetry recorder (nil when the tier runs
	// without telemetry). Created once; survives Restart so decision
	// counters span replica generations.
	hub *telemetry.Hub

	routed      atomic.Uint64
	shed        atomic.Uint64
	unavailable atomic.Uint64
}

// routeTable is the immutable routing snapshot the data path reads —
// rebuilt and atomically published by every topology or pin change so
// requests never take the control-plane lock.
type routeTable struct {
	ring *ring
	pins map[string]int
	// assign is the weighted placement overlay: shard keys explicitly
	// homed by the last rebalance. Resolution order is pins, then
	// assign, then the ring.
	assign map[string]int
}

// owner resolves a shard key to its replica: explicit pin first, then
// the weighted assignment, then consistent hashing. ok is false only
// when the ring is empty (every replica drained or down).
func (rt *routeTable) owner(key string) (int, bool) {
	if idx, ok := rt.pins[key]; ok {
		return idx, true
	}
	if idx, ok := rt.assign[key]; ok {
		return idx, true
	}
	return rt.ring.lookup(key)
}

// Plane is the distributed admission tier.
type Plane struct {
	cfg      Config
	replicas []*replica
	routes   atomic.Pointer[routeTable]

	// mu serializes every control-plane operation: registration, policy
	// publishes, mode transitions, and replica lifecycle. Publishes are
	// therefore linearizable — two Swaps can never interleave their
	// per-replica installs.
	mu        sync.Mutex
	workloads map[string]*workloadState
	pins      map[string]int
	gens      atomic.Uint64

	// assign and loads are the weighted placer's state: the committed
	// shard-key assignment and the per-workload EWMA bookkeeping. Both
	// under mu.
	assign map[string]int
	loads  map[string]loadState

	requests           atomic.Uint64
	shedTotal          atomic.Uint64
	unavailableTotal   atomic.Uint64
	publishesStarted   atomic.Uint64
	publishesCompleted atomic.Uint64
	resyncs            atomic.Uint64
	rebalances         atomic.Uint64
	migrations         atomic.Uint64
	handoffTotal       atomic.Uint64

	// rebalanceStop ends the periodic rebalancer (nil unless
	// Config.RebalanceInterval started one).
	rebalanceStop chan struct{}
	closeOnce     sync.Once

	// front records routing outcomes at the front door (nil when the
	// tier runs without telemetry).
	front *telemetry.Hub
}

// New builds the tier: Replicas proxy replicas, each with its own
// registry, all initially active and empty.
func New(cfg Config) (*Plane, error) {
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("plane: Config.Replicas must be >= 1 (got %d)", cfg.Replicas)
	}
	if cfg.Upstream == "" {
		return nil, fmt.Errorf("plane: Config.Upstream is required")
	}
	switch cfg.Placement {
	case "", PlacementHash, PlacementWeighted:
	default:
		return nil, fmt.Errorf("plane: unknown placement policy %q", cfg.Placement)
	}
	pl := &Plane{
		cfg:       cfg,
		workloads: map[string]*workloadState{},
		pins:      map[string]int{},
		assign:    map[string]int{},
		loads:     map[string]loadState{},
	}
	if cfg.Telemetry != nil {
		pl.front = telemetry.New(*cfg.Telemetry)
	}
	for i := 0; i < cfg.Replicas; i++ {
		rep := &replica{index: i, installed: map[string]uint64{}}
		if cfg.MaxInFlight > 0 {
			rep.inflight = make(chan struct{}, cfg.MaxInFlight)
		}
		if cfg.Telemetry != nil {
			rep.hub = telemetry.New(*cfg.Telemetry)
		}
		if err := pl.bootReplica(rep); err != nil {
			return nil, err
		}
		pl.replicas = append(pl.replicas, rep)
	}
	pl.publishRoutesLocked()
	if pl.placement() == PlacementWeighted && cfg.RebalanceInterval > 0 {
		pl.rebalanceStop = make(chan struct{})
		go pl.rebalanceLoop(cfg.RebalanceInterval)
	}
	return pl, nil
}

// bootReplica gives rep a fresh registry and proxy (initial boot and
// Restart both go through here — a restarted replica is a new process).
func (pl *Plane) bootReplica(rep *replica) error {
	reg := registry.New(registry.Config{CacheSize: pl.cfg.CacheSize})
	px, err := proxy.New(proxy.Config{
		Upstream:           pl.cfg.Upstream,
		Transport:          pl.cfg.Transport,
		Registry:           reg,
		ProxyUser:          pl.cfg.ProxyUser,
		DisableRawFastPath: pl.cfg.DisableRawFastPath,
		Telemetry:          rep.hub,
	})
	if err != nil {
		return err
	}
	rep.reg = reg
	rep.proxy.Store(px)
	rep.installed = map[string]uint64{}
	return nil
}

// activeIndices lists replicas eligible to own ring shards.
func (pl *Plane) activeIndices() []int {
	var out []int
	for _, rep := range pl.replicas {
		if ReplicaState(rep.state.Load()) == ReplicaActive {
			out = append(out, rep.index)
		}
	}
	return out
}

// publishRoutesLocked rebuilds the routing snapshot from the current
// ring membership, pins, and weighted assignments, and publishes it to
// the data path. Pins and assignments whose target replica is not
// active are omitted — routing falls back to the ring exactly like
// ownership does, so a pinned or weighted-placed workload keeps
// receiving (correctly re-homed) traffic while its replica is out.
// Caller holds pl.mu (or is inside New, before the plane escapes).
func (pl *Plane) publishRoutesLocked() {
	pins := make(map[string]int, len(pl.pins))
	for k, v := range pl.pins {
		if ReplicaState(pl.replicas[v].state.Load()) == ReplicaActive {
			pins[k] = v
		}
	}
	assign := make(map[string]int, len(pl.assign))
	for k, v := range pl.assign {
		if ReplicaState(pl.replicas[v].state.Load()) == ReplicaActive {
			assign[k] = v
		}
	}
	pl.routes.Store(&routeTable{
		ring:   buildRing(pl.activeIndices(), pl.cfg.VirtualNodes),
		pins:   pins,
		assign: assign,
	})
}

// Shard keys. Requests and selectors are addressed by the same key
// space so routing and ownership can never disagree: namespaced traffic
// by "ns/<namespace>", cluster-scoped traffic by "kind/<kind>", and
// unscannable bodies by a deterministic path fallback (any replica will
// fail closed on them identically).
func nsKey(namespace string) string { return "ns/" + namespace }
func kindKey(kind string) string    { return "kind/" + kind }

// shardKeys lists the keys a selector is addressed by. Empty means the
// selector is not shardable (matches any namespace) and must be
// broadcast to every replica.
func shardKeys(sel registry.Selector) []string {
	if sel.Namespace == "" {
		return nil
	}
	keys := []string{nsKey(sel.Namespace)}
	for _, k := range sel.ClusterKinds {
		keys = append(keys, kindKey(k))
	}
	return keys
}

// ownersLocked computes the replica set a workload must be published
// to under the current ring, pins, and weighted assignments.
func (pl *Plane) ownersLocked(ws *workloadState) []int {
	rt := pl.routes.Load()
	return ownersOn(rt.ring, pl.pins, pl.assign, ws, func(i int) ReplicaState {
		return ReplicaState(pl.replicas[i].state.Load())
	})
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Register adds a workload policy to the tier and publishes it to its
// owning replicas. The selector semantics are the registry's; a
// wildcard or kind-only selector is broadcast to every replica.
func (pl *Plane) Register(workload string, sel registry.Selector, v *validator.Validator) error {
	return pl.register(workload, sel, v, -1)
}

// RegisterPinned is Register with an explicit placement override: the
// workload (and the routing of its namespace and claimed cluster
// kinds) is pinned to one replica instead of consistent hashing.
// Pinning requires a namespaced selector — a selector that matches any
// namespace has no shard key to pin.
func (pl *Plane) RegisterPinned(workload string, sel registry.Selector, v *validator.Validator, replicaIndex int) error {
	if sel.Namespace == "" {
		return fmt.Errorf("plane: workload %s: pinning requires a namespaced selector", workload)
	}
	return pl.register(workload, sel, v, replicaIndex)
}

func (pl *Plane) register(workload string, sel registry.Selector, v *validator.Validator, pin int) error {
	if v == nil {
		return fmt.Errorf("plane: validator is required for workload %s", workload)
	}
	// Compile before touching any replica: a policy that does not
	// compile must leave the whole tier untouched.
	if _, err := compile.Compile(v); err != nil {
		return fmt.Errorf("plane: workload %s: %w", workload, err)
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if _, dup := pl.workloads[workload]; dup {
		return fmt.Errorf("plane: workload %s is already registered", workload)
	}
	if pin >= len(pl.replicas) {
		return fmt.Errorf("plane: workload %s: no replica %d (tier has %d)", workload, pin, len(pl.replicas))
	}
	// Cluster-scoped claims must be tier-unique for the same reason they
	// are registry-unique: no namespace disambiguates tenants. Checked
	// here because two workloads on different replicas would never meet
	// inside one registry.
	for _, kind := range sel.ClusterKinds {
		for w, ws := range pl.workloads {
			for _, claimed := range ws.selector.ClusterKinds {
				if kind == claimed {
					return fmt.Errorf("plane: cluster-scoped kind %s already claimed by workload %s", kind, w)
				}
			}
		}
	}
	if pin >= 0 {
		for _, key := range shardKeys(sel) {
			if other, ok := pl.pins[key]; ok && other != pin {
				return fmt.Errorf("plane: shard %s already pinned to replica %d", key, other)
			}
		}
	}
	ws := &workloadState{selector: sel, validator: v, mode: registry.ModeEnforce, pin: pin}
	pl.workloads[workload] = ws
	if pin >= 0 {
		for _, key := range shardKeys(sel) {
			pl.pins[key] = pin
		}
		pl.publishRoutesLocked()
	}
	return pl.publishLocked(workload, ws)
}

// RegisterLearning adds a workload with no policy in ModeLearn: its
// traffic is forwarded and fed to the observer on every owning replica.
func (pl *Plane) RegisterLearning(workload string, sel registry.Selector, obs registry.Observer) error {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if _, dup := pl.workloads[workload]; dup {
		return fmt.Errorf("plane: workload %s is already registered", workload)
	}
	ws := &workloadState{selector: sel, mode: registry.ModeLearn, observer: obs, pin: -1}
	pl.workloads[workload] = ws
	return pl.publishLocked(workload, ws)
}

// Swap atomically replaces a workload's policy tier-wide: compiled
// once up front, then published to every owning replica under the
// control-plane lock. Each replica's local swap is an atomic snapshot
// publish; when Swap returns, every owner serves the new generation.
// Returns registry.ErrUnknownWorkload for a workload the tier has
// never seen.
func (pl *Plane) Swap(workload string, v *validator.Validator) error {
	if v == nil {
		return fmt.Errorf("plane: validator is required for workload %s", workload)
	}
	if _, err := compile.Compile(v); err != nil {
		return fmt.Errorf("plane: workload %s: %w", workload, err)
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	ws, ok := pl.workloads[workload]
	if !ok {
		return fmt.Errorf("%w: %s is not registered with the plane", registry.ErrUnknownWorkload, workload)
	}
	ws.validator = v
	return pl.publishLocked(workload, ws)
}

// publishLocked pushes a workload's desired state to its distribution
// set: the current owners (who receive traffic) plus every live
// replica still HOLDING a copy from an earlier topology. Holders are
// kept current rather than deregistered — a request routed an instant
// before a shard moved must still resolve to the same generation on
// the old replica, so live copies are only ever dropped by a process
// restart (which resyncs from scratch) or an explicit Deregister. A
// down replica takes no publishes; Restart resyncs it from desired
// state before it serves again. Caller holds pl.mu.
func (pl *Plane) publishLocked(workload string, ws *workloadState) error {
	pl.publishesStarted.Add(1)
	defer pl.publishesCompleted.Add(1)
	gen := pl.gens.Add(1)
	owners := pl.ownersLocked(ws)
	var firstErr error
	for _, rep := range pl.replicas {
		if ReplicaState(rep.state.Load()) == ReplicaDown {
			continue
		}
		_, holds := rep.installed[workload]
		if !holds && !containsInt(owners, rep.index) {
			continue
		}
		if err := pl.installLocked(rep, workload, ws, gen); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("plane: replica %d: %w", rep.index, err)
		}
	}
	if firstErr == nil {
		ws.gen = gen
		ws.owners = owners
	}
	return firstErr
}

// installLocked makes one replica's registry match the desired state of
// one workload. The registry's typed sentinels drive the reconcile: an
// ErrUnknownWorkload from Swap means the replica lost the entry
// (restarted process) and the install falls back to Register; any other
// error is reported to the caller. Caller holds pl.mu.
func (pl *Plane) installLocked(rep *replica, workload string, ws *workloadState, gen uint64) error {
	if ws.validator == nil {
		// Learn-mode workload: no policy to swap, just ensure presence.
		if _, had := rep.installed[workload]; !had {
			if _, err := rep.reg.RegisterLearning(workload, ws.selector, ws.observer); err != nil {
				return err
			}
		}
	} else if _, had := rep.installed[workload]; had {
		if err := rep.reg.Swap(workload, ws.validator); err != nil {
			if !errors.Is(err, registry.ErrUnknownWorkload) {
				return err
			}
			if _, err := rep.reg.Register(workload, ws.selector, ws.validator); err != nil {
				return err
			}
		}
	} else {
		if _, err := rep.reg.Register(workload, ws.selector, ws.validator); err != nil {
			return err
		}
	}
	if err := rep.reg.SetMode(workload, ws.mode); err != nil {
		return err
	}
	if ws.observer != nil {
		if err := rep.reg.SetObserver(workload, ws.observer); err != nil {
			return err
		}
	}
	rep.installed[workload] = gen
	return nil
}

// SetMode sets a workload's enforcement mode on every owning replica —
// the operator override, mirroring Registry.SetMode.
func (pl *Plane) SetMode(workload string, m registry.Mode) error {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	ws, ok := pl.workloads[workload]
	if !ok {
		return fmt.Errorf("%w: %s is not registered with the plane", registry.ErrUnknownWorkload, workload)
	}
	ws.mode = m
	var firstErr error
	for _, rep := range pl.holders(workload) {
		if err := rep.reg.SetMode(workload, m); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// holders lists the live replicas that hold a copy of a workload — the
// set mode transitions and promotions must reach (a superset of the
// routing owners; see publishLocked). Caller holds pl.mu.
func (pl *Plane) holders(workload string) []*replica {
	var out []*replica
	for _, rep := range pl.replicas {
		if ReplicaState(rep.state.Load()) == ReplicaDown {
			continue
		}
		if _, holds := rep.installed[workload]; holds {
			out = append(out, rep)
		}
	}
	return out
}

// Promote switches a shadowing workload to enforce tier-wide, pinned to
// the plane generation the caller's shadow gate evaluated — the
// distributed analogue of Registry.Promote. The sentinel contract is
// the registry's: ErrUnknownWorkload and ErrNotShadowing are permanent,
// ErrStaleGeneration means a Swap won the race and the caller should
// re-gate against the new generation.
func (pl *Plane) Promote(workload string, gen uint64) error {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	ws, ok := pl.workloads[workload]
	if !ok {
		return fmt.Errorf("%w: %s is not registered with the plane", registry.ErrUnknownWorkload, workload)
	}
	if ws.mode != registry.ModeShadow {
		return fmt.Errorf("%w (workload %s: mode %s)", registry.ErrNotShadowing, workload, ws.mode)
	}
	if ws.gen != gen {
		return fmt.Errorf("%w (workload %s: gated plane generation %d, current %d)",
			registry.ErrStaleGeneration, workload, gen, ws.gen)
	}
	// Holders promote against their own local entry generation: the
	// control-plane lock serializes this against every Swap, so the
	// local generation observed here is exactly the one the plane
	// generation above published.
	for _, rep := range pl.holders(workload) {
		e, ok := rep.reg.Entry(workload)
		if !ok {
			continue
		}
		if err := rep.reg.Promote(workload, e.Generation()); err != nil {
			return fmt.Errorf("plane: replica %d: %w", rep.index, err)
		}
	}
	ws.mode = registry.ModeEnforce
	return nil
}

// Demote drops an enforcing workload back to shadow tier-wide.
func (pl *Plane) Demote(workload string) error {
	return pl.SetMode(workload, registry.ModeShadow)
}

// Deregister removes a workload from the tier and every replica. It
// reports whether the workload was registered.
func (pl *Plane) Deregister(workload string) bool {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	ws, ok := pl.workloads[workload]
	if !ok {
		return false
	}
	for _, rep := range pl.replicas {
		if _, had := rep.installed[workload]; had {
			rep.reg.Deregister(workload)
			delete(rep.installed, workload)
		}
	}
	if ws.pin >= 0 {
		for _, key := range shardKeys(ws.selector) {
			delete(pl.pins, key)
		}
		pl.publishRoutesLocked()
	}
	delete(pl.workloads, workload)
	return true
}

// Generation reports the plane generation of a workload's last
// completed publish — the value Promote pins against.
func (pl *Plane) Generation(workload string) (uint64, error) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	ws, ok := pl.workloads[workload]
	if !ok {
		return 0, fmt.Errorf("%w: %s is not registered with the plane", registry.ErrUnknownWorkload, workload)
	}
	return ws.gen, nil
}

// Mode reports a workload's tier-wide enforcement mode.
func (pl *Plane) Mode(workload string) (registry.Mode, error) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	ws, ok := pl.workloads[workload]
	if !ok {
		return 0, fmt.Errorf("%w: %s is not registered with the plane", registry.ErrUnknownWorkload, workload)
	}
	return ws.mode, nil
}

// Owners reports the replica indices currently serving a workload.
func (pl *Plane) Owners(workload string) ([]int, error) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	ws, ok := pl.workloads[workload]
	if !ok {
		return nil, fmt.Errorf("%w: %s is not registered with the plane", registry.ErrUnknownWorkload, workload)
	}
	return append([]int(nil), ws.owners...), nil
}

// Workloads lists the tier's registered workloads.
func (pl *Plane) Workloads() []string {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	out := make([]string, 0, len(pl.workloads))
	for w := range pl.workloads {
		out = append(out, w)
	}
	return out
}

// Replicas reports the configured replica count.
func (pl *Plane) Replicas() int { return len(pl.replicas) }

// State reports one replica's lifecycle state.
func (pl *Plane) State(replicaIndex int) (ReplicaState, error) {
	if replicaIndex < 0 || replicaIndex >= len(pl.replicas) {
		return 0, fmt.Errorf("plane: no replica %d", replicaIndex)
	}
	return ReplicaState(pl.replicas[replicaIndex].state.Load()), nil
}

// rebalanceLocked reconciles the whole tier with the CURRENT replica
// states after a topology change: ownership is recomputed on the
// future ring, every owner and live holder is brought to the current
// generation, and only then is the new route table published — a
// request can never be routed to a replica that does not yet hold the
// current copy of every policy that can match it. Replicas already at
// the workload's published generation are skipped, so an unchanged
// shard costs nothing. Caller holds pl.mu.
func (pl *Plane) rebalanceLocked() error {
	// Weighted assignments whose replica left the active set fall back
	// to hashed placement until the next weighted rebalance re-places
	// them by load.
	for key, idx := range pl.assign {
		if ReplicaState(pl.replicas[idx].state.Load()) != ReplicaActive {
			delete(pl.assign, key)
		}
	}
	future := buildRing(pl.activeIndices(), pl.cfg.VirtualNodes)
	stateOf := func(i int) ReplicaState {
		return ReplicaState(pl.replicas[i].state.Load())
	}
	var firstErr error
	for w, ws := range pl.workloads {
		owners := ownersOn(future, pl.pins, pl.assign, ws, stateOf)
		prev := ws.owners
		for _, rep := range pl.replicas {
			if ReplicaState(rep.state.Load()) == ReplicaDown {
				continue
			}
			gen, holds := rep.installed[w]
			if holds && gen == ws.gen {
				continue // already serving exactly the published state
			}
			if !holds && !containsInt(owners, rep.index) {
				continue
			}
			if err := pl.installLocked(rep, w, ws, ws.gen); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("plane: replica %d: %w", rep.index, err)
			}
		}
		// A replica gaining this workload inherits the hot decision set
		// from a live previous owner (drain handoff; a killed source has
		// nothing left to export) — installed above, primed here, and
		// only then routed to by the table published below.
		for _, idx := range owners {
			if containsInt(prev, idx) {
				continue
			}
			for _, old := range prev {
				if n := pl.handoffLocked(old, pl.replicas[idx], w, ws); n > 0 {
					pl.handoffTotal.Add(uint64(n))
					break
				}
			}
		}
		ws.owners = owners
	}
	pl.publishRoutesLocked()
	return firstErr
}

// Drain gracefully removes a replica from the ring: its shards are
// deterministically re-assigned (the new owners are installed before
// the routing flips), and requests routed just before the flip keep
// resolving against its retained — and still swap-updated — copies.
func (pl *Plane) Drain(replicaIndex int) error {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if replicaIndex < 0 || replicaIndex >= len(pl.replicas) {
		return fmt.Errorf("plane: no replica %d", replicaIndex)
	}
	pl.replicas[replicaIndex].state.Store(int32(ReplicaDraining))
	return pl.rebalanceLocked()
}

// Kill marks a replica dead — the abrupt path (crash, health-check
// failure). Requests already routed to it shed with 503; its shards are
// re-assigned to the survivors; its in-memory policy state is
// considered lost (a restart resyncs from the control plane's desired
// state, it does not trust the corpse).
func (pl *Plane) Kill(replicaIndex int) error {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if replicaIndex < 0 || replicaIndex >= len(pl.replicas) {
		return fmt.Errorf("plane: no replica %d", replicaIndex)
	}
	rep := pl.replicas[replicaIndex]
	rep.state.Store(int32(ReplicaDown))
	rep.installed = map[string]uint64{}
	return pl.rebalanceLocked()
}

// Restart brings a drained or dead replica back: it boots a FRESH
// registry and proxy (a restarted process remembers nothing) and
// resyncs from the control plane's desired state before the route
// table includes it — a rejoining replica can never serve a request
// before it holds the current generation of every policy it owns. The
// old route table keeps routing around the replica (and its state is
// Down) until the resync completes, so mid-resync requests shed
// rather than hit a partially-populated registry.
func (pl *Plane) Restart(replicaIndex int) error {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if replicaIndex < 0 || replicaIndex >= len(pl.replicas) {
		return fmt.Errorf("plane: no replica %d", replicaIndex)
	}
	rep := pl.replicas[replicaIndex]
	// Kill semantics (shed everything) hold while the fresh registry is
	// repopulated by the rebalance below.
	rep.state.Store(int32(ReplicaDown))
	if err := pl.bootReplica(rep); err != nil {
		return err
	}
	pl.resyncs.Add(1)
	rep.state.Store(int32(ReplicaActive))
	return pl.rebalanceLocked()
}

// ownersOn is the ownership function over an explicit ring and state
// view, shared by live publishes (ownersLocked) and the future-topology
// computation during resync. Pins and weighted assignments only bind
// while their replica is active; otherwise the shard falls back to
// hashed placement, matching publishRoutesLocked's filtered routing.
// Resolution order is the data path's: pin, then assignment, then ring.
func ownersOn(rg *ring, pins, assign map[string]int, ws *workloadState, stateOf func(int) ReplicaState) []int {
	if ws.pin >= 0 && stateOf(ws.pin) == ReplicaActive {
		return []int{ws.pin}
	}
	keys := shardKeys(ws.selector)
	if keys == nil {
		// Broadcast: every replica the ring knows about. Derive the
		// active set from the ring's points.
		var owners []int
		for _, p := range rg.points {
			if !containsInt(owners, p.replica) {
				owners = append(owners, p.replica)
			}
		}
		return owners
	}
	var owners []int
	for _, key := range keys {
		idx, ok := rg.lookup(key)
		if !ok {
			continue
		}
		if assigned, ok := assign[key]; ok && stateOf(assigned) == ReplicaActive {
			idx = assigned
		}
		if pinned, ok := pins[key]; ok && stateOf(pinned) == ReplicaActive {
			idx = pinned
		}
		if !containsInt(owners, idx) {
			owners = append(owners, idx)
		}
	}
	return owners
}

// --- data path ---------------------------------------------------------

// maxInspectBytes mirrors the proxy's inspection bound; the front door
// must not buffer more than a replica would accept.
const maxInspectBytes = 4 << 20

var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledBody = 256 << 10

func putBody(buf *bytes.Buffer) {
	if buf != nil && buf.Cap() <= maxPooledBody {
		bodyPool.Put(buf)
	}
}

// ServeHTTP is the tier's front door: derive the shard key, pick the
// owning replica, apply its backpressure bound, and hand the request to
// its proxy. Every failure mode is an explicit denial-shaped response —
// unreadable body 400, saturated replica 429, dead or missing replica
// 503 — never a silent allow.
func (pl *Plane) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Observability endpoints ride the front door so replica state is
	// visible without linking the Go API; they are answered before the
	// request counter and body read (a scrape is not admission traffic).
	if r.Method == http.MethodGet {
		switch r.URL.Path {
		case "/healthz":
			pl.serveHealthz(w)
			return
		case "/varz":
			pl.serveVarz(w)
			return
		}
	}
	pl.requests.Add(1)
	var start time.Time
	if pl.front != nil {
		start = time.Now()
	}

	var body []byte
	var buf *bytes.Buffer
	if r.Body != nil {
		buf = bodyPool.Get().(*bytes.Buffer)
		buf.Reset()
		if _, err := buf.ReadFrom(io.LimitReader(r.Body, maxInspectBytes+1)); err != nil {
			putBody(buf)
			pl.writeStatus(w, http.StatusBadRequest, "KubeFenceRequestRejected",
				"request body could not be read: "+err.Error())
			return
		}
		r.Body.Close()
		body = buf.Bytes()
	}
	defer putBody(buf)

	key := routeKey(r, body)
	rt := pl.routes.Load()
	idx, ok := rt.owner(key)
	if !ok {
		pl.unavailableTotal.Add(1)
		pl.recordFront(telemetry.VerdictUnavailable, start)
		pl.writeStatus(w, http.StatusServiceUnavailable, "KubeFenceReplicaUnavailable",
			"no active admission replica for this request")
		return
	}
	rep := pl.replicas[idx]
	if ReplicaState(rep.state.Load()) == ReplicaDown {
		rep.unavailable.Add(1)
		pl.unavailableTotal.Add(1)
		pl.recordFront(telemetry.VerdictUnavailable, start)
		pl.writeStatus(w, http.StatusServiceUnavailable, "KubeFenceReplicaUnavailable",
			fmt.Sprintf("admission replica %d is down", idx))
		return
	}

	if rep.inflight != nil {
		if !rep.acquire(pl.cfg.QueueTimeout) {
			rep.shed.Add(1)
			pl.shedTotal.Add(1)
			pl.recordFront(telemetry.VerdictShed, start)
			pl.writeStatus(w, http.StatusTooManyRequests, "KubeFenceTierOverloaded",
				fmt.Sprintf("admission replica %d is saturated", idx))
			return
		}
		defer rep.release()
	}

	px := rep.proxy.Load()
	if px == nil {
		rep.unavailable.Add(1)
		pl.unavailableTotal.Add(1)
		pl.recordFront(telemetry.VerdictUnavailable, start)
		pl.writeStatus(w, http.StatusServiceUnavailable, "KubeFenceReplicaUnavailable",
			fmt.Sprintf("admission replica %d is restarting", idx))
		return
	}
	rep.routed.Add(1)
	// The front-door record covers routing overhead only; the replica's
	// own hub times the admission decision itself.
	pl.recordFront(telemetry.VerdictRouted, start)
	if body != nil {
		r.Body = io.NopCloser(bytes.NewReader(body))
	}
	px.ServeHTTP(w, r)
}

// FrontDoorWorkload is the telemetry workload label the front door
// records its routing outcomes under.
const FrontDoorWorkload = "_frontdoor"

// recordFront records one routing outcome on the front-door hub; a
// no-op when the tier runs without telemetry.
func (pl *Plane) recordFront(v telemetry.Verdict, start time.Time) {
	if pl.front != nil {
		pl.front.RecordDecision(FrontDoorWorkload, v, telemetry.PathRaw, time.Since(start))
	}
}

// serveHealthz reports liveness as seen by the router: 200 while at
// least one replica is active (the tier can admit), 503 otherwise —
// with the per-state replica counts either way, so a drained or killed
// replica is visible to a probe without the Go API.
func (pl *Plane) serveHealthz(w http.ResponseWriter) {
	counts := map[string]int{}
	for _, rep := range pl.replicas {
		counts[ReplicaState(rep.state.Load()).String()]++
	}
	code := http.StatusOK
	status := "ok"
	if counts["active"] == 0 {
		code = http.StatusServiceUnavailable
		status = "no active replicas"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(map[string]any{"status": status, "replicas": counts})
}

// serveVarz serves the full tier rollup as JSON: TierMetrics (replica
// states, front-door accounting, summed proxy counters), the merged
// telemetry snapshot, and the sampled traces when telemetry is on.
func (pl *Plane) serveVarz(w http.ResponseWriter) {
	out := map[string]any{"tier": pl.Metrics()}
	if pl.front != nil {
		out["telemetry"] = pl.Telemetry()
		out["traces"] = pl.Traces()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

// acquire takes a backpressure slot, waiting up to timeout.
func (rep *replica) acquire(timeout time.Duration) bool {
	select {
	case rep.inflight <- struct{}{}:
		return true
	default:
	}
	if timeout <= 0 {
		return false
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case rep.inflight <- struct{}{}:
		return true
	case <-t.C:
		return false
	}
}

func (rep *replica) release() { <-rep.inflight }

// routeKey derives the shard key of a request, preferring the body's
// own namespace (the field per-replica resolution will use) over the
// URL path's, then the body kind for cluster-scoped objects. Bodies the
// streaming scanners cannot read fall back to a full decode — the same
// fallback the replica's resolution takes, so routing and resolution
// always see the same (namespace, kind). Truly undecodable bodies get
// a deterministic path key; every replica fails closed on those
// identically, the key only needs to be stable.
func routeKey(r *http.Request, body []byte) string {
	if inspectable(r.Method) && len(body) > 0 {
		if format, ok := bodyFormat(r.Header.Get("Content-Type")); ok {
			var meta compile.RawMeta
			var scanned bool
			if format == formatYAML {
				meta, scanned = compile.ScanRawYAMLMeta(body)
			} else {
				meta, scanned = compile.ScanRawMeta(body)
			}
			namespace, kind := string(meta.Namespace), string(meta.Kind)
			if !scanned {
				if obj, err := decodeObject(body, format); err == nil {
					namespace, kind = obj.Namespace(), obj.Kind()
				}
			}
			if namespace != "" {
				return nsKey(namespace)
			}
			if ns := requestNamespace(r.URL.Path); ns != "" {
				return nsKey(ns)
			}
			if kind != "" {
				return kindKey(kind)
			}
		}
	}
	if ns := requestNamespace(r.URL.Path); ns != "" {
		return nsKey(ns)
	}
	return "path/" + r.URL.Path
}

// writeStatus writes a Kubernetes Status-shaped failure so shed
// responses are machine-distinguishable from policy denials (which the
// replicas emit themselves with reason KubeFencePolicyViolation).
func (pl *Plane) writeStatus(w http.ResponseWriter, code int, reason, message string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, `{"kind":"Status","apiVersion":"v1","status":"Failure","message":%q,"reason":%q,"code":%d}`+"\n",
		message, reason, code)
}

// requestNamespace mirrors the proxy's path-namespace extraction
// ("/api/v1/namespaces/{ns}/..."), so the front door and the replica
// resolve the same namespace for the same request.
func requestNamespace(path string) string {
	const tok = "/namespaces/"
	i := strings.Index(path, tok)
	if i < 0 {
		return ""
	}
	ns := path[i+len(tok):]
	if j := strings.IndexByte(ns, '/'); j >= 0 {
		ns = ns[:j]
	}
	return ns
}

func inspectable(method string) bool {
	switch method {
	case http.MethodPost, http.MethodPut, http.MethodPatch:
		return true
	}
	return false
}

type bodyFormatKind int

const (
	formatJSON bodyFormatKind = iota
	formatYAML
)

// bodyFormat is the proxy's classification, applied here only to pick
// which scanner to try for ROUTING; the replica re-classifies (and
// fail-closes on unsupported types) itself.
func bodyFormat(contentType string) (bodyFormatKind, bool) {
	if contentType == "" {
		return formatJSON, true
	}
	mediaType, _, err := mime.ParseMediaType(contentType)
	if err != nil {
		return 0, false
	}
	switch mediaType {
	case "application/json", "text/json":
		return formatJSON, true
	case "application/yaml", "text/yaml", "application/x-yaml":
		return formatYAML, true
	}
	return 0, false
}

// decodeObject mirrors the replica's decode fallback for routing.
func decodeObject(body []byte, format bodyFormatKind) (object.Object, error) {
	if format == formatYAML {
		return object.ParseManifest(body)
	}
	return object.ParseJSON(body)
}

// --- metrics -----------------------------------------------------------

// ReplicaMetrics is one replica's rollup.
type ReplicaMetrics struct {
	Index int    `json:"index"`
	State string `json:"state"`
	// Routed counts requests handed to this replica's proxy; Shed and
	// Unavailable count requests refused at the front door on its
	// behalf (429 and 503 respectively).
	Routed      uint64 `json:"routed"`
	Shed        uint64 `json:"shed"`
	Unavailable uint64 `json:"unavailable"`
	// Workloads is the number of policies currently installed.
	Workloads int `json:"workloads"`
	// AssignedShards and LoadScore describe placement: how many shard
	// keys currently route to this replica and the EWMA load score they
	// carry (pinned shards are placed by fiat and not scored).
	AssignedShards int           `json:"assigned_shards"`
	LoadScore      float64       `json:"load_score"`
	Proxy          proxy.Metrics `json:"proxy"`
}

// TierMetrics is the tier-level rollup: front-door accounting,
// per-replica detail, and the summed proxy counters.
type TierMetrics struct {
	Requests    uint64 `json:"requests"`
	Shed        uint64 `json:"shed"`
	Unavailable uint64 `json:"unavailable"`
	// PublishesStarted / PublishesCompleted bound the mixed-generation
	// window: equal values mean every replica serves the generation its
	// last completed publish installed.
	PublishesStarted   uint64 `json:"publishes_started"`
	PublishesCompleted uint64 `json:"publishes_completed"`
	Resyncs            uint64 `json:"resyncs"`
	// Generations maps each workload to the plane generation of its
	// last completed publish.
	Generations map[string]uint64 `json:"generations"`
	// Placement names the shard placement policy; Rebalances counts
	// rebalance epochs, ShardMigrations the shard keys they moved, and
	// HandoffEntries the cached decisions that travelled with migrating
	// shards (rebalances and drains both).
	Placement       string           `json:"placement"`
	Rebalances      uint64           `json:"rebalances"`
	ShardMigrations uint64           `json:"shard_migrations"`
	HandoffEntries  uint64           `json:"handoff_entries"`
	Replicas        []ReplicaMetrics `json:"replicas"`
	// Proxy sums the per-replica proxy counters.
	Proxy proxy.Metrics `json:"proxy"`
}

// Metrics snapshots the tier.
func (pl *Plane) Metrics() TierMetrics {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	tm := TierMetrics{
		Requests:           pl.requests.Load(),
		Shed:               pl.shedTotal.Load(),
		Unavailable:        pl.unavailableTotal.Load(),
		PublishesStarted:   pl.publishesStarted.Load(),
		PublishesCompleted: pl.publishesCompleted.Load(),
		Resyncs:            pl.resyncs.Load(),
		Generations:        make(map[string]uint64, len(pl.workloads)),
		Placement:          string(pl.placement()),
		Rebalances:         pl.rebalances.Load(),
		ShardMigrations:    pl.migrations.Load(),
		HandoffEntries:     pl.handoffTotal.Load(),
	}
	for w, ws := range pl.workloads {
		tm.Generations[w] = ws.gen
	}
	// Per-replica placement detail: fold a read-only score preview onto
	// shard keys and resolve each key against the live route table.
	scores := pl.loadScoresLocked(false)
	rt := pl.routes.Load()
	shardsBy := make(map[int]int, len(pl.replicas))
	loadBy := make(map[int]float64, len(pl.replicas))
	for _, kl := range pl.keyLoadsLocked(scores) {
		idx, ok := rt.owner(kl.key)
		if !ok {
			continue
		}
		shardsBy[idx]++
		loadBy[idx] += kl.score
	}
	for _, rep := range pl.replicas {
		rm := ReplicaMetrics{
			Index:          rep.index,
			State:          ReplicaState(rep.state.Load()).String(),
			Routed:         rep.routed.Load(),
			Shed:           rep.shed.Load(),
			Unavailable:    rep.unavailable.Load(),
			Workloads:      len(rep.installed),
			AssignedShards: shardsBy[rep.index],
			LoadScore:      loadBy[rep.index],
		}
		if px := rep.proxy.Load(); px != nil {
			rm.Proxy = px.Metrics()
		}
		tm.Replicas = append(tm.Replicas, rm)
		tm.Proxy.Requests += rm.Proxy.Requests
		tm.Proxy.Inspected += rm.Proxy.Inspected
		tm.Proxy.Denied += rm.Proxy.Denied
		tm.Proxy.Shadowed += rm.Proxy.Shadowed
		tm.Proxy.RawAllowed += rm.Proxy.RawAllowed
		tm.Proxy.RawDenied += rm.Proxy.RawDenied
		tm.Proxy.ValidationTime += rm.Proxy.ValidationTime
	}
	return tm
}

// Telemetry merges the front-door hub and every replica hub into one
// tier snapshot: each (workload, verdict, path) cell's counters and
// histogram buckets are the sums across replicas (telemetry.Merge), so
// tier-level quantiles derive from the same bucket math as a single
// proxy's. Zero-valued when the tier runs without telemetry.
func (pl *Plane) Telemetry() telemetry.Snapshot {
	if pl.front == nil {
		return telemetry.Snapshot{}
	}
	snaps := make([]telemetry.Snapshot, 0, len(pl.replicas)+1)
	snaps = append(snaps, pl.front.Snapshot())
	for _, rep := range pl.replicas {
		snaps = append(snaps, rep.hub.Snapshot())
	}
	return telemetry.Merge(snaps...)
}

// ReplicaTelemetry returns replica i's telemetry hub (nil when out of
// range or when the tier runs without telemetry) — per-replica
// snapshots let an operator see which replica a tier-level anomaly
// lives on.
func (pl *Plane) ReplicaTelemetry(i int) *telemetry.Hub {
	if i < 0 || i >= len(pl.replicas) {
		return nil
	}
	return pl.replicas[i].hub
}

// Traces returns the sampled decision traces across the tier: every
// replica's ring followed by the front door's routing records.
func (pl *Plane) Traces() []telemetry.Trace {
	var out []telemetry.Trace
	for _, rep := range pl.replicas {
		out = append(out, rep.hub.Traces()...)
	}
	if pl.front != nil {
		out = append(out, pl.front.Traces()...)
	}
	return out
}
