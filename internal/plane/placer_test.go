package plane

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/registry"
)

// --- planner units -----------------------------------------------------

func TestPlanWeightedBalancesSkew(t *testing.T) {
	active := []int{0, 1}
	rg := buildRing(active, 8)
	// One hot key plus seven cold ones, all currently crowded onto
	// replica 0.
	keys := []keyLoad{{key: "ns/hot", score: 100}}
	current := map[string]int{"ns/hot": 0}
	for _, k := range []string{"a", "b", "c", "d", "e", "f", "g"} {
		keys = append(keys, keyLoad{key: "ns/" + k, score: 10})
		current["ns/"+k] = 0
	}
	plan := planWeighted(keys, active, current, rg, 0.2)
	if len(plan.moves) == 0 {
		t.Fatal("skewed start planned zero moves")
	}
	if plan.imbalanceAfter >= plan.imbalanceBefore {
		t.Errorf("imbalance did not improve: before %.3f, after %.3f",
			plan.imbalanceBefore, plan.imbalanceAfter)
	}
	// The hot key alone exceeds the mean (100 > 85*1.2 is false: mean
	// is 85, limit 102) — after rebalance every replica must be within
	// the hysteresis band.
	loads := map[int]float64{}
	for _, kl := range keys {
		loads[plan.assign[kl.key]] += kl.score
	}
	mean := 170.0 / 2
	for idx, l := range loads {
		if l > mean*1.2+1e-9 {
			t.Errorf("replica %d load %.1f exceeds limit %.1f after rebalance", idx, l, mean*1.2)
		}
	}
	// Deterministic: identical inputs produce identical plans.
	again := planWeighted(keys, active, current, rg, 0.2)
	if !reflect.DeepEqual(plan.assign, again.assign) || !reflect.DeepEqual(plan.moves, again.moves) {
		t.Error("planWeighted is not deterministic on identical inputs")
	}
}

func TestPlanWeightedHysteresisHoldsBalancedTier(t *testing.T) {
	active := []int{0, 1}
	rg := buildRing(active, 8)
	keys := []keyLoad{
		{key: "ns/a", score: 10}, {key: "ns/b", score: 10},
		{key: "ns/c", score: 10}, {key: "ns/d", score: 10},
	}
	current := map[string]int{"ns/a": 0, "ns/b": 0, "ns/c": 1, "ns/d": 1}
	plan := planWeighted(keys, active, current, rg, 0.2)
	if len(plan.moves) != 0 {
		t.Errorf("balanced tier planned %d moves, want 0 (hysteresis)", len(plan.moves))
	}
	// Mild imbalance inside the band must also hold still: 21 vs 19 is
	// max/mean 1.05 < 1.2.
	keys[0].score = 11
	keys[2].score = 9
	if plan := planWeighted(keys, active, current, rg, 0.2); len(plan.moves) != 0 {
		t.Errorf("in-band imbalance planned %d moves, want 0", len(plan.moves))
	}
}

func TestPlanWeightedSingleHotKeyCannotSplit(t *testing.T) {
	active := []int{0, 1, 2}
	rg := buildRing(active, 8)
	keys := []keyLoad{{key: "ns/hot", score: 1000}}
	plan := planWeighted(keys, active, map[string]int{"ns/hot": 0}, rg, 0.2)
	// One key holds all the load; no move can improve anything and the
	// planner must not thrash it around.
	if len(plan.moves) != 0 {
		t.Errorf("single hot key planned %d moves, want 0", len(plan.moves))
	}
	if got := plan.assign["ns/hot"]; got != 0 {
		t.Errorf("hot key rehomed to %d, want 0", got)
	}
}

func TestEpochScoreEWMA(t *testing.T) {
	// First epoch from zero state: 10 requests at mean cost 1500ns
	// (inside the clamp band) is an epoch load of 15000, halved by
	// alpha=0.5.
	score, st := epochScore(loadState{}, 10, 15000, 0.5)
	if score != 7500 {
		t.Fatalf("first epoch score = %v, want 7500", score)
	}
	// A quiet second epoch decays, not zeroes.
	score, st = epochScore(st, 10, 15000, 0.5)
	if score != 3750 {
		t.Fatalf("quiet epoch score = %v, want 3750", score)
	}
	// A counter reset (replica restart) clamps the delta to the new
	// cumulative value instead of wrapping negative.
	score, _ = epochScore(st, 4, 6000, 0.5)
	if score != 4875 { // 0.5*(4*1500) + 0.5*3750
		t.Fatalf("post-reset score = %v, want 4875", score)
	}
	// Mean cost floors at minMeanCostNs: cache-hot requests that record
	// no validation time still carry their per-request weight.
	if score, _ := epochScore(loadState{}, 8, 0, 0.5); score != 4*minMeanCostNs {
		t.Fatalf("zero-cost epoch score = %v, want %v", score, 4*minMeanCostNs)
	}
	// Mean cost caps at maxMeanCostNs: a one-time cold-validation spike
	// (2 requests carrying 2ms of cost) must not outscore a sustained
	// cache-hot stream, or cold tails would look hotter than the hot set.
	spike, _ := epochScore(loadState{}, 2, 2_000_000, 0.5)
	if spike != 0.5*2*maxMeanCostNs {
		t.Fatalf("cold-spike epoch score = %v, want %v", spike, 0.5*2*maxMeanCostNs)
	}
	hot, _ := epochScore(loadState{}, 1000, 0, 0.5)
	if hot <= spike {
		t.Fatalf("hot stream score %v did not dominate cold spike %v", hot, spike)
	}
}

// --- tier integration --------------------------------------------------

// skewedPlane registers nWorkloads namespaced workloads on a tier and
// drives skewed traffic: every namespace gets one benign request (which
// warms its decision cache), then a hot namespace gets hotExtra more.
// The hot namespace is picked from the most crowded replica so a
// weighted rebalance always has a movable neighbor; it is returned
// along with the full namespace list.
func skewedPlane(t *testing.T, replicas int, cfg Config, nWorkloads, hotExtra int) (*Plane, []string, string) {
	t.Helper()
	pl := newTestPlane(t, replicas, cfg)
	var nss []string
	for i := 0; i < nWorkloads; i++ {
		ns := string(rune('a'+i%26)) + "-ns"
		if i >= 26 {
			ns = string(rune('a'+i%26)) + "2-ns"
		}
		nss = append(nss, ns)
		w := "wl-" + ns
		if err := pl.Register(w, registry.Selector{Namespace: ns}, policyFor(t, w, false, img)); err != nil {
			t.Fatal(err)
		}
	}
	byOwner := make([][]string, replicas)
	for _, ns := range nss {
		o, err := pl.Owners("wl-" + ns)
		if err != nil || len(o) != 1 {
			t.Fatalf("Owners(%s) = (%v, %v)", ns, o, err)
		}
		byOwner[o[0]] = append(byOwner[o[0]], ns)
	}
	hotNS := nss[0]
	crowd := 0
	for _, group := range byOwner {
		if len(group) > crowd {
			crowd = len(group)
			hotNS = group[0]
		}
	}
	benign := podBody(false, img)
	for _, ns := range nss {
		if w := post(t, pl, "/api/v1/namespaces/"+ns+"/pods", benign); w.Code != http.StatusOK {
			t.Fatalf("warm %s: code %d", ns, w.Code)
		}
	}
	for i := 0; i < hotExtra; i++ {
		if w := post(t, pl, "/api/v1/namespaces/"+hotNS+"/pods", benign); w.Code != http.StatusOK {
			t.Fatalf("hot %s: code %d", hotNS, w.Code)
		}
	}
	return pl, nss, hotNS
}

func TestPlaneWeightedRebalanceMovesShardsWithCaches(t *testing.T) {
	pl, nss, _ := skewedPlane(t, 2, Config{
		CacheSize: 256, Placement: PlacementWeighted, RebalanceThreshold: 0.2,
	}, 8, 200)

	report, err := pl.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if report.Placement != PlacementWeighted {
		t.Errorf("report placement %q, want weighted", report.Placement)
	}
	if len(report.Moves) == 0 {
		t.Fatal("skewed 2-replica tier rebalanced with zero moves")
	}
	if report.ImbalanceAfter >= report.ImbalanceBefore {
		t.Errorf("imbalance did not improve: %.3f -> %.3f", report.ImbalanceBefore, report.ImbalanceAfter)
	}
	if report.HandoffEntries == 0 {
		t.Error("no cache entries travelled with the moved shards")
	}
	// A migration is a publish: the window must be closed when
	// Rebalance returns.
	tm := pl.Metrics()
	if tm.PublishesStarted != tm.PublishesCompleted {
		t.Errorf("publish window open after rebalance: %d started, %d completed",
			tm.PublishesStarted, tm.PublishesCompleted)
	}
	if tm.Rebalances != 1 || tm.ShardMigrations != uint64(len(report.Moves)) {
		t.Errorf("tier counters = (%d rebalances, %d migrations), want (1, %d)",
			tm.Rebalances, tm.ShardMigrations, len(report.Moves))
	}
	if tm.HandoffEntries != uint64(report.HandoffEntries) {
		t.Errorf("tier handoff entries %d, report says %d", tm.HandoffEntries, report.HandoffEntries)
	}

	// Every moved workload's hot set travelled: one benign replay per
	// namespace must HIT on the migration destination, not recompute.
	type probe struct {
		w    string
		to   int
		hits uint64
	}
	var probes []probe
	for _, mv := range report.Moves {
		if len(mv.Workloads) == 0 {
			t.Errorf("move of %s lists no workloads", mv.Key)
		}
		for _, w := range mv.Workloads {
			m, ok := pl.ReplicaWorkloadMetrics(mv.To, w)
			if !ok {
				t.Fatalf("destination %d does not hold moved workload %s", mv.To, w)
			}
			probes = append(probes, probe{w: w, to: mv.To, hits: m.CacheHits})
		}
	}
	benign := podBody(false, img)
	for _, ns := range nss {
		if w := post(t, pl, "/api/v1/namespaces/"+ns+"/pods", benign); w.Code != http.StatusOK {
			t.Fatalf("post-rebalance %s: code %d", ns, w.Code)
		}
		if w := post(t, pl, "/api/v1/namespaces/"+ns+"/pods", podBody(true, img)); w.Code != http.StatusForbidden {
			t.Errorf("post-rebalance attack on %s: code %d, want 403", ns, w.Code)
		}
	}
	for _, p := range probes {
		m, _ := pl.ReplicaWorkloadMetrics(p.to, p.w)
		if m.CacheHits <= p.hits {
			t.Errorf("workload %s on replica %d: %d hits after replay (was %d) — handoff lost the hot set",
				p.w, p.to, m.CacheHits, p.hits)
		}
	}
}

func TestPlaneHashRebalanceIsObservationOnly(t *testing.T) {
	pl, nss, _ := skewedPlane(t, 2, Config{CacheSize: 64}, 6, 50)
	before := map[string][]int{}
	for _, ns := range nss {
		o, err := pl.Owners("wl-" + ns)
		if err != nil {
			t.Fatal(err)
		}
		before[ns] = o
	}
	report, err := pl.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if report.Placement != PlacementHash || len(report.Moves) != 0 {
		t.Errorf("hash-placement rebalance = (%q, %d moves), want (hash, 0)", report.Placement, len(report.Moves))
	}
	if report.ImbalanceAfter != report.ImbalanceBefore {
		t.Errorf("hash rebalance changed imbalance: %.3f -> %.3f", report.ImbalanceBefore, report.ImbalanceAfter)
	}
	for _, ns := range nss {
		o, _ := pl.Owners("wl-" + ns)
		if !reflect.DeepEqual(o, before[ns]) {
			t.Errorf("hash rebalance moved %s: %v -> %v", ns, before[ns], o)
		}
	}
	if tm := pl.Metrics(); tm.Placement != "hash" || tm.Rebalances != 1 || tm.ShardMigrations != 0 {
		t.Errorf("tier metrics = (%s, %d, %d), want (hash, 1, 0)", tm.Placement, tm.Rebalances, tm.ShardMigrations)
	}
}

func TestPlaneWeightedRebalanceConverges(t *testing.T) {
	pl, _, _ := skewedPlane(t, 4, Config{
		CacheSize: 64, Placement: PlacementWeighted, RebalanceThreshold: 0.2,
	}, 12, 120)
	first, err := pl.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Moves) == 0 {
		t.Fatal("skewed 4-replica tier rebalanced with zero moves")
	}
	// A quiet epoch decays every score uniformly, so the balance the
	// first pass reached must hold: immediately rebalancing again may
	// not thrash shards back and forth.
	second, err := pl.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Moves) != 0 {
		t.Errorf("quiet follow-up rebalance moved %d shards, want 0 (hysteresis)", len(second.Moves))
	}
}

func TestPlaneMetricsExposePlacement(t *testing.T) {
	pl, nss, _ := skewedPlane(t, 2, Config{
		CacheSize: 64, Placement: PlacementWeighted, RebalanceThreshold: 0.2,
	}, 8, 100)
	if _, err := pl.Rebalance(); err != nil {
		t.Fatal(err)
	}
	tm := pl.Metrics()
	if tm.Placement != "weighted" {
		t.Errorf("placement %q, want weighted", tm.Placement)
	}
	shards := 0
	scored := 0.0
	for _, rm := range tm.Replicas {
		shards += rm.AssignedShards
		scored += rm.LoadScore
	}
	if shards != len(nss) {
		t.Errorf("assigned shards sum to %d, want %d (one ns key per workload)", shards, len(nss))
	}
	if scored <= 0 {
		t.Error("tier carried traffic but total load score is zero")
	}
	// The per-replica placement detail rides /varz.
	req := httptest.NewRequest(http.MethodGet, "/varz", nil)
	rec := httptest.NewRecorder()
	pl.ServeHTTP(rec, req)
	varz := rec.Body.String()
	if !strings.Contains(varz, `"assigned_shards"`) || !strings.Contains(varz, `"load_score"`) {
		t.Error("/varz does not expose placement detail")
	}
	if !strings.Contains(varz, `"placement": "weighted"`) {
		t.Error("/varz does not name the placement policy")
	}
}

func TestPlaneDrainHandsOffCaches(t *testing.T) {
	pl, nss, hotNS := skewedPlane(t, 3, Config{CacheSize: 64}, 6, 20)
	// Drain the replica owning the hot namespace; its workloads' caches
	// must travel to the new owners.
	owners, err := pl.Owners("wl-" + hotNS)
	if err != nil || len(owners) != 1 {
		t.Fatalf("Owners = (%v, %v)", owners, err)
	}
	if err := pl.Drain(owners[0]); err != nil {
		t.Fatal(err)
	}
	if tm := pl.Metrics(); tm.HandoffEntries == 0 {
		t.Error("drain moved shards but no cache entries travelled")
	}
	newOwners, _ := pl.Owners("wl-" + hotNS)
	if len(newOwners) != 1 || newOwners[0] == owners[0] {
		t.Fatalf("hot workload not re-homed: %v -> %v", owners, newOwners)
	}
	before, ok := pl.ReplicaWorkloadMetrics(newOwners[0], "wl-"+hotNS)
	if !ok {
		t.Fatal("new owner does not hold the drained workload")
	}
	benign := podBody(false, img)
	for _, ns := range nss {
		if w := post(t, pl, "/api/v1/namespaces/"+ns+"/pods", benign); w.Code != http.StatusOK {
			t.Fatalf("post-drain %s: code %d", ns, w.Code)
		}
	}
	after, _ := pl.ReplicaWorkloadMetrics(newOwners[0], "wl-"+hotNS)
	if after.CacheHits <= before.CacheHits {
		t.Errorf("drained workload's hot set did not travel: %d -> %d hits", before.CacheHits, after.CacheHits)
	}
}

func TestPlanePeriodicRebalanceAndClose(t *testing.T) {
	pl := newTestPlane(t, 2, Config{
		Placement: PlacementWeighted, RebalanceInterval: 5 * time.Millisecond,
	})
	deadline := time.Now().Add(2 * time.Second)
	for pl.Metrics().Rebalances == 0 {
		if time.Now().After(deadline) {
			t.Fatal("periodic rebalancer never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := pl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pl.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	n := pl.Metrics().Rebalances
	time.Sleep(30 * time.Millisecond)
	if got := pl.Metrics().Rebalances; got > n+1 {
		// One in-flight tick may land after Close; a growing counter
		// means the loop survived it.
		t.Errorf("rebalances kept running after Close: %d -> %d", n, got)
	}
}
