package plane

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/registry"
)

// TestChaosKillRestartMidSwap kills and restarts replicas while policy
// swaps and enforcement traffic run full tilt, and asserts the tier's
// two distribution invariants under the race detector:
//
//  1. No stale-generation decision: once a Swap returns, a request
//     STARTED afterwards is never judged by the pre-swap policy — not
//     even by a replica that was killed mid-swap and rejoined, because
//     rejoin requires a full resync from the control plane's desired
//     state before the replica re-enters the ring.
//  2. Fail-closed shedding: whatever the topology does, a request that
//     violates the current policy is never forwarded. Chaos may turn a
//     verdict into a 429/503 shed, never into a silent allow.
//
// The policy alternates between two generations with DISJOINT benign
// sets (v1 allows hostNetwork=false, v2 allows hostNetwork=true), so a
// stale verdict is directly observable as the wrong status code.
func TestChaosKillRestartMidSwap(t *testing.T) {
	pl := newTestPlane(t, 3, Config{})
	v1 := policyFor(t, "wl", false, img)
	v2 := policyFor(t, "wl", true, img)
	// Several sibling workloads so the kill always disturbs real
	// ownership somewhere even as shards move.
	for _, ns := range []string{"n1", "n2", "n3", "n4", "n5"} {
		if err := pl.Register("wl-"+ns, registry.Selector{Namespace: ns}, policyFor(t, "wl-"+ns, false, img)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pl.Register("wl", registry.Selector{Namespace: "prod"}, v1); err != nil {
		t.Fatal(err)
	}

	// phase is the generation traffic must judge against: even => v1
	// (false benign), odd => v2 (true benign). It is advanced only
	// AFTER the corresponding Swap has returned, so a reader that
	// observes phase N is guaranteed the swap to N's policy completed
	// before its request started.
	var phase atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	bodyFalse := podBody(false, img)
	bodyTrue := podBody(true, img)

	// Swapper: v1 -> v2 -> v1 -> ... as fast as it can.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			next := v2
			if i%2 == 1 {
				next = v1
			}
			if err := pl.Swap("wl", next); err != nil {
				t.Errorf("Swap: %v", err)
				return
			}
			phase.Add(1)
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Chaos monkey: kill and restart each replica in turn, mid-swap by
	// construction (the swapper never pauses).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			idx := i % 3
			if err := pl.Kill(idx); err != nil {
				t.Errorf("Kill(%d): %v", idx, err)
				return
			}
			time.Sleep(500 * time.Microsecond)
			if err := pl.Restart(idx); err != nil {
				t.Errorf("Restart(%d): %v", idx, err)
				return
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	// Traffic: every request snapshots the phase BEFORE it starts, so
	// the snapshot is a lower bound on the published generation. If the
	// phase did not advance while the request was in flight, the
	// verdict must be exactly the snapshot generation's; if it did, any
	// of the concurrently-published generations' verdicts is legal
	// (bounded mixed window) — but forwarding a body BOTH generations
	// deny is fail-open and always fatal.
	const workers = 4
	var served, shed atomic.Uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				before := phase.Load()
				wantAllow, wantDeny := bodyFalse, bodyTrue
				if before%2 == 1 {
					wantAllow, wantDeny = bodyTrue, bodyFalse
				}
				for _, probe := range []struct {
					body  []byte
					allow bool
				}{{wantAllow, true}, {wantDeny, false}} {
					req := httptest.NewRequest(http.MethodPost, "/api/v1/namespaces/prod/pods", bytes.NewReader(probe.body))
					req.Header.Set("Content-Type", "application/json")
					rec := httptest.NewRecorder()
					pl.ServeHTTP(rec, req)
					after := phase.Load()
					switch rec.Code {
					case http.StatusOK, http.StatusForbidden:
						served.Add(1)
						stable := before == after
						if stable && probe.allow && rec.Code != http.StatusOK {
							t.Errorf("phase %d: allowed body denied (stale generation served): %s", before, rec.Body)
						}
						if stable && !probe.allow && rec.Code != http.StatusForbidden {
							t.Errorf("phase %d: denied body forwarded (stale generation served)", before)
						}
					case http.StatusServiceUnavailable, http.StatusTooManyRequests:
						shed.Add(1) // fail-closed shed, acceptable under chaos
					default:
						t.Errorf("unexpected status %d under chaos: %s", rec.Code, rec.Body)
					}
				}
			}
		}()
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	if served.Load() == 0 {
		t.Fatal("chaos run served zero requests — invariants never exercised")
	}
	t.Logf("chaos: %d served, %d shed, %d swaps, %d resyncs",
		served.Load(), shed.Load(), phase.Load(), pl.Metrics().Resyncs)

	// Quiesce: after the chaos stops and every replica is restored, the
	// tier must converge to the final generation everywhere.
	for i := 0; i < 3; i++ {
		if st, _ := pl.State(i); st == ReplicaDown {
			if err := pl.Restart(i); err != nil {
				t.Fatalf("final Restart(%d): %v", i, err)
			}
		}
	}
	final := phase.Load()
	wantAllow, wantDeny := bodyFalse, bodyTrue
	if final%2 == 1 {
		wantAllow, wantDeny = bodyTrue, bodyFalse
	}
	for i := 0; i < 50; i++ {
		if w := post(t, pl, "/api/v1/namespaces/prod/pods", wantAllow); w.Code != http.StatusOK {
			t.Fatalf("quiesced benign: code %d body %s", w.Code, w.Body)
		}
		if w := post(t, pl, "/api/v1/namespaces/prod/pods", wantDeny); w.Code != http.StatusForbidden {
			t.Fatalf("quiesced attack: code %d (fail-open after chaos)", w.Code)
		}
	}
	tm := pl.Metrics()
	if tm.PublishesStarted != tm.PublishesCompleted {
		t.Errorf("publishes: started %d != completed %d after quiesce", tm.PublishesStarted, tm.PublishesCompleted)
	}
}

// TestChaosRebalanceMidSwap races weighted rebalances against policy
// swaps and enforcement traffic: a rotating hot namespace keeps the
// load imbalanced so shards (and their workloads' hot caches) migrate
// continuously while a swapper alternates the probed workload's policy
// between two generations with disjoint benign sets. The invariants
// are the publish window's, extended to migrations:
//
//  1. No stale-generation verdict: a request started after a Swap
//     returned is never judged by the pre-swap policy, even when its
//     shard is mid-migration — the destination is installed at the
//     current generation before routing flips, and the source is a live
//     holder kept current by the swap itself.
//  2. No silent allow during a move: a body the current policy denies
//     is either denied or shed, never forwarded, whatever the placer is
//     doing to the routing table underneath.
func TestChaosRebalanceMidSwap(t *testing.T) {
	pl := newTestPlane(t, 3, Config{
		CacheSize:          128,
		Placement:          PlacementWeighted,
		RebalanceThreshold: 0.05,
		LoadSmoothing:      0.9,
	})
	v1 := policyFor(t, "wl", false, img)
	v2 := policyFor(t, "wl", true, img)
	siblings := []string{"n1", "n2", "n3", "n4", "n5", "n6"}
	for _, ns := range siblings {
		if err := pl.Register("wl-"+ns, registry.Selector{Namespace: ns}, policyFor(t, "wl-"+ns, false, img)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pl.Register("wl", registry.Selector{Namespace: "prod"}, v1); err != nil {
		t.Fatal(err)
	}

	var phase atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	bodyFalse := podBody(false, img)
	bodyTrue := podBody(true, img)

	// Swapper: v1 -> v2 -> v1 -> ...
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			next := v2
			if i%2 == 1 {
				next = v1
			}
			if err := pl.Swap("wl", next); err != nil {
				t.Errorf("Swap: %v", err)
				return
			}
			phase.Add(1)
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Placer: rebalance as fast as it can; the rotating hot namespace
	// below keeps handing it fresh imbalance to chase.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := pl.Rebalance(); err != nil {
				t.Errorf("Rebalance: %v", err)
				return
			}
			time.Sleep(300 * time.Microsecond)
		}
	}()

	const workers = 4
	var served, shed atomic.Uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Hammer a rotating hot namespace so the placer keeps
				// migrating shards under the probes. Benign sibling
				// traffic must never be denied; attacks never allowed.
				hot := siblings[(i/32)%len(siblings)]
				hotPath := "/api/v1/namespaces/" + hot + "/pods"
				for _, probe := range []struct {
					body  []byte
					allow bool
				}{{bodyFalse, true}, {bodyTrue, false}} {
					req := httptest.NewRequest(http.MethodPost, hotPath, bytes.NewReader(probe.body))
					req.Header.Set("Content-Type", "application/json")
					rec := httptest.NewRecorder()
					pl.ServeHTTP(rec, req)
					switch {
					case probe.allow && rec.Code == http.StatusOK,
						!probe.allow && rec.Code == http.StatusForbidden:
						served.Add(1)
					case rec.Code == http.StatusServiceUnavailable || rec.Code == http.StatusTooManyRequests:
						shed.Add(1)
					case !probe.allow:
						t.Errorf("sibling attack forwarded mid-rebalance: status %d", rec.Code)
					default:
						t.Errorf("sibling benign denied mid-rebalance: status %d body %s", rec.Code, rec.Body)
					}
				}

				// The swapped workload: phase snapshot bounds the legal
				// generations exactly as in TestChaosKillRestartMidSwap.
				before := phase.Load()
				wantAllow, wantDeny := bodyFalse, bodyTrue
				if before%2 == 1 {
					wantAllow, wantDeny = bodyTrue, bodyFalse
				}
				for _, probe := range []struct {
					body  []byte
					allow bool
				}{{wantAllow, true}, {wantDeny, false}} {
					req := httptest.NewRequest(http.MethodPost, "/api/v1/namespaces/prod/pods", bytes.NewReader(probe.body))
					req.Header.Set("Content-Type", "application/json")
					rec := httptest.NewRecorder()
					pl.ServeHTTP(rec, req)
					after := phase.Load()
					switch rec.Code {
					case http.StatusOK, http.StatusForbidden:
						served.Add(1)
						stable := before == after
						if stable && probe.allow && rec.Code != http.StatusOK {
							t.Errorf("phase %d: allowed body denied mid-rebalance (stale generation): %s", before, rec.Body)
						}
						if stable && !probe.allow && rec.Code != http.StatusForbidden {
							t.Errorf("phase %d: denied body forwarded mid-rebalance (stale generation)", before)
						}
					case http.StatusServiceUnavailable, http.StatusTooManyRequests:
						shed.Add(1)
					default:
						t.Errorf("unexpected status %d under rebalance chaos: %s", rec.Code, rec.Body)
					}
				}
			}
		}()
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	tm := pl.Metrics()
	if served.Load() == 0 {
		t.Fatal("rebalance chaos served zero requests — invariants never exercised")
	}
	if tm.ShardMigrations == 0 {
		t.Fatal("rebalance chaos migrated zero shards — the mid-move window was never exercised")
	}
	if tm.PublishesStarted != tm.PublishesCompleted {
		t.Errorf("publish window open after rebalance chaos: %d started, %d completed",
			tm.PublishesStarted, tm.PublishesCompleted)
	}
	t.Logf("rebalance chaos: %d served, %d shed, %d swaps, %d rebalances, %d migrations, %d handoff entries",
		served.Load(), shed.Load(), phase.Load(), tm.Rebalances, tm.ShardMigrations, tm.HandoffEntries)

	// Quiesce: the tier converges to the final generation everywhere.
	final := phase.Load()
	wantAllow, wantDeny := bodyFalse, bodyTrue
	if final%2 == 1 {
		wantAllow, wantDeny = bodyTrue, bodyFalse
	}
	for i := 0; i < 50; i++ {
		if w := post(t, pl, "/api/v1/namespaces/prod/pods", wantAllow); w.Code != http.StatusOK {
			t.Fatalf("quiesced benign: code %d body %s", w.Code, w.Body)
		}
		if w := post(t, pl, "/api/v1/namespaces/prod/pods", wantDeny); w.Code != http.StatusForbidden {
			t.Fatalf("quiesced attack: code %d (fail-open after rebalance chaos)", w.Code)
		}
	}
}
