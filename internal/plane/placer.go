package plane

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/registry"
)

// Load-aware weighted placement.
//
// The consistent-hash ring places shard keys blindly: under skewed
// traffic (a handful of hot namespaces) the replica that happens to own
// the hot keys saturates while its peers idle, and tier efficiency
// collapses well below 1/N. Weighted placement overlays an explicit
// assignment map on the ring: each workload carries an EWMA load score
// (requests x mean decision cost per epoch), scores fold onto shard
// keys, and Rebalance greedily moves the heaviest keys off overloaded
// replicas until the maximum is within a hysteresis band of the mean.
// The ring remains the fallback for keys no rebalance has placed, so a
// weighted tier degrades to hash placement, never to nothing.
//
// When a key moves, the workloads it addresses move with their hot
// decision sets: the destination replica is installed at the current
// generation and its cache primed from the source (ExportCache /
// ImportCache, which independently verify policy identity and invariant
// parity) BEFORE the route table flips — a migration is a publish like
// any other and is bounded by the same PublishesStarted/Completed
// window.

// PlacementPolicy selects how non-pinned shard keys map to replicas.
type PlacementPolicy string

const (
	// PlacementHash places shards purely by consistent hashing (the
	// default).
	PlacementHash PlacementPolicy = "hash"
	// PlacementWeighted overlays load-aware assignment on the hash
	// placement: Rebalance migrates the heaviest shard keys off
	// overloaded replicas and carries each migrated workload's hot
	// decision cache along.
	PlacementWeighted PlacementPolicy = "weighted"
)

const (
	// defaultRebalanceThreshold is the hysteresis band when
	// Config.RebalanceThreshold is zero: rebalance only while the
	// most loaded replica exceeds the mean by 20%.
	defaultRebalanceThreshold = 0.2
	// defaultLoadSmoothing is the EWMA coefficient when
	// Config.LoadSmoothing is zero.
	defaultLoadSmoothing = 0.5
)

func (pl *Plane) placement() PlacementPolicy {
	if pl.cfg.Placement == "" {
		return PlacementHash
	}
	return pl.cfg.Placement
}

func (pl *Plane) alpha() float64 {
	if pl.cfg.LoadSmoothing <= 0 || pl.cfg.LoadSmoothing > 1 {
		return defaultLoadSmoothing
	}
	return pl.cfg.LoadSmoothing
}

func (pl *Plane) threshold() float64 {
	if pl.cfg.RebalanceThreshold <= 0 {
		return defaultRebalanceThreshold
	}
	return pl.cfg.RebalanceThreshold
}

// --- load scoring ------------------------------------------------------

// loadState is one workload's EWMA bookkeeping between rebalance epochs.
type loadState struct {
	score        float64
	lastRequests uint64
	lastCostNs   uint64
}

// minMeanCostNs floors the observed mean per-request cost. A cached
// decision records (nearly) zero validation time, but the request still
// paid routing, body copy, and proxy overhead — without a floor a
// cache-hot workload would score as weightless and the placer would
// never spread the very traffic the cache makes cheap to serve but
// expensive to crowd.
const minMeanCostNs = 1000

// maxMeanCostNs caps the observed mean per-request cost. The cumulative
// counters fold one-time transients — chiefly the cold validation every
// object pays exactly once before its decision caches — into the mean,
// and a cold pass costs roughly the same total for every workload
// regardless of traffic. Divided by very different request counts, that
// constant makes cold, rarely-hit workloads look *hotter* per request
// than the cache-warmed hot set, inverting the ordering the placer
// exists to find. The band is deliberately tight (2x the floor): the
// hotter a workload, the further that constant is diluted below any
// wider cap, so only the hot set would escape clamping and it would be
// systematically underweighted — the exact traffic LPT must not
// underpack. Request volume is what saturates a replica's admission
// slots; cost may only tilt scores within the band.
const maxMeanCostNs = 2 * minMeanCostNs

// epochScore folds one epoch's cumulative observation into a workload's
// EWMA score: score = alpha * (delta requests x mean cost) +
// (1-alpha) * previous. Mean cost is clamped to the
// [minMeanCostNs, maxMeanCostNs] band, and deltas clamp when the
// cumulative counters shrank (a replica restart reset them).
func epochScore(st loadState, reqs, costNs uint64, alpha float64) (float64, loadState) {
	dReq := reqs - st.lastRequests
	if reqs < st.lastRequests {
		dReq = reqs
	}
	dCost := costNs - st.lastCostNs
	if costNs < st.lastCostNs {
		dCost = costNs
	}
	var epoch float64
	if dReq > 0 {
		meanCost := float64(dCost) / float64(dReq)
		if meanCost < minMeanCostNs {
			meanCost = minMeanCostNs
		}
		if meanCost > maxMeanCostNs {
			meanCost = maxMeanCostNs
		}
		epoch = float64(dReq) * meanCost
	}
	score := alpha*epoch + (1-alpha)*st.score
	return score, loadState{score: score, lastRequests: reqs, lastCostNs: costNs}
}

// observeLocked sums one workload's cumulative request count and cost
// across its live holders: per-replica telemetry hubs when the tier
// records them (decision count and total decision time), the registry's
// request and validation-time counters otherwise. Caller holds pl.mu.
func (pl *Plane) observeLocked(w string) (reqs, costNs uint64) {
	for _, rep := range pl.replicas {
		if ReplicaState(rep.state.Load()) == ReplicaDown {
			continue
		}
		if _, holds := rep.installed[w]; !holds {
			continue
		}
		if rep.hub != nil {
			c, s := rep.hub.Load(w)
			reqs += c
			costNs += s
			continue
		}
		if e, ok := rep.reg.Entry(w); ok {
			m := e.Metrics()
			reqs += m.Requests
			costNs += uint64(m.ValidationTime)
		}
	}
	return reqs, costNs
}

// loadScoresLocked computes every workload's load score for this epoch.
// advance=true commits the EWMA state (a rebalance epoch); advance=false
// is a read-only preview for metrics. Caller holds pl.mu.
func (pl *Plane) loadScoresLocked(advance bool) map[string]float64 {
	out := make(map[string]float64, len(pl.workloads))
	for w := range pl.workloads {
		reqs, costNs := pl.observeLocked(w)
		score, next := epochScore(pl.loads[w], reqs, costNs, pl.alpha())
		out[w] = score
		if advance {
			pl.loads[w] = next
		}
	}
	if advance {
		for w := range pl.loads {
			if _, ok := pl.workloads[w]; !ok {
				delete(pl.loads, w)
			}
		}
	}
	return out
}

// keyLoadsLocked folds workload scores onto their shard keys. Pinned
// workloads are excluded (their placement is forced), broadcast
// workloads have no shard key to place. A workload addressed by several
// keys (namespace plus claimed cluster kinds) contributes its full
// score to each — conservative: any key moving alone must still fit.
// Caller holds pl.mu.
func (pl *Plane) keyLoadsLocked(scores map[string]float64) []keyLoad {
	byKey := map[string]float64{}
	for w, ws := range pl.workloads {
		if ws.pin >= 0 {
			continue
		}
		for _, key := range shardKeys(ws.selector) {
			byKey[key] += scores[w]
		}
	}
	out := make([]keyLoad, 0, len(byKey))
	for k, s := range byKey {
		out = append(out, keyLoad{key: k, score: s})
	}
	return out
}

// --- the planner -------------------------------------------------------

type keyLoad struct {
	key   string
	score float64
}

type planMove struct {
	key      string
	from, to int
	score    float64
}

type weightedPlan struct {
	assign          map[string]int
	moves           []planMove
	imbalanceBefore float64
	imbalanceAfter  float64
}

// planWeighted computes the weighted shard assignment: every key seeds
// at its current home (the prior assignment while its replica is still
// active, the ring otherwise), then the largest movable key migrates
// from the most- to the least-loaded replica while the maximum exceeds
// mean*(1+threshold) — greedy LPT with hysteresis, so a balanced tier
// plans zero moves. Deterministic given its inputs: keys are processed
// in descending score order (ties by key), replica ties break on the
// lowest index.
func planWeighted(keys []keyLoad, active []int, current map[string]int, rg *ring, threshold float64) weightedPlan {
	plan := weightedPlan{assign: make(map[string]int, len(keys))}
	if len(active) == 0 {
		return plan
	}
	sorted := append([]keyLoad(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].score != sorted[j].score {
			return sorted[i].score > sorted[j].score
		}
		return sorted[i].key < sorted[j].key
	})

	activeSet := make(map[int]bool, len(active))
	loads := make(map[int]float64, len(active))
	for _, idx := range active {
		activeSet[idx] = true
		loads[idx] = 0
	}
	seed := make(map[string]int, len(sorted))
	var total float64
	for _, kl := range sorted {
		home, ok := current[kl.key]
		if !ok || !activeSet[home] {
			home, ok = rg.lookup(kl.key)
			if !ok {
				home = active[0]
			}
		}
		seed[kl.key] = home
		plan.assign[kl.key] = home
		loads[home] += kl.score
		total += kl.score
	}
	mean := total / float64(len(active))
	plan.imbalanceBefore = imbalanceOf(loads, mean)

	if total > 0 {
		limit := mean * (1 + threshold)
		// Each accepted move strictly lowers max(src, dst), so the loop
		// terminates; the bound is a backstop, not the usual exit.
		for iter := 0; iter < 4*len(sorted)+4; iter++ {
			src, dst := extremes(loads, active)
			if loads[src] <= limit {
				break
			}
			moved := false
			for _, kl := range sorted {
				if kl.score <= 0 || plan.assign[kl.key] != src {
					continue
				}
				if loads[dst]+kl.score < loads[src] {
					plan.assign[kl.key] = dst
					loads[src] -= kl.score
					loads[dst] += kl.score
					moved = true
					break
				}
			}
			if !moved {
				break
			}
		}
	}
	plan.imbalanceAfter = imbalanceOf(loads, mean)

	for _, kl := range sorted {
		if to := plan.assign[kl.key]; to != seed[kl.key] {
			plan.moves = append(plan.moves, planMove{key: kl.key, from: seed[kl.key], to: to, score: kl.score})
		}
	}
	return plan
}

// extremes finds the most- and least-loaded replicas; ties break on the
// lowest index (active is ascending).
func extremes(loads map[int]float64, active []int) (src, dst int) {
	src, dst = active[0], active[0]
	for _, idx := range active[1:] {
		if loads[idx] > loads[src] {
			src = idx
		}
		if loads[idx] < loads[dst] {
			dst = idx
		}
	}
	return src, dst
}

// imbalanceOf is max/mean - 1 over per-replica loads: 0 when perfectly
// even (or when there is no load at all).
func imbalanceOf(loads map[int]float64, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	var max float64
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max/mean - 1
}

// --- rebalance ---------------------------------------------------------

// ShardMove describes one shard-key migration within a rebalance.
type ShardMove struct {
	Key   string  `json:"key"`
	From  int     `json:"from"`
	To    int     `json:"to"`
	Score float64 `json:"score"`
	// Workloads lists the workloads the key addresses (installed on the
	// destination before the routing flipped); HandoffEntries counts the
	// cached decisions that travelled with them.
	Workloads      []string `json:"workloads"`
	HandoffEntries int      `json:"handoff_entries"`
}

// RebalanceReport describes one rebalance epoch. Imbalance is
// max/mean - 1 of per-replica load score over the non-pinned shard
// keys; After equals Before on a hash-placement tier (scores still
// advance, nothing moves).
type RebalanceReport struct {
	Placement       PlacementPolicy `json:"placement"`
	Moves           []ShardMove     `json:"moves"`
	ImbalanceBefore float64         `json:"imbalance_before"`
	ImbalanceAfter  float64         `json:"imbalance_after"`
	HandoffEntries  int             `json:"handoff_entries"`
}

// Rebalance advances the load scores one epoch and, on a weighted-
// placement tier, migrates shard assignments when the load imbalance
// exceeds the hysteresis threshold. A migration follows the publish
// discipline: the destination replica is installed at the current
// generation and its decision cache primed from the source BEFORE the
// route table flips, inside a PublishesStarted/Completed window — a
// mid-migration request lands either on the old owner (a live holder,
// kept current by every publish) or on the fully-primed new one, never
// on a replica without the policy.
func (pl *Plane) Rebalance() (RebalanceReport, error) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.rebalanceWeightedLocked()
}

func (pl *Plane) rebalanceWeightedLocked() (RebalanceReport, error) {
	pl.rebalances.Add(1)
	scores := pl.loadScoresLocked(true)
	report := RebalanceReport{Placement: pl.placement()}
	active := pl.activeIndices()
	keys := pl.keyLoadsLocked(scores)
	rt := pl.routes.Load()
	plan := planWeighted(keys, active, pl.assign, rt.ring, pl.threshold())
	report.ImbalanceBefore = plan.imbalanceBefore
	if pl.placement() != PlacementWeighted {
		report.ImbalanceAfter = plan.imbalanceBefore
		return report, nil
	}
	report.ImbalanceAfter = plan.imbalanceAfter
	if len(plan.moves) == 0 {
		// Adopt the seeded assignment anyway: keys stick to their current
		// homes across future topology changes instead of following ring
		// churn, which preserves cache locality.
		pl.assign = plan.assign
		pl.publishRoutesLocked()
		return report, nil
	}

	pl.publishesStarted.Add(1)
	defer pl.publishesCompleted.Add(1)
	var firstErr error
	for _, mv := range plan.moves {
		ms := ShardMove{Key: mv.key, From: mv.from, To: mv.to, Score: mv.score}
		dst := pl.replicas[mv.to]
		for _, w := range pl.workloadsOnKeyLocked(mv.key) {
			ws := pl.workloads[w]
			if gen, holds := dst.installed[w]; !holds || gen != ws.gen {
				if err := pl.installLocked(dst, w, ws, ws.gen); err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("plane: replica %d: %w", dst.index, err)
					}
					continue
				}
			}
			ms.Workloads = append(ms.Workloads, w)
			ms.HandoffEntries += pl.handoffLocked(mv.from, dst, w, ws)
		}
		pl.migrations.Add(1)
		report.HandoffEntries += ms.HandoffEntries
		report.Moves = append(report.Moves, ms)
	}
	pl.handoffTotal.Add(uint64(report.HandoffEntries))
	pl.assign = plan.assign
	pl.publishRoutesLocked()
	for _, ws := range pl.workloads {
		ws.owners = pl.ownersLocked(ws)
	}
	return report, firstErr
}

// workloadsOnKeyLocked lists the non-pinned workloads a shard key
// addresses, sorted for deterministic migration order. Caller holds
// pl.mu.
func (pl *Plane) workloadsOnKeyLocked(key string) []string {
	var out []string
	for w, ws := range pl.workloads {
		if ws.pin >= 0 {
			continue
		}
		for _, k := range shardKeys(ws.selector) {
			if k == key {
				out = append(out, w)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// handoffLocked primes dst's decision cache for one workload from the
// replica its shard is moving off. Only a live source still serving the
// workload's published generation exports; the registry's import guard
// (policy identity plus invariant parity) independently drops anything
// stale, so a failed precondition here means a cold start on dst, never
// a wrong verdict. Returns the number of decisions that travelled.
// Caller holds pl.mu.
func (pl *Plane) handoffLocked(from int, dst *replica, w string, ws *workloadState) int {
	if pl.cfg.CacheSize <= 0 || from < 0 || from >= len(pl.replicas) {
		return 0
	}
	src := pl.replicas[from]
	if src == dst || ReplicaState(src.state.Load()) == ReplicaDown {
		return 0
	}
	if gen, holds := src.installed[w]; !holds || gen != ws.gen {
		return 0
	}
	snap, err := src.reg.ExportCache(w)
	if err != nil {
		return 0
	}
	n, err := dst.reg.ImportCache(snap)
	if err != nil {
		return 0
	}
	return n
}

// rebalanceLoop drives periodic rebalances until Close.
func (pl *Plane) rebalanceLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			pl.Rebalance()
		case <-pl.rebalanceStop:
			return
		}
	}
}

// Close stops the periodic rebalancer when one is configured. The tier
// holds no other background resources; Close is idempotent and safe on
// a plane without a rebalance interval.
func (pl *Plane) Close() error {
	pl.closeOnce.Do(func() {
		if pl.rebalanceStop != nil {
			close(pl.rebalanceStop)
		}
	})
	return nil
}

// ReplicaWorkloadMetrics reports one workload's registry metrics on one
// specific replica — per-replica observability for migrations (cache
// hits on a migration destination measure how much of the hot set the
// handoff retained). ok is false when the replica index is out of range
// or the replica does not hold the workload.
func (pl *Plane) ReplicaWorkloadMetrics(replicaIndex int, workload string) (registry.Metrics, bool) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if replicaIndex < 0 || replicaIndex >= len(pl.replicas) {
		return registry.Metrics{}, false
	}
	e, ok := pl.replicas[replicaIndex].reg.Entry(workload)
	if !ok {
		return registry.Metrics{}, false
	}
	return e.Metrics(), true
}
