package plane

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/object"
	"repro/internal/registry"
	"repro/internal/validator"
)

// okTransport answers every upstream round trip 200 in-memory.
type okTransport struct{}

func (okTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if r.Body != nil {
		r.Body.Close()
	}
	return &http.Response{
		StatusCode: http.StatusOK,
		Status:     "200 OK",
		Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
		Header:  make(http.Header),
		Body:    http.NoBody,
		Request: r,
	}, nil
}

// slowTransport sleeps before answering — a bounded-capacity upstream.
type slowTransport struct{ d time.Duration }

func (t slowTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	time.Sleep(t.d)
	return okTransport{}.RoundTrip(r)
}

// policyFor builds a workload policy from one pod manifest.
func policyFor(t *testing.T, workload string, hostNetwork bool, image string) *validator.Validator {
	t.Helper()
	manifest := object.Object{
		"apiVersion": "v1",
		"kind":       "Pod",
		"metadata":   map[string]any{"name": workload},
		"spec": map[string]any{
			"hostNetwork": hostNetwork,
			"containers": []any{map[string]any{
				"name":  "c",
				"image": image,
			}},
		},
	}
	pol, err := validator.Build([]object.Object{manifest}, validator.BuildOptions{Workload: workload})
	if err != nil {
		t.Fatal(err)
	}
	return pol
}

func podBody(hostNetwork bool, image string) []byte {
	return []byte(fmt.Sprintf(
		`{"kind":"Pod","metadata":{"name":"p"},"spec":{"hostNetwork":%v,"containers":[{"name":"c","image":%q}]}}`,
		hostNetwork, image))
}

func post(t *testing.T, h http.Handler, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func newTestPlane(t *testing.T, replicas int, cfg Config) *Plane {
	t.Helper()
	cfg.Replicas = replicas
	if cfg.Upstream == "" {
		cfg.Upstream = "http://upstream.invalid"
	}
	if cfg.Transport == nil {
		cfg.Transport = okTransport{}
	}
	pl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

const img = "docker.io/library/nginx:1.25"

func TestPlaneRoutesAndEnforces(t *testing.T) {
	pl := newTestPlane(t, 4, Config{})
	namespaces := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	for _, ns := range namespaces {
		if err := pl.Register("wl-"+ns, registry.Selector{Namespace: ns}, policyFor(t, "wl-"+ns, false, img)); err != nil {
			t.Fatalf("Register %s: %v", ns, err)
		}
	}
	for _, ns := range namespaces {
		path := "/api/v1/namespaces/" + ns + "/pods"
		if w := post(t, pl, path, podBody(false, img)); w.Code != http.StatusOK {
			t.Errorf("benign %s: code %d, body %s", ns, w.Code, w.Body)
		}
		if w := post(t, pl, path, podBody(true, img)); w.Code != http.StatusForbidden {
			t.Errorf("attack %s: code %d, want 403", ns, w.Code)
		}
		// Unpoliced namespaces fail closed.
		if w := post(t, pl, "/api/v1/namespaces/nobody/pods", podBody(false, img)); w.Code != http.StatusForbidden {
			t.Errorf("unpoliced namespace: code %d, want 403", w.Code)
		}
	}
	// Each workload has exactly one owner, and the tier (not one hot
	// replica) holds them collectively.
	ownersSeen := map[int]bool{}
	for _, ns := range namespaces {
		owners, err := pl.Owners("wl-" + ns)
		if err != nil || len(owners) != 1 {
			t.Fatalf("Owners(wl-%s) = %v, %v; want exactly one", ns, owners, err)
		}
		ownersSeen[owners[0]] = true
	}
	if len(ownersSeen) < 2 {
		t.Errorf("6 workloads all landed on one replica; want spread, got %v", ownersSeen)
	}
	tm := pl.Metrics()
	if tm.Requests == 0 || tm.Proxy.Requests != tm.Requests {
		t.Errorf("metrics rollup: front door %d requests, replicas saw %d", tm.Requests, tm.Proxy.Requests)
	}
	if tm.PublishesStarted != tm.PublishesCompleted {
		t.Errorf("publishes: started %d != completed %d at rest", tm.PublishesStarted, tm.PublishesCompleted)
	}
}

func TestPlaneBroadcastSelectors(t *testing.T) {
	pl := newTestPlane(t, 3, Config{})
	// Kind-only selector must be resolvable wherever any request lands.
	if err := pl.Register("podwatch", registry.Selector{Kinds: []string{"Pod"}}, policyFor(t, "podwatch", false, img)); err != nil {
		t.Fatal(err)
	}
	owners, _ := pl.Owners("podwatch")
	if len(owners) != 3 {
		t.Fatalf("broadcast workload owners = %v, want all 3 replicas", owners)
	}
	for _, ns := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		path := "/api/v1/namespaces/" + ns + "/pods"
		if w := post(t, pl, path, podBody(false, img)); w.Code != http.StatusOK {
			t.Errorf("benign ns %s: code %d, body %s", ns, w.Code, w.Body)
		}
		if w := post(t, pl, path, podBody(true, img)); w.Code != http.StatusForbidden {
			t.Errorf("attack ns %s: code %d, want 403", ns, w.Code)
		}
	}
}

func TestPlanePinning(t *testing.T) {
	pl := newTestPlane(t, 4, Config{})
	if err := pl.RegisterPinned("pinned", registry.Selector{Namespace: "vip"}, policyFor(t, "pinned", false, img), 2); err != nil {
		t.Fatal(err)
	}
	if owners, _ := pl.Owners("pinned"); len(owners) != 1 || owners[0] != 2 {
		t.Fatalf("pinned owners = %v, want [2]", owners)
	}
	for i := 0; i < 10; i++ {
		if w := post(t, pl, "/api/v1/namespaces/vip/pods", podBody(false, img)); w.Code != http.StatusOK {
			t.Fatalf("benign pinned: code %d body %s", w.Code, w.Body)
		}
	}
	tm := pl.Metrics()
	if got := tm.Replicas[2].Routed; got != 10 {
		t.Errorf("pinned replica routed %d requests, want 10", got)
	}
	// Pinning requires a shard key.
	err := pl.RegisterPinned("nope", registry.Selector{}, policyFor(t, "nope", false, img), 0)
	if err == nil {
		t.Error("RegisterPinned with wildcard selector succeeded, want error")
	}
}

func TestPlaneSwapPromoteLifecycle(t *testing.T) {
	pl := newTestPlane(t, 3, Config{})
	v1 := policyFor(t, "wl", false, img)
	v2 := policyFor(t, "wl", true, img)
	if err := pl.Register("wl", registry.Selector{Namespace: "prod"}, v1); err != nil {
		t.Fatal(err)
	}
	path := "/api/v1/namespaces/prod/pods"
	if w := post(t, pl, path, podBody(false, img)); w.Code != http.StatusOK {
		t.Fatalf("v1 benign: %d", w.Code)
	}
	if err := pl.Swap("wl", v2); err != nil {
		t.Fatalf("Swap: %v", err)
	}
	// The swap is published tier-wide before it returns: v1's benign
	// body is now a violation, v2's is allowed.
	if w := post(t, pl, path, podBody(false, img)); w.Code != http.StatusForbidden {
		t.Errorf("post-swap old-benign: code %d, want 403", w.Code)
	}
	if w := post(t, pl, path, podBody(true, img)); w.Code != http.StatusOK {
		t.Errorf("post-swap new-benign: code %d, want 200", w.Code)
	}

	// Typed sentinel contract at the tier surface.
	if err := pl.Swap("ghost", v1); !errors.Is(err, registry.ErrUnknownWorkload) {
		t.Errorf("Swap(ghost) = %v, want ErrUnknownWorkload", err)
	}
	gen, err := pl.Generation("wl")
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Promote("wl", gen); !errors.Is(err, registry.ErrNotShadowing) {
		t.Errorf("Promote(enforcing) = %v, want ErrNotShadowing", err)
	}
	if err := pl.SetMode("wl", registry.ModeShadow); err != nil {
		t.Fatal(err)
	}
	// Shadow mode forwards would-deny traffic.
	if w := post(t, pl, path, podBody(false, img)); w.Code != http.StatusOK {
		t.Errorf("shadow would-deny: code %d, want 200 (forwarded)", w.Code)
	}
	if err := pl.Swap("wl", v1); err != nil {
		t.Fatal(err)
	}
	if err := pl.Promote("wl", gen); !errors.Is(err, registry.ErrStaleGeneration) {
		t.Errorf("Promote(stale plane gen) = %v, want ErrStaleGeneration", err)
	}
	gen, _ = pl.Generation("wl")
	if err := pl.Promote("wl", gen); err != nil {
		t.Fatalf("Promote(current gen): %v", err)
	}
	if m, _ := pl.Mode("wl"); m != registry.ModeEnforce {
		t.Errorf("mode after promote = %v", m)
	}
	if w := post(t, pl, path, podBody(true, img)); w.Code != http.StatusForbidden {
		t.Errorf("post-promote v1 attack: code %d, want 403", w.Code)
	}
}

func TestPlaneShedsFailClosed(t *testing.T) {
	pl := newTestPlane(t, 1, Config{
		Transport:   slowTransport{d: 20 * time.Millisecond},
		MaxInFlight: 2,
	})
	if err := pl.Register("wl", registry.Selector{Namespace: "prod"}, policyFor(t, "wl", false, img)); err != nil {
		t.Fatal(err)
	}
	const n = 16
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := post(t, pl, "/api/v1/namespaces/prod/pods", podBody(false, img))
			codes[i] = w.Code
		}(i)
	}
	wg.Wait()
	var ok, shed int
	for _, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Errorf("unexpected code %d under overload", c)
		}
	}
	if shed == 0 {
		t.Errorf("16 concurrent requests against MaxInFlight=2 with zero queue timeout shed nothing")
	}
	tm := pl.Metrics()
	if tm.Shed != uint64(shed) {
		t.Errorf("metrics shed %d, observed %d", tm.Shed, shed)
	}
	// A shed response is an explicit Status failure, not a silent allow.
	pl2 := newTestPlane(t, 1, Config{Transport: slowTransport{d: 50 * time.Millisecond}, MaxInFlight: 1})
	if err := pl2.Register("wl", registry.Selector{Namespace: "prod"}, policyFor(t, "wl", false, img)); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		post(t, pl2, "/api/v1/namespaces/prod/pods", podBody(false, img))
	}()
	time.Sleep(10 * time.Millisecond) // let the slot fill
	w := post(t, pl2, "/api/v1/namespaces/prod/pods", podBody(true, img))
	<-done
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("attack under saturation: code %d, want 429", w.Code)
	}
	var status struct {
		Kind   string `json:"kind"`
		Reason string `json:"reason"`
		Code   int    `json:"code"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &status); err != nil {
		t.Fatalf("shed body is not JSON: %v (%s)", err, w.Body)
	}
	if status.Kind != "Status" || status.Reason != "KubeFenceTierOverloaded" || status.Code != 429 {
		t.Errorf("shed status = %+v", status)
	}
}

func TestPlaneDrainKillRestart(t *testing.T) {
	pl := newTestPlane(t, 3, Config{})
	namespaces := []string{"a1", "b2", "c3", "d4", "e5", "f6", "g7", "h8", "i9"}
	for _, ns := range namespaces {
		if err := pl.Register("wl-"+ns, registry.Selector{Namespace: ns}, policyFor(t, "wl-"+ns, false, img)); err != nil {
			t.Fatal(err)
		}
	}
	serveAll := func(stage string) {
		t.Helper()
		for _, ns := range namespaces {
			path := "/api/v1/namespaces/" + ns + "/pods"
			if w := post(t, pl, path, podBody(false, img)); w.Code != http.StatusOK {
				t.Errorf("%s: benign %s code %d body %s", stage, ns, w.Code, w.Body)
			}
			if w := post(t, pl, path, podBody(true, img)); w.Code != http.StatusForbidden {
				t.Errorf("%s: attack %s code %d, want 403", stage, ns, w.Code)
			}
		}
	}
	serveAll("3 replicas")

	// Drain: shards move deterministically, traffic keeps flowing.
	if err := pl.Drain(1); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for _, ns := range namespaces {
		owners, _ := pl.Owners("wl-" + ns)
		if containsInt(owners, 1) {
			t.Errorf("post-drain: wl-%s still owned by drained replica (%v)", ns, owners)
		}
	}
	serveAll("after drain")

	// Kill another: a single survivor carries everything.
	if err := pl.Kill(2); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	serveAll("single survivor")

	// Restart both: the tier recovers, shards rebalance back, and the
	// restarted replicas serve the CURRENT desired state.
	if err := pl.Restart(1); err != nil {
		t.Fatalf("Restart(1): %v", err)
	}
	if err := pl.Restart(2); err != nil {
		t.Fatalf("Restart(2): %v", err)
	}
	serveAll("after restart")
	spread := map[int]bool{}
	for _, ns := range namespaces {
		owners, _ := pl.Owners("wl-" + ns)
		for _, o := range owners {
			spread[o] = true
		}
	}
	if len(spread) < 2 {
		t.Errorf("post-restart ownership not rebalanced: %v", spread)
	}
	tm := pl.Metrics()
	if tm.Resyncs != 2 {
		t.Errorf("resyncs = %d, want 2", tm.Resyncs)
	}
	// Drains and kills are deterministic: the same topology change on a
	// fresh identically-configured plane yields the same assignment.
	pl2 := newTestPlane(t, 3, Config{})
	for _, ns := range namespaces {
		if err := pl2.Register("wl-"+ns, registry.Selector{Namespace: ns}, policyFor(t, "wl-"+ns, false, img)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pl2.Drain(1); err != nil {
		t.Fatal(err)
	}
	if err := pl2.Kill(2); err != nil {
		t.Fatal(err)
	}
	if err := pl2.Restart(1); err != nil {
		t.Fatal(err)
	}
	if err := pl2.Restart(2); err != nil {
		t.Fatal(err)
	}
	for _, ns := range namespaces {
		a, _ := pl.Owners("wl-" + ns)
		b, _ := pl2.Owners("wl-" + ns)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Errorf("non-deterministic assignment for wl-%s: %v vs %v", ns, a, b)
		}
	}
}

func TestPlaneDownReplicaSheds503(t *testing.T) {
	pl := newTestPlane(t, 1, Config{})
	if err := pl.Register("wl", registry.Selector{Namespace: "prod"}, policyFor(t, "wl", false, img)); err != nil {
		t.Fatal(err)
	}
	if err := pl.Kill(0); err != nil {
		t.Fatal(err)
	}
	w := post(t, pl, "/api/v1/namespaces/prod/pods", podBody(true, img))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("attack against dead tier: code %d, want 503 (fail closed)", w.Code)
	}
	if !strings.Contains(w.Body.String(), "KubeFenceReplicaUnavailable") {
		t.Errorf("503 body = %s", w.Body)
	}
	if err := pl.Restart(0); err != nil {
		t.Fatal(err)
	}
	if w := post(t, pl, "/api/v1/namespaces/prod/pods", podBody(false, img)); w.Code != http.StatusOK {
		t.Errorf("post-restart benign: code %d body %s", w.Code, w.Body)
	}
	if w := post(t, pl, "/api/v1/namespaces/prod/pods", podBody(true, img)); w.Code != http.StatusForbidden {
		t.Errorf("post-restart attack: code %d, want 403", w.Code)
	}
}

func TestRingDeterminismAndReassignment(t *testing.T) {
	r1 := buildRing([]int{0, 1, 2, 3}, 64)
	r2 := buildRing([]int{0, 1, 2, 3}, 64)
	moved := 0
	r3 := buildRing([]int{0, 1, 3}, 64) // replica 2 gone
	perOwner := map[int]int{}
	const keys = 1000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("ns/namespace-%d", i)
		a, _ := r1.lookup(key)
		b, _ := r2.lookup(key)
		if a != b {
			t.Fatalf("ring lookup not deterministic for %s: %d vs %d", key, a, b)
		}
		perOwner[a]++
		c, ok := r3.lookup(key)
		if !ok {
			t.Fatal("3-replica ring empty")
		}
		if c == 2 {
			t.Fatalf("key %s assigned to removed replica", key)
		}
		if a != 2 && c != a {
			moved++
		}
	}
	// Consistent hashing: only the removed replica's keys move.
	if moved > keys/10 {
		t.Errorf("%d/%d keys not owned by the removed replica moved on its removal", moved, keys)
	}
	for idx, n := range perOwner {
		if n < keys/10 {
			t.Errorf("replica %d owns only %d/%d keys — virtual nodes not spreading", idx, n, keys)
		}
	}
	if _, ok := buildRing(nil, 64).lookup("ns/x"); ok {
		t.Error("empty ring lookup reported ok")
	}
}
