package attacks

import (
	"strings"
	"testing"

	"repro/internal/chart"
	"repro/internal/charts"
	"repro/internal/explore"
	"repro/internal/object"
	"repro/internal/schema"
	"repro/internal/validator"
)

func TestCatalogMatchesTableII(t *testing.T) {
	cat := Catalog()
	if len(cat) != 15 {
		t.Fatalf("catalog has %d entries, want 15 (Table II)", len(cat))
	}
	exploits, misconfigs := 0, 0
	seen := map[string]bool{}
	for _, a := range cat {
		if seen[a.ID] {
			t.Errorf("duplicate ID %s", a.ID)
		}
		seen[a.ID] = true
		switch a.Category {
		case Exploit:
			exploits++
			if a.CVE == "" {
				t.Errorf("%s: exploit without CVE", a.ID)
			}
			if !strings.HasPrefix(a.ID, "E") {
				t.Errorf("%s: exploit with misconfig ID", a.ID)
			}
		case Misconfiguration:
			misconfigs++
			if a.CVE != "" {
				t.Errorf("%s: misconfiguration with CVE", a.ID)
			}
		}
		if len(a.TargetFields) == 0 || len(a.Kinds) == 0 || a.Inject == nil {
			t.Errorf("%s: incomplete entry", a.ID)
		}
	}
	if exploits != 8 || misconfigs != 7 {
		t.Errorf("exploits = %d, misconfigs = %d; want 8 and 7", exploits, misconfigs)
	}
}

func TestLookup(t *testing.T) {
	a, ok := Lookup("E4")
	if !ok || a.CVE != "CVE-2017-1002101" {
		t.Errorf("Lookup(E4) = %+v, %v", a, ok)
	}
	if _, ok := Lookup("E99"); ok {
		t.Error("unknown ID should not resolve")
	}
}

func legitimateDeployment(t *testing.T) object.Object {
	t.Helper()
	c := charts.MustLoad("nginx")
	files, err := c.Render(nil, chart.ReleaseOptions{Name: "rel", Namespace: "default"})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range chart.Objects(files) {
		if o.Kind() == "Deployment" {
			return o
		}
	}
	t.Fatal("no deployment rendered")
	return nil
}

func TestCraftDoesNotMutateOriginal(t *testing.T) {
	legit := legitimateDeployment(t)
	before, err := legit.MarshalYAML()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := Lookup("E1")
	evil, err := a.Craft(legit)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := object.Get(evil, "spec.template.spec.hostNetwork"); v != true {
		t.Error("injection missing from crafted manifest")
	}
	after, _ := legit.MarshalYAML()
	if string(before) != string(after) {
		t.Error("Craft mutated the legitimate manifest")
	}
}

func TestCraftRejectsInapplicableKind(t *testing.T) {
	svc := object.Object{"kind": "Service", "apiVersion": "v1",
		"metadata": map[string]any{"name": "s"}}
	e1, _ := Lookup("E1")
	if _, err := e1.Craft(svc); err == nil {
		t.Error("E1 must not apply to Service")
	}
	e2, _ := Lookup("E2")
	dep := legitimateDeployment(t)
	if _, err := e2.Craft(dep); err == nil {
		t.Error("E2 must not apply to Deployment")
	}
}

func TestPodSpecPathPerKind(t *testing.T) {
	tests := []struct {
		kind string
		path string
	}{
		{"Pod", "spec"},
		{"Deployment", "spec.template.spec"},
		{"CronJob", "spec.jobTemplate.spec.template.spec"},
	}
	for _, tt := range tests {
		got, ok := PodSpecPath(tt.kind)
		if !ok || got != tt.path {
			t.Errorf("PodSpecPath(%s) = %q, %v", tt.kind, got, ok)
		}
	}
	if _, ok := PodSpecPath("Service"); ok {
		t.Error("Service has no pod spec")
	}
}

// TestEveryAttackBlockedByKubeFencePolicy is the Table III property at the
// validator level: every catalog entry, injected into each workload's
// legitimate manifests, must violate that workload's generated policy.
func TestEveryAttackBlockedByKubeFencePolicy(t *testing.T) {
	for _, name := range charts.Names() {
		t.Run(name, func(t *testing.T) {
			c := charts.MustLoad(name)
			s, err := schema.Generate(c, schema.Options{})
			if err != nil {
				t.Fatal(err)
			}
			var corpus []object.Object
			for _, v := range explore.Variants(s) {
				files, err := c.RenderWithValues(v, chart.ReleaseOptions{Name: "kfrelease"})
				if err != nil {
					t.Fatal(err)
				}
				corpus = append(corpus, chart.Objects(files)...)
			}
			policy, err := validator.Build(corpus, validator.BuildOptions{
				Workload: name, ReleaseName: "kfrelease",
			})
			if err != nil {
				t.Fatal(err)
			}

			files, err := c.Render(nil, chart.ReleaseOptions{Name: "prod", Namespace: "prod"})
			if err != nil {
				t.Fatal(err)
			}
			legit := chart.Objects(files)

			for _, a := range Catalog() {
				target, ok := a.SelectTarget(legit)
				if !ok {
					t.Errorf("%s: no applicable target in %s manifests", a.ID, name)
					continue
				}
				evil, err := a.Craft(target)
				if err != nil {
					t.Errorf("%s: craft: %v", a.ID, err)
					continue
				}
				violations := policy.Validate(evil)
				if len(violations) == 0 {
					t.Errorf("%s (%s) NOT blocked for workload %s (target %s)",
						a.ID, a.Name, name, target.Kind())
				}
			}
		})
	}
}
