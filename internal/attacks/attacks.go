// Package attacks implements the paper's catalog of 15 malicious
// Kubernetes specifications (Table II): 8 CVE exploits (E1–E8) and 7
// misconfigurations (M1–M7). Each entry injects its malicious field into a
// legitimate manifest taken from an operator's rendered output, producing
// the attack requests submitted in the Table III experiment.
package attacks

import (
	"fmt"

	"repro/internal/object"
)

// Category distinguishes CVE exploits from misconfigurations.
type Category string

// Attack categories.
const (
	Exploit          Category = "exploit"
	Misconfiguration Category = "misconfiguration"
)

// Attack is one catalog entry.
type Attack struct {
	// ID is the paper's identifier (E1–E8, M1–M7).
	ID string
	// Name describes the exploit or misconfiguration.
	Name string
	// CVE is the CVE identifier for exploits, "" for misconfigurations.
	CVE string
	// Category classifies the entry.
	Category Category
	// TargetFields lists the API fields abused (Table II column 3).
	TargetFields []string
	// Kinds lists the resource kinds the malicious field applies to.
	Kinds []string
	// Reference cites the paper's source for the entry.
	Reference string
	// Inject mutates a legitimate manifest of an applicable kind into the
	// malicious request.
	Inject func(o object.Object) error
}

// podBearingKinds are the kinds embedding a PodSpec (Table II: "Pod and
// higher-level abstractions like Deployment, ReplicaSet, StatefulSet, and
// DaemonSet").
func podBearingKinds() []string {
	return []string{"Pod", "Deployment", "StatefulSet", "DaemonSet", "ReplicaSet", "Job", "CronJob"}
}

// PodSpecPath returns the dotted path of the PodSpec within a kind, or
// false if the kind embeds none.
func PodSpecPath(kind string) (string, bool) {
	switch kind {
	case "Pod":
		return "spec", true
	case "Deployment", "StatefulSet", "DaemonSet", "ReplicaSet", "Job":
		return "spec.template.spec", true
	case "CronJob":
		return "spec.jobTemplate.spec.template.spec", true
	default:
		return "", false
	}
}

// podSpec resolves the PodSpec map of a manifest.
func podSpec(o object.Object) (map[string]any, error) {
	path, ok := PodSpecPath(o.Kind())
	if !ok {
		return nil, fmt.Errorf("attacks: kind %s has no pod spec", o.Kind())
	}
	spec, ok := object.GetMap(o, path)
	if !ok {
		return nil, fmt.Errorf("attacks: %s %s: no pod spec at %s", o.Kind(), o.Name(), path)
	}
	return spec, nil
}

// containers returns the PodSpec's main containers.
func containers(o object.Object) ([]map[string]any, error) {
	spec, err := podSpec(o)
	if err != nil {
		return nil, err
	}
	items, ok := spec["containers"].([]any)
	if !ok || len(items) == 0 {
		return nil, fmt.Errorf("attacks: %s %s has no containers", o.Kind(), o.Name())
	}
	out := make([]map[string]any, 0, len(items))
	for _, it := range items {
		m, ok := it.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("attacks: malformed container entry")
		}
		out = append(out, m)
	}
	return out, nil
}

func securityContext(c map[string]any) map[string]any {
	sc, ok := c["securityContext"].(map[string]any)
	if !ok {
		sc = map[string]any{}
		c["securityContext"] = sc
	}
	return sc
}

// setPodSpecField writes a field at the PodSpec level.
func setPodSpecField(o object.Object, field string, v any) error {
	spec, err := podSpec(o)
	if err != nil {
		return err
	}
	spec[field] = v
	return nil
}

// Catalog returns the 15 attacks of Table II, in paper order.
func Catalog() []Attack {
	return []Attack{
		{
			ID:           "E1",
			Name:         "Activation of hostNetwork",
			CVE:          "CVE-2020-15257",
			Category:     Exploit,
			TargetFields: []string{"hostNetwork"},
			Kinds:        podBearingKinds(),
			Reference:    "https://nvd.nist.gov/vuln/detail/cve-2020-15257",
			Inject: func(o object.Object) error {
				// containerd-shim abstract socket reachable from host netns.
				return setPodSpecField(o, "hostNetwork", true)
			},
		},
		{
			ID:           "E2",
			Name:         "Abusing LoadBalancer or ExternalIPs",
			CVE:          "CVE-2020-8554",
			Category:     Exploit,
			TargetFields: []string{"externalIPs"},
			Kinds:        []string{"Service"},
			Reference:    "https://nvd.nist.gov/vuln/detail/cve-2020-8554",
			Inject: func(o object.Object) error {
				// Man-in-the-middle via patched Service externalIPs.
				return object.Set(o, "spec.externalIPs", []any{"203.0.113.7"})
			},
		},
		{
			ID:       "E3",
			Name:     "Command injection via volume and volumeMounts",
			CVE:      "CVE-2023-3676",
			Category: Exploit,
			TargetFields: []string{
				"containers.volumeMounts.subPath",
				"containers.volumes.subPath",
			},
			Kinds:     podBearingKinds(),
			Reference: "https://nvd.nist.gov/vuln/detail/cve-2023-3676",
			Inject: func(o object.Object) error {
				cs, err := containers(o)
				if err != nil {
					return err
				}
				cs[0]["volumeMounts"] = append(volumeMountsOf(cs[0]), map[string]any{
					"name":      "kf-e3",
					"mountPath": "/injected",
					"subPath":   `$(Get-Content C:\\secrets)`,
				})
				return appendVolume(o, map[string]any{
					"name":     "kf-e3",
					"emptyDir": map[string]any{},
				})
			},
		},
		{
			ID:           "E4",
			Name:         "Mount subPath on a file or emptyDir",
			CVE:          "CVE-2017-1002101",
			Category:     Exploit,
			TargetFields: []string{"containers.volumeMounts.subPath"},
			Kinds:        podBearingKinds(),
			Reference:    "https://nvd.nist.gov/vuln/detail/cve-2017-1002101",
			Inject: func(o object.Object) error {
				// The paper's Fig. 4: init container plants a symlink to /,
				// main container mounts it as a subPath.
				spec, err := podSpec(o)
				if err != nil {
					return err
				}
				spec["initContainers"] = []any{map[string]any{
					"name":    "busybox",
					"image":   "busybox",
					"command": []any{"ln", "-s", "/", "/mnt/data/symlink-door"},
					"volumeMounts": []any{map[string]any{
						"name":      "kf-e4",
						"mountPath": "/mnt/data",
					}},
				}}
				cs, err := containers(o)
				if err != nil {
					return err
				}
				cs[0]["volumeMounts"] = append(volumeMountsOf(cs[0]), map[string]any{
					"name":      "kf-e4",
					"mountPath": "/test",
					"subPath":   "symlink-door",
				})
				return appendVolume(o, map[string]any{
					"name":     "kf-e4",
					"emptyDir": map[string]any{},
				})
			},
		},
		{
			ID:           "E5",
			Name:         "Absent Resource Limit",
			CVE:          "CVE-2019-11253",
			Category:     Exploit,
			TargetFields: []string{"containers.resources.limits"},
			Kinds:        podBearingKinds(),
			Reference:    "https://nvd.nist.gov/vuln/detail/cve-2019-11253",
			Inject: func(o object.Object) error {
				// Strip resource limits so a parsing bomb can exhaust the
				// node unbounded.
				cs, err := containers(o)
				if err != nil {
					return err
				}
				for _, c := range cs {
					if res, ok := c["resources"].(map[string]any); ok {
						delete(res, "limits")
					} else {
						c["resources"] = map[string]any{}
					}
				}
				return nil
			},
		},
		{
			ID:           "E6",
			Name:         "Symlink exchange allows host filesystem access",
			CVE:          "CVE-2021-25741",
			Category:     Exploit,
			TargetFields: []string{"container.command"},
			Kinds:        podBearingKinds(),
			Reference:    "https://nvd.nist.gov/vuln/detail/cve-2021-25741",
			Inject: func(o object.Object) error {
				cs, err := containers(o)
				if err != nil {
					return err
				}
				cs[0]["command"] = []any{
					"sh", "-c",
					"while true; do ln -sfn / /vol/sym; ln -sfn /dev/null /vol/sym; done",
				}
				return nil
			},
		},
		{
			ID:           "E7",
			Name:         "Bypass of Seccomp Profile",
			CVE:          "CVE-2023-2431",
			Category:     Exploit,
			TargetFields: []string{"containers.securityContext.seccompProfile.localhostProfile"},
			Kinds:        podBearingKinds(),
			Reference:    "https://nvd.nist.gov/vuln/detail/cve-2023-2431",
			Inject: func(o object.Object) error {
				cs, err := containers(o)
				if err != nil {
					return err
				}
				securityContext(cs[0])["seccompProfile"] = map[string]any{
					"type":             "Localhost",
					"localhostProfile": "",
				}
				return nil
			},
		},
		{
			ID:           "E8",
			Name:         "Privileged Containers",
			CVE:          "CVE-2021-21334",
			Category:     Exploit,
			TargetFields: []string{"containers.securityContext.privileged"},
			Kinds:        podBearingKinds(),
			Reference:    "https://nvd.nist.gov/vuln/detail/cve-2021-21334",
			Inject: func(o object.Object) error {
				cs, err := containers(o)
				if err != nil {
					return err
				}
				securityContext(cs[0])["privileged"] = true
				return nil
			},
		},
		{
			ID:           "M1",
			Name:         "Activation of hostIPC",
			Category:     Misconfiguration,
			TargetFields: []string{"hostIPC"},
			Kinds:        podBearingKinds(),
			Reference:    "NSA/CISA Kubernetes Hardening Guide",
			Inject: func(o object.Object) error {
				return setPodSpecField(o, "hostIPC", true)
			},
		},
		{
			ID:           "M2",
			Name:         "Activation of hostPID",
			Category:     Misconfiguration,
			TargetFields: []string{"hostPID"},
			Kinds:        podBearingKinds(),
			Reference:    "NSA/CISA Kubernetes Hardening Guide",
			Inject: func(o object.Object) error {
				return setPodSpecField(o, "hostPID", true)
			},
		},
		{
			ID:           "M3",
			Name:         "Disable Readonly Filesystem",
			Category:     Misconfiguration,
			TargetFields: []string{"containers.securityContext.readOnlyRootFilesystem"},
			Kinds:        podBearingKinds(),
			Reference:    "NSA/CISA Kubernetes Hardening Guide",
			Inject: func(o object.Object) error {
				cs, err := containers(o)
				if err != nil {
					return err
				}
				securityContext(cs[0])["readOnlyRootFilesystem"] = false
				return nil
			},
		},
		{
			ID:       "M4",
			Name:     "Running Containers as Root",
			Category: Misconfiguration,
			TargetFields: []string{
				"containers.securityContext.runAsNonRoot",
				"containers.securityContext.runAsRootAllowed",
			},
			Kinds:     podBearingKinds(),
			Reference: "NSA/CISA Kubernetes Hardening Guide",
			Inject: func(o object.Object) error {
				cs, err := containers(o)
				if err != nil {
					return err
				}
				sc := securityContext(cs[0])
				sc["runAsNonRoot"] = false
				return nil
			},
		},
		{
			ID:           "M5",
			Name:         "Allow Dangerous Capabilities to Containers",
			Category:     Misconfiguration,
			TargetFields: []string{"containers.securityContext.capabilities.add"},
			Kinds:        podBearingKinds(),
			Reference:    "NSA/CISA Kubernetes Hardening Guide",
			Inject: func(o object.Object) error {
				cs, err := containers(o)
				if err != nil {
					return err
				}
				securityContext(cs[0])["capabilities"] = map[string]any{
					"add": []any{"SYS_ADMIN", "NET_RAW"},
				}
				return nil
			},
		},
		{
			ID:           "M6",
			Name:         "Escalated Privileges for Child Container Processes",
			Category:     Misconfiguration,
			TargetFields: []string{"containers.securityContext.allowPrivilegeEscalation"},
			Kinds:        podBearingKinds(),
			Reference:    "NSA/CISA Kubernetes Hardening Guide",
			Inject: func(o object.Object) error {
				cs, err := containers(o)
				if err != nil {
					return err
				}
				securityContext(cs[0])["allowPrivilegeEscalation"] = true
				return nil
			},
		},
		{
			ID:       "M7",
			Name:     "Custom SELinux user or role",
			Category: Misconfiguration,
			TargetFields: []string{
				"containers.securityContext.seLinuxOptions.user",
				"containers.securityContext.seLinuxOptions.role",
			},
			Kinds:     podBearingKinds(),
			Reference: "NSA/CISA Kubernetes Hardening Guide",
			Inject: func(o object.Object) error {
				cs, err := containers(o)
				if err != nil {
					return err
				}
				securityContext(cs[0])["seLinuxOptions"] = map[string]any{
					"user": "system_u",
					"role": "system_r",
				}
				return nil
			},
		},
	}
}

func volumeMountsOf(c map[string]any) []any {
	vm, _ := c["volumeMounts"].([]any)
	return vm
}

func appendVolume(o object.Object, vol map[string]any) error {
	spec, err := podSpec(o)
	if err != nil {
		return err
	}
	vols, _ := spec["volumes"].([]any)
	spec["volumes"] = append(vols, vol)
	return nil
}

// Lookup returns the attack with the given ID.
func Lookup(id string) (Attack, bool) {
	for _, a := range Catalog() {
		if a.ID == id {
			return a, true
		}
	}
	return Attack{}, false
}

// Applicable reports whether the attack can be injected into a manifest
// of the given kind.
func (a Attack) Applicable(kind string) bool {
	for _, k := range a.Kinds {
		if k == kind {
			return true
		}
	}
	return false
}

// Craft deep-copies the legitimate manifest and injects the attack.
func (a Attack) Craft(legit object.Object) (object.Object, error) {
	if !a.Applicable(legit.Kind()) {
		return nil, fmt.Errorf("attacks: %s does not apply to kind %s", a.ID, legit.Kind())
	}
	evil := legit.DeepCopy()
	if err := a.Inject(evil); err != nil {
		return nil, fmt.Errorf("attacks: crafting %s: %w", a.ID, err)
	}
	return evil, nil
}

// SelectTarget picks, from a workload's rendered manifests, the
// legitimate object the attack is injected into: the first applicable
// kind in installation-priority order (the paper injects into the
// resource types that support the malicious field).
func (a Attack) SelectTarget(objs []object.Object) (object.Object, bool) {
	// Prefer the primary workload kinds so pod-spec attacks land on the
	// operator's main controller.
	preference := []string{"Deployment", "StatefulSet", "Job", "CronJob", "Pod", "Service"}
	for _, kind := range preference {
		if !a.Applicable(kind) {
			continue
		}
		for _, o := range objs {
			if o.Kind() == kind {
				return o, true
			}
		}
	}
	for _, o := range objs {
		if a.Applicable(o.Kind()) {
			return o, true
		}
	}
	return nil, false
}
