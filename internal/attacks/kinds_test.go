package attacks

import (
	"testing"

	"repro/internal/object"
)

// cronJobManifest exercises the deepest PodSpec path
// (spec.jobTemplate.spec.template.spec).
func cronJobManifest(t *testing.T) object.Object {
	t.Helper()
	o, err := object.ParseManifest([]byte(`
apiVersion: batch/v1
kind: CronJob
metadata:
  name: backup
spec:
  schedule: "0 2 * * *"
  jobTemplate:
    spec:
      template:
        spec:
          containers:
          - name: dump
            image: corp/dump:1.0
            resources:
              limits:
                cpu: 100m
`))
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func podManifest(t *testing.T) object.Object {
	t.Helper()
	o, err := object.ParseManifest([]byte(`
apiVersion: v1
kind: Pod
metadata:
  name: one-off
spec:
  containers:
  - name: task
    image: corp/task:1.0
    resources:
      limits:
        cpu: 50m
`))
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestInjectionAcrossPodBearingKinds(t *testing.T) {
	targets := map[string]object.Object{
		"CronJob": cronJobManifest(t),
		"Pod":     podManifest(t),
	}
	for kind, target := range targets {
		for _, a := range Catalog() {
			if !a.Applicable(kind) {
				continue
			}
			evil, err := a.Craft(target)
			if err != nil {
				t.Errorf("%s on %s: %v", a.ID, kind, err)
				continue
			}
			// The malicious field landed somewhere under the PodSpec.
			path, _ := PodSpecPath(kind)
			spec, ok := object.GetMap(evil, path)
			if !ok {
				t.Errorf("%s on %s: pod spec vanished", a.ID, kind)
				continue
			}
			if object.Equal(spec, mustPodSpec(t, target, path)) {
				t.Errorf("%s on %s: injection was a no-op", a.ID, kind)
			}
		}
	}
}

func mustPodSpec(t *testing.T, o object.Object, path string) map[string]any {
	t.Helper()
	m, ok := object.GetMap(o, path)
	if !ok {
		t.Fatalf("no pod spec at %s", path)
	}
	return m
}

func TestE5RemovesLimitsEverywhere(t *testing.T) {
	e5, _ := Lookup("E5")
	evil, err := e5.Craft(cronJobManifest(t))
	if err != nil {
		t.Fatal(err)
	}
	cs, _ := object.GetSlice(evil, "spec.jobTemplate.spec.template.spec.containers")
	res := cs[0].(map[string]any)["resources"].(map[string]any)
	if _, has := res["limits"]; has {
		t.Error("E5 should strip limits")
	}
}

func TestE4BuildsFig4Structure(t *testing.T) {
	e4, _ := Lookup("E4")
	evil, err := e4.Craft(podManifest(t))
	if err != nil {
		t.Fatal(err)
	}
	ics, ok := object.GetSlice(evil, "spec.initContainers")
	if !ok || len(ics) != 1 {
		t.Fatalf("initContainers = %v", ics)
	}
	cmd := ics[0].(map[string]any)["command"].([]any)
	if cmd[0] != "ln" {
		t.Errorf("init command = %v", cmd)
	}
	cs, _ := object.GetSlice(evil, "spec.containers")
	vms := cs[0].(map[string]any)["volumeMounts"].([]any)
	last := vms[len(vms)-1].(map[string]any)
	if last["subPath"] != "symlink-door" {
		t.Errorf("volumeMount = %v", last)
	}
	vols, _ := object.GetSlice(evil, "spec.volumes")
	if len(vols) == 0 {
		t.Error("no volume added")
	}
}

func TestInjectErrorsOnMalformedTarget(t *testing.T) {
	// A pod-bearing kind without containers cannot host most injections.
	broken := object.Object{
		"apiVersion": "v1", "kind": "Pod",
		"metadata": map[string]any{"name": "x"},
		"spec":     map[string]any{},
	}
	for _, id := range []string{"E3", "E5", "E8", "M4"} {
		a, _ := Lookup(id)
		if _, err := a.Craft(broken); err == nil {
			t.Errorf("%s should fail without containers", id)
		}
	}
	// But PodSpec-level attacks still work.
	e1, _ := Lookup("E1")
	if _, err := e1.Craft(broken); err != nil {
		t.Errorf("E1 should work on empty spec: %v", err)
	}
}
