package attacks

import (
	"testing"

	"repro/internal/chart"
	"repro/internal/charts"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/object"
	"repro/internal/schema"
	"repro/internal/validator"
)

// ablationChart declares runAsNonRoot directly (no enabling gate), so the
// boolean exploration renders BOTH values into manifests. Without locks,
// {true, false} both enter the consolidated enum and the M4 flip becomes
// a legal request — isolating exactly what the locks contribute.
func ablationChart(t *testing.T) *chart.Chart {
	t.Helper()
	c, err := chart.Load(chart.Fileset{
		"Chart.yaml": "name: abl\nversion: 0.1.0\n",
		"values.yaml": `
runAsNonRoot: true
image:
  registry: docker.io
  repository: corp/abl
  tag: "1.0"
`,
		"templates/deploy.yaml": `
apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ .Release.Name }}-abl
spec:
  replicas: 1
  template:
    spec:
      containers:
        - name: app
          image: "{{ .Values.image.registry }}/{{ .Values.image.repository }}:{{ .Values.image.tag }}"
          resources:
            limits:
              cpu: 100m
          securityContext:
            runAsNonRoot: {{ .Values.runAsNonRoot }}
`,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// buildAblation generates a policy with each lock layer independently
// toggled.
func buildAblation(t *testing.T, schemaLocks, validatorLocks bool) *validator.Validator {
	t.Helper()
	c := ablationChart(t)
	s, err := schema.Generate(c, schema.Options{DisableLocks: !schemaLocks})
	if err != nil {
		t.Fatal(err)
	}
	var corpus []object.Object
	for _, v := range explore.Variants(s) {
		files, err := c.RenderWithValues(v, chart.ReleaseOptions{Name: "kfrelease"})
		if err != nil {
			t.Fatal(err)
		}
		corpus = append(corpus, chart.Objects(files)...)
	}
	opts := validator.BuildOptions{Workload: "abl", ReleaseName: "kfrelease"}
	if !validatorLocks {
		opts.Locks = []validator.LockSpec{} // non-nil empty disables defaults
	}
	pol, err := validator.Build(corpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	return pol
}

func m4Attack(t *testing.T) object.Object {
	t.Helper()
	c := ablationChart(t)
	files, err := c.Render(nil, chart.ReleaseOptions{Name: "prod"})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := Lookup("M4")
	evil, err := a.Craft(chart.Objects(files)[0])
	if err != nil {
		t.Fatal(err)
	}
	return evil
}

// TestAblationLockLayers isolates the contribution of each lock layer
// (DESIGN.md §6, last ablation). The finding: the schema-phase lock is
// the load-bearing one. It pins the value *before* exploration, so no
// variant ever renders the unsafe value. The validator-phase LockSpec
// only marks observed constants as locked — if exploration already
// rendered runAsNonRoot=false (schema locks off), the unsafe value is in
// the observed set and the "lock" happily allows it. Defense in depth
// holds only in the direction schema → validator.
func TestAblationLockLayers(t *testing.T) {
	evil := m4Attack(t)
	tests := []struct {
		name                        string
		schemaLocks, validatorLocks bool
		wantBlocked                 bool
	}{
		{"both layers", true, true, true},
		{"schema locks only", true, false, true},
		// Validator locks pin to observed values; the unsafe value was
		// observed, so the flip is (unsafely) legal.
		{"validator locks only", false, true, false},
		{"no locks", false, false, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			pol := buildAblation(t, tt.schemaLocks, tt.validatorLocks)
			blocked := len(pol.Validate(evil)) > 0
			if blocked != tt.wantBlocked {
				t.Errorf("blocked = %v, want %v (violations: %v)",
					blocked, tt.wantBlocked, pol.Validate(evil))
			}
		})
	}
}

// TestAblationSchemaLocksNecessaryOnCorpus shows why schema-phase locks
// are not optional on the evaluation corpus: without them, exploration
// renders both branches of security booleans (the structure sweep opens
// every gate), so the boolean whose *unsafe* direction is true —
// allowPrivilegeEscalation — enters the allowed domain and M6 becomes a
// legal request. Booleans whose safe value is true (runAsNonRoot,
// readOnlyRootFilesystem) happen to stay safe because the gate-open sweep
// coincides with their safe direction, and every structural attack
// (unknown fields) remains blocked either way.
func TestAblationSchemaLocksNecessaryOnCorpus(t *testing.T) {
	res, err := core.GeneratePolicy(charts.MustLoad("nginx"), core.Options{
		Schema: schema.Options{DisableLocks: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	files, err := charts.MustLoad("nginx").Render(nil, chart.ReleaseOptions{Name: "rel"})
	if err != nil {
		t.Fatal(err)
	}
	legit := chart.Objects(files)
	var slipped []string
	for _, a := range Catalog() {
		target, ok := a.SelectTarget(legit)
		if !ok {
			continue
		}
		evil, err := a.Craft(target)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Validator.Validate(evil)) == 0 {
			slipped = append(slipped, a.ID)
		}
	}
	if len(slipped) != 1 || slipped[0] != "M6" {
		t.Errorf("slipped = %v, want exactly [M6] (allowPrivilegeEscalation flip)", slipped)
	}
}

// TestAblationLocksDoNotBreakLegitimateTraffic: the locked policy stays
// sound for the workload's own manifests.
func TestAblationLocksDoNotBreakLegitimateTraffic(t *testing.T) {
	res, err := core.GeneratePolicy(charts.MustLoad("nginx"), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	files, err := charts.MustLoad("nginx").Render(nil, chart.ReleaseOptions{Name: "other", Namespace: "elsewhere"})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range chart.Objects(files) {
		if vs := res.Validator.Validate(o); len(vs) != 0 {
			t.Errorf("%s denied: %v", o.Kind(), vs)
		}
	}
}
