// Package telemetry is the runtime observability plane: lock-free,
// allocation-free counters and latency histograms recorded inline on
// the enforcement hot path, a sampled per-decision trace ring, and a
// Prometheus text-format exposition surface.
//
// The design constraint is the same one the decode-free pipeline lives
// under: the allowed fast path admits requests in ~1-2µs with zero
// allocations, and recording a decision must not change that. So the
// hub keeps NO locks on the record path: per-workload state is an
// immutable map published through an atomic pointer (copy-on-write on
// the first decision a workload ever records — a one-time slow path),
// and every cell is striped across cache-line-padded shards indexed by
// the decision's own duration bits, so concurrent request goroutines
// rarely contend on one counter line. Histograms use fixed power-of-two
// bucket bounds: recording is one subtract, one shift, one bits.Len64
// and three atomic adds, and p50/p90/p99 are derived from the bucket
// counts at scrape time, where allocating is fine.
//
// Scrapes (Snapshot, WriteMetrics) run concurrently with recording and
// never block it; a snapshot is a best-effort sum taken while writers
// run, exact once they quiesce — the same contract as
// registry.BoundedLog.
package telemetry

import (
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Verdict is the outcome class of one recorded decision. Proxy-level
// decisions use Allowed..Rejected; the plane front door records its
// routing outcomes under Routed..Unavailable.
type Verdict uint8

const (
	// VerdictAllowed is a policy-conforming request forwarded upstream.
	VerdictAllowed Verdict = iota
	// VerdictDenied is a policy violation rejected with 403.
	VerdictDenied
	// VerdictShadowed is a shadow-mode would-deny (forwarded).
	VerdictShadowed
	// VerdictLearned is a learn-mode request fed to the miner.
	VerdictLearned
	// VerdictRejected is a transport-level fail-closed denial
	// (unresolvable, undecodable, unsupported type) — not a policy
	// verdict.
	VerdictRejected
	// VerdictRouted is a front-door request handed to a replica proxy.
	VerdictRouted
	// VerdictShed is a front-door request shed with 429 (backpressure).
	VerdictShed
	// VerdictUnavailable is a front-door request refused with 503 (dead
	// or missing replica).
	VerdictUnavailable

	numVerdicts = int(VerdictUnavailable) + 1
)

// String names the verdict as its metric label value.
func (v Verdict) String() string {
	if int(v) < len(verdictNames) {
		return verdictNames[v]
	}
	return "unknown"
}

var verdictNames = [numVerdicts]string{
	"allowed", "denied", "shadowed", "learned", "rejected",
	"routed", "shed", "unavailable",
}

// Path is the pipeline a decision took: raw (decided straight off the
// wire bytes — streaming scan, cache probe, raw match) or decoded (the
// classic decode + validate path). Front-door records use PathRaw; the
// front door never decodes a body it routes.
type Path uint8

const (
	// PathRaw is the decode-free streaming pipeline.
	PathRaw Path = iota
	// PathDecoded is the classic decode-first pipeline.
	PathDecoded

	numPaths = int(PathDecoded) + 1
)

// String names the path as its metric label value.
func (p Path) String() string {
	if p == PathRaw {
		return "raw"
	}
	return "decoded"
}

// Histogram bucket layout: power-of-two bounds in nanoseconds, from
// 2^bucketShift up, with the last bucket catching everything larger
// (+Inf). Bucket i counts durations d with bound(i-1) < d <= bound(i),
// bound(i) = 2^(bucketShift+i) ns — so 256ns, 512ns, ... ~4.3s, +Inf.
const (
	bucketShift = 8 // first bound 2^8 ns = 256ns
	// NumBuckets is the fixed bucket count of every histogram,
	// including the +Inf overflow bucket.
	NumBuckets = 26
)

// bucketIndex places a duration: the smallest bucket whose upper bound
// is >= d. Exact powers of two land on their own bound (Prometheus
// `le` semantics are inclusive).
func bucketIndex(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	idx := bits.Len64(uint64(d-1) >> bucketShift)
	if idx >= NumBuckets {
		return NumBuckets - 1
	}
	return idx
}

// BucketBound returns bucket i's inclusive upper bound in nanoseconds,
// or -1 for the +Inf overflow bucket.
func BucketBound(i int) int64 {
	if i >= NumBuckets-1 {
		return -1
	}
	return 1 << (bucketShift + i)
}

// numCells is the fixed (verdict, path) label matrix per workload.
const numCells = numVerdicts * numPaths

func cellIndex(v Verdict, p Path) int { return int(v)*numPaths + int(p) }

// shard is one stripe of a workload's counter/histogram state. The
// leading pad keeps two shards' hot fields off one cache line.
type shard struct {
	_      [8]uint64 // cache-line pad between consecutive shards
	count  [numCells]atomic.Uint64
	sumNs  [numCells]atomic.Uint64
	bucket [numCells][NumBuckets]atomic.Uint64
}

// workloadTel is one workload's sharded recording state; immutable
// once published (the shard contents mutate, the struct does not).
type workloadTel struct {
	name   string
	shards []shard
}

// Config configures a Hub.
type Config struct {
	// SampleEvery traces one of every N recorded decisions onto the
	// bounded trace ring (1 traces everything, 0 disables tracing).
	SampleEvery int
	// TraceRing bounds the retained trace records (default 256;
	// newest-kept when full).
	TraceRing int
	// Shards is the per-workload counter stripe count, rounded up to a
	// power of two (default: GOMAXPROCS rounded up, capped at 16).
	Shards int
}

// Hub is one process's telemetry registry: per-workload sharded
// counters and histograms plus the sampled trace ring. A nil *Hub is
// a valid no-op recorder, so callers gate telemetry on a single nil
// check. All methods are safe for concurrent use.
type Hub struct {
	shards    int
	shardMask uint64

	// workloads is the immutable name -> state map the record path
	// reads; misses take mu and republish a copy (once per workload).
	workloads atomic.Pointer[map[string]*workloadTel]
	mu        sync.Mutex

	sampleEvery uint64
	sampleCtr   atomic.Uint64
	sampled     atomic.Uint64
	ring        *traceRing
	ctxPool     sync.Pool
}

// New builds a Hub.
func New(cfg Config) *Hub {
	shards := cfg.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > 16 {
		shards = 16
	}
	// Round up to a power of two so shard picking is a mask.
	n := 1
	for n < shards {
		n <<= 1
	}
	ringSize := cfg.TraceRing
	if ringSize <= 0 {
		ringSize = 256
	}
	h := &Hub{
		shards:      n,
		shardMask:   uint64(n - 1),
		sampleEvery: uint64(max(cfg.SampleEvery, 0)),
		ring:        newTraceRing(ringSize),
	}
	h.ctxPool.New = func() any { return new(TraceCtx) }
	empty := map[string]*workloadTel{}
	h.workloads.Store(&empty)
	return h
}

// SampleEvery reports the configured trace sampling rate (0 = off).
func (h *Hub) SampleEvery() int {
	if h == nil {
		return 0
	}
	return int(h.sampleEvery)
}

// workload returns the workload's recording state, creating and
// publishing it on first use (the only locked path; once per workload
// per hub lifetime). The read side is one atomic load and one map
// probe — no locks, no allocations.
func (h *Hub) workload(name string) *workloadTel {
	m := *h.workloads.Load()
	if wt, ok := m[name]; ok {
		return wt
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	m = *h.workloads.Load()
	if wt, ok := m[name]; ok {
		return wt
	}
	wt := &workloadTel{name: name, shards: make([]shard, h.shards)}
	next := make(map[string]*workloadTel, len(m)+1)
	for k, v := range m {
		next[k] = v
	}
	next[name] = wt
	h.workloads.Store(&next)
	return wt
}

// RegisterWorkload pre-creates a workload's recording state so its
// first recorded decision stays on the allocation-free path.
func (h *Hub) RegisterWorkload(name string) {
	if h != nil {
		h.workload(name)
	}
}

// RecordDecision records one decision: the (workload, verdict, path)
// counter and its latency histogram. Lock-free and allocation-free
// after the workload's first record; safe from any number of
// goroutines. The stripe is picked from the duration's own bits —
// per-decision entropy that costs nothing to obtain.
func (h *Hub) RecordDecision(workload string, v Verdict, p Path, d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	wt := h.workload(workload)
	n := uint64(d)
	sh := &wt.shards[(n^n>>7^n>>14)&h.shardMask]
	ci := cellIndex(v, p)
	sh.count[ci].Add(1)
	sh.sumNs[ci].Add(n)
	sh.bucket[ci][bucketIndex(d)].Add(1)
}

// Load sums one workload's decision cells — decisions recorded and
// total decision nanoseconds across every (verdict, path) cell —
// without building a snapshot. This is the load-cell read path: the
// plane's weighted placer derives per-workload load scores (request
// share × mean decision cost) from these totals on every rebalance
// tick, so the read is lock-free and allocation-free. A nil hub and an
// unrecorded workload both report zero load.
func (h *Hub) Load(workload string) (count, sumNs uint64) {
	if h == nil {
		return 0, 0
	}
	m := *h.workloads.Load()
	wt, ok := m[workload]
	if !ok {
		return 0, 0
	}
	for i := range wt.shards {
		sh := &wt.shards[i]
		for ci := 0; ci < numCells; ci++ {
			count += sh.count[ci].Load()
			sumNs += sh.sumNs[ci].Load()
		}
	}
	return count, sumNs
}

// --- snapshots ---------------------------------------------------------

// CellSnapshot is the summed state of one (workload, verdict, path)
// cell: decision count, total latency, and per-bucket counts
// (non-cumulative; index i bounds at BucketBound(i)).
type CellSnapshot struct {
	Verdict string   `json:"verdict"`
	Path    string   `json:"path"`
	Count   uint64   `json:"count"`
	SumNs   uint64   `json:"sum_ns"`
	Buckets []uint64 `json:"buckets"`
}

// Quantile derives an upper-bound latency estimate for quantile q
// (0 < q <= 1) from the bucket counts: the bound of the bucket the
// q-th observation falls in. The +Inf bucket reports the largest
// finite bound (the estimate saturates).
func (c *CellSnapshot) Quantile(q float64) time.Duration {
	if c.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(c.Count))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, n := range c.Buckets {
		seen += n
		if seen >= rank {
			if b := BucketBound(i); b >= 0 {
				return time.Duration(b)
			}
			break
		}
	}
	return time.Duration(BucketBound(NumBuckets - 2))
}

// WorkloadSnapshot is one workload's non-empty cells, ordered by
// (verdict, path).
type WorkloadSnapshot struct {
	Workload string         `json:"workload"`
	Cells    []CellSnapshot `json:"cells"`
}

// Cell returns the (verdict, path) cell, or nil.
func (w *WorkloadSnapshot) Cell(verdict, path string) *CellSnapshot {
	for i := range w.Cells {
		if w.Cells[i].Verdict == verdict && w.Cells[i].Path == path {
			return &w.Cells[i]
		}
	}
	return nil
}

// Snapshot is a point-in-time sum of a hub's (or a merged tier's)
// counters, ordered by workload name — the exposition and /varz input.
type Snapshot struct {
	SampleEvery int                `json:"sample_every,omitempty"`
	Sampled     uint64             `json:"sampled,omitempty"`
	Workloads   []WorkloadSnapshot `json:"workloads"`
}

// Workload returns the named workload's snapshot, or nil.
func (s *Snapshot) Workload(name string) *WorkloadSnapshot {
	for i := range s.Workloads {
		if s.Workloads[i].Workload == name {
			return &s.Workloads[i]
		}
	}
	return nil
}

// Decisions sums every cell's count — total recorded decisions.
func (s *Snapshot) Decisions() uint64 {
	var n uint64
	for i := range s.Workloads {
		for j := range s.Workloads[i].Cells {
			n += s.Workloads[i].Cells[j].Count
		}
	}
	return n
}

// Snapshot sums the sharded counters into an exposition-ready view.
// Concurrent-safe against recording; best-effort while writers run.
func (h *Hub) Snapshot() Snapshot {
	if h == nil {
		return Snapshot{}
	}
	m := *h.workloads.Load()
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	snap := Snapshot{
		SampleEvery: int(h.sampleEvery),
		Sampled:     h.sampled.Load(),
		Workloads:   make([]WorkloadSnapshot, 0, len(names)),
	}
	for _, name := range names {
		wt := m[name]
		ws := WorkloadSnapshot{Workload: name}
		for v := 0; v < numVerdicts; v++ {
			for p := 0; p < numPaths; p++ {
				ci := cellIndex(Verdict(v), Path(p))
				cell := CellSnapshot{
					Verdict: Verdict(v).String(),
					Path:    Path(p).String(),
					Buckets: make([]uint64, NumBuckets),
				}
				for si := range wt.shards {
					sh := &wt.shards[si]
					cell.Count += sh.count[ci].Load()
					cell.SumNs += sh.sumNs[ci].Load()
					for b := 0; b < NumBuckets; b++ {
						cell.Buckets[b] += sh.bucket[ci][b].Load()
					}
				}
				if cell.Count > 0 {
					ws.Cells = append(ws.Cells, cell)
				}
			}
		}
		if len(ws.Cells) > 0 {
			snap.Workloads = append(snap.Workloads, ws)
		}
	}
	return snap
}

// Merge sums snapshots cell-by-cell — the plane rollup: the merged
// tier histogram of a (workload, verdict, path) cell equals the sum of
// the per-replica histograms. Nil-safe for empty inputs.
func Merge(snaps ...Snapshot) Snapshot {
	type key struct{ workload, verdict, path string }
	cells := map[key]*CellSnapshot{}
	var names []string
	seen := map[string]bool{}
	var out Snapshot
	for _, s := range snaps {
		if s.SampleEvery > 0 && (out.SampleEvery == 0 || s.SampleEvery < out.SampleEvery) {
			out.SampleEvery = s.SampleEvery
		}
		out.Sampled += s.Sampled
		for i := range s.Workloads {
			ws := &s.Workloads[i]
			if !seen[ws.Workload] {
				seen[ws.Workload] = true
				names = append(names, ws.Workload)
			}
			for j := range ws.Cells {
				c := &ws.Cells[j]
				k := key{ws.Workload, c.Verdict, c.Path}
				dst, ok := cells[k]
				if !ok {
					dst = &CellSnapshot{Verdict: c.Verdict, Path: c.Path,
						Buckets: make([]uint64, NumBuckets)}
					cells[k] = dst
				}
				dst.Count += c.Count
				dst.SumNs += c.SumNs
				for b := 0; b < len(c.Buckets) && b < NumBuckets; b++ {
					dst.Buckets[b] += c.Buckets[b]
				}
			}
		}
	}
	sort.Strings(names)
	for _, name := range names {
		ws := WorkloadSnapshot{Workload: name}
		for v := 0; v < numVerdicts; v++ {
			for p := 0; p < numPaths; p++ {
				k := key{name, Verdict(v).String(), Path(p).String()}
				if c, ok := cells[k]; ok {
					ws.Cells = append(ws.Cells, *c)
				}
			}
		}
		out.Workloads = append(out.Workloads, ws)
	}
	return out
}
