package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// Prometheus metric names. The histogram is exposed in seconds (the
// Prometheus base unit); bucket bounds are the power-of-two nanosecond
// bounds converted, so `le` values are exact binary fractions.
const (
	metricDecisions       = "kubefence_decisions_total"
	metricDecisionSeconds = "kubefence_decision_seconds"
	metricTracesSampled   = "kubefence_traces_sampled_total"
)

// WriteMetrics writes a snapshot in the Prometheus text exposition
// format (text/plain; version=0.0.4): one counter family for decision
// counts, one histogram family for decision latency, and the sampled
// trace counter. Output is deterministic (workloads and label cells in
// sorted order) and passes ValidateExposition.
func WriteMetrics(w io.Writer, s Snapshot) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# HELP %s Admission decisions by workload, verdict, and pipeline path.\n", metricDecisions)
	fmt.Fprintf(bw, "# TYPE %s counter\n", metricDecisions)
	for i := range s.Workloads {
		ws := &s.Workloads[i]
		for j := range ws.Cells {
			c := &ws.Cells[j]
			fmt.Fprintf(bw, "%s{workload=%q,verdict=%q,path=%q} %d\n",
				metricDecisions, ws.Workload, c.Verdict, c.Path, c.Count)
		}
	}
	fmt.Fprintf(bw, "# HELP %s Admission decision latency by workload, verdict, and pipeline path.\n", metricDecisionSeconds)
	fmt.Fprintf(bw, "# TYPE %s histogram\n", metricDecisionSeconds)
	for i := range s.Workloads {
		ws := &s.Workloads[i]
		for j := range ws.Cells {
			c := &ws.Cells[j]
			var cum uint64
			for b := 0; b < NumBuckets; b++ {
				cum += c.Buckets[b]
				fmt.Fprintf(bw, "%s_bucket{workload=%q,verdict=%q,path=%q,le=%q} %d\n",
					metricDecisionSeconds, ws.Workload, c.Verdict, c.Path, leLabel(b), cum)
			}
			fmt.Fprintf(bw, "%s_sum{workload=%q,verdict=%q,path=%q} %s\n",
				metricDecisionSeconds, ws.Workload, c.Verdict, c.Path,
				strconv.FormatFloat(float64(c.SumNs)/1e9, 'g', -1, 64))
			fmt.Fprintf(bw, "%s_count{workload=%q,verdict=%q,path=%q} %d\n",
				metricDecisionSeconds, ws.Workload, c.Verdict, c.Path, c.Count)
		}
	}
	fmt.Fprintf(bw, "# HELP %s Decisions sampled onto the trace ring.\n", metricTracesSampled)
	fmt.Fprintf(bw, "# TYPE %s counter\n", metricTracesSampled)
	fmt.Fprintf(bw, "%s %d\n", metricTracesSampled, s.Sampled)
	return bw.Flush()
}

// leLabel renders bucket b's upper bound in seconds for the `le`
// label: an exact decimal for the power-of-two nanosecond bounds,
// "+Inf" for the overflow bucket.
func leLabel(b int) string {
	bound := BucketBound(b)
	if bound < 0 {
		return "+Inf"
	}
	return strconv.FormatFloat(float64(bound)/1e9, 'g', -1, 64)
}

// ValidateExposition checks data against the Prometheus text-format
// line rules (the expfmt grammar, structurally): every line is a
// comment, blank, or `name[{labels}] value [timestamp]` sample with a
// legal metric name, parseable labels, and a float value; every
// histogram's buckets carry `le` labels, end at +Inf, are cumulative
// (monotonically non-decreasing), and agree with _count. Used by the
// telemetry experiment and tests to pin the /metrics contract.
func ValidateExposition(data []byte) error {
	type hist struct {
		last     uint64
		sawInf   bool
		infCount uint64
	}
	hists := map[string]*hist{}
	counts := map[string]uint64{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if err := validateComment(text); err != nil {
				return fmt.Errorf("line %d: %w", line, err)
			}
			continue
		}
		name, labels, value, err := parseSample(text)
		if err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			le, ok := labels["le"]
			if !ok {
				return fmt.Errorf("line %d: histogram bucket without an le label", line)
			}
			series := name + "{" + labelKey(labels) + "}"
			h := hists[series]
			if h == nil {
				h = &hist{}
				hists[series] = h
			}
			cum := uint64(value)
			if cum < h.last {
				return fmt.Errorf("line %d: bucket counts not cumulative (%d after %d)", line, cum, h.last)
			}
			h.last = cum
			if le == "+Inf" {
				h.sawInf = true
				h.infCount = cum
			} else if _, err := strconv.ParseFloat(le, 64); err != nil {
				return fmt.Errorf("line %d: le label %q is not a float", line, le)
			}
		case strings.HasSuffix(name, "_count"):
			series := strings.TrimSuffix(name, "_count") + "_bucket{" + labelKey(labels) + "}"
			counts[series] = uint64(value)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for series, h := range hists {
		if !h.sawInf {
			return fmt.Errorf("histogram series %s has no +Inf bucket", series)
		}
		if c, ok := counts[series]; ok && c != h.infCount {
			return fmt.Errorf("histogram series %s: _count %d != +Inf bucket %d", series, c, h.infCount)
		}
	}
	return nil
}

// validateComment checks a # line: HELP/TYPE lines must name a legal
// metric and (for TYPE) a known type; other comments pass.
func validateComment(text string) error {
	fields := strings.Fields(text)
	if len(fields) < 2 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return nil
	}
	if len(fields) < 3 || !validMetricName(fields[2]) {
		return fmt.Errorf("malformed %s comment %q", fields[1], text)
	}
	if fields[1] == "TYPE" {
		if len(fields) < 4 {
			return fmt.Errorf("TYPE comment without a type: %q", text)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
	}
	return nil
}

// parseSample parses `name[{labels}] value [timestamp]`.
func parseSample(text string) (name string, labels map[string]string, value float64, err error) {
	rest := text
	if i := strings.IndexAny(rest, "{ "); i >= 0 && rest[i] == '{' {
		name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", text)
		}
		labels, err = parseLabels(rest[i+1 : end])
		if err != nil {
			return "", nil, 0, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		parts := strings.SplitN(rest, " ", 2)
		if len(parts) != 2 {
			return "", nil, 0, fmt.Errorf("sample line %q has no value", text)
		}
		name, rest = parts[0], strings.TrimSpace(parts[1])
		labels = map[string]string{}
	}
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("illegal metric name %q", name)
	}
	valueField := strings.Fields(rest)
	if len(valueField) < 1 || len(valueField) > 2 {
		return "", nil, 0, fmt.Errorf("sample line %q has no single value", text)
	}
	value, err = strconv.ParseFloat(valueField[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("value %q is not a float", valueField[0])
	}
	return name, labels, value, nil
}

// parseLabels parses `k1="v1",k2="v2"` with escaped quotes.
func parseLabels(s string) (map[string]string, error) {
	labels := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label pair without '=' in %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		if !validLabelName(key) {
			return nil, fmt.Errorf("illegal label name %q", key)
		}
		rest := s[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return nil, fmt.Errorf("unquoted label value in %q", s)
		}
		// Scan the quoted value, honoring backslash escapes.
		i := 1
		for i < len(rest) {
			if rest[i] == '\\' {
				i += 2
				continue
			}
			if rest[i] == '"' {
				break
			}
			i++
		}
		if i >= len(rest) {
			return nil, fmt.Errorf("unterminated label value in %q", s)
		}
		val, err := strconv.Unquote(rest[:i+1])
		if err != nil {
			return nil, fmt.Errorf("bad label value %s: %w", rest[:i+1], err)
		}
		labels[key] = val
		s = strings.TrimPrefix(strings.TrimSpace(rest[i+1:]), ",")
		s = strings.TrimSpace(s)
	}
	return labels, nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// labelKey renders a label set minus the le key as a stable series
// key, so a histogram's buckets and its _count line land on the same
// series regardless of bound.
func labelKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sortStrings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// MuxConfig configures the telemetry HTTP surface.
type MuxConfig struct {
	// Snapshot supplies the metrics view /metrics exposes (required) —
	// a hub's Snapshot method, or a closure merging several.
	Snapshot func() Snapshot
	// Traces, when non-nil, adds the sampled trace records to /varz.
	Traces func() []Trace
	// Varz, when non-nil, supplies extra JSON-able state merged into
	// /varz under "state" (proxy counters, registry metrics, tier
	// rollups).
	Varz func() any
	// Healthz, when non-nil, gates /healthz: a non-nil error serves
	// 503 with the error text. Nil always serves 200.
	Healthz func() error
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
}

// Mux builds the telemetry endpoint: Prometheus text-format /metrics,
// a JSON /varz (snapshot + traces + extra state), /healthz, and —
// when enabled — the net/http/pprof handlers. Serve it on a separate
// listener from the enforcement path (cmd/kubefence's
// -telemetry-addr); the handlers allocate freely and must never share
// a goroutine budget with admission.
func Mux(cfg MuxConfig) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteMetrics(w, cfg.Snapshot())
	})
	mux.HandleFunc("/varz", func(w http.ResponseWriter, r *http.Request) {
		out := map[string]any{"telemetry": cfg.Snapshot()}
		if cfg.Traces != nil {
			out["traces"] = cfg.Traces()
		}
		if cfg.Varz != nil {
			out["state"] = cfg.Varz()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Healthz != nil {
			if err := cfg.Healthz(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}
