package telemetry

import (
	"encoding/json"
	"sync/atomic"
	"time"
)

// MaxTraceStages bounds the stage timeline one trace record carries;
// the admission pipeline has at most four stages (resolve, cache/raw
// probe, decode, validate) before the verdict.
const MaxTraceStages = 4

// TraceStage is one timed stage of a sampled decision.
type TraceStage struct {
	Name       string `json:"name"`
	DurationNs int64  `json:"duration_ns"`
}

// Trace is one sampled decision record: what was decided, through
// which pipeline, and where the time went — so a slow or denied
// decision can be explained after the fact. Stage semantics on the
// proxy: "resolve" covers the streaming metadata scan plus registry
// resolution, "raw-match" covers the decision-cache probe plus the
// compiled program's raw-byte pass, "decode" is body decoding on the
// fallback path, and "validate" is the decoded validation (enforce,
// shadow, or learn observation).
type Trace struct {
	Time     time.Time `json:"time"`
	Workload string    `json:"workload"`
	Verdict  string    `json:"verdict"`
	Path     string    `json:"path"`
	Kind     string    `json:"kind,omitempty"`
	Name     string    `json:"name,omitempty"`
	TotalNs  int64     `json:"total_ns"`

	Stages    [MaxTraceStages]TraceStage `json:"-"`
	NumStages int                        `json:"-"`
}

// StageList returns the recorded stages (for JSON and rendering).
func (t *Trace) StageList() []TraceStage { return t.Stages[:t.NumStages] }

// MarshalJSON emits the fixed stage array as a "stages" list trimmed
// to the recorded count.
func (t Trace) MarshalJSON() ([]byte, error) {
	type bare Trace // drops the method, not the fields
	return json.Marshal(struct {
		bare
		Stages []TraceStage `json:"stages"`
	}{bare(t), t.StageList()})
}

// TraceCtx is an in-flight sampled decision. Obtain one from
// Hub.Sample (nil when the decision is not sampled — the common case,
// one atomic add), mark stages as the pipeline advances, and hand it
// back with Finish. Contexts are pooled; a TraceCtx must not be used
// after Finish or Discard.
type TraceCtx struct {
	hub   *Hub
	trace Trace
	start time.Time
	last  time.Time
}

// Sample decides whether this decision is traced: every N-th recorded
// decision when SampleEvery is N. Returns nil (no tracing work at
// all) otherwise. The unsampled cost is one atomic increment.
func (h *Hub) Sample() *TraceCtx {
	if h == nil || h.sampleEvery == 0 {
		return nil
	}
	if h.sampleCtr.Add(1)%h.sampleEvery != 0 {
		return nil
	}
	t := h.ctxPool.Get().(*TraceCtx)
	t.hub = h
	t.trace = Trace{Time: time.Now()}
	t.start = t.trace.Time
	t.last = t.start
	return t
}

// Stage marks the end of the named pipeline stage, charging it the
// time elapsed since the previous mark (or since Sample). Extra
// stages beyond MaxTraceStages are dropped, not reallocated.
func (t *TraceCtx) Stage(name string) {
	if t == nil {
		return
	}
	now := time.Now()
	if t.trace.NumStages < MaxTraceStages {
		t.trace.Stages[t.trace.NumStages] = TraceStage{
			Name:       name,
			DurationNs: now.Sub(t.last).Nanoseconds(),
		}
		t.trace.NumStages++
	}
	t.last = now
}

// Finish completes the trace with its decision labels and pushes it
// onto the hub's bounded ring.
func (t *TraceCtx) Finish(workload string, v Verdict, p Path, kind, name string) {
	if t == nil {
		return
	}
	t.trace.Workload = workload
	t.trace.Verdict = v.String()
	t.trace.Path = p.String()
	t.trace.Kind = kind
	t.trace.Name = name
	t.trace.TotalNs = time.Since(t.start).Nanoseconds()
	t.hub.ring.append(t.trace)
	t.hub.sampled.Add(1)
	t.release()
}

// Discard abandons an in-flight trace (the request turned out not to
// be a decision) without recording it.
func (t *TraceCtx) Discard() {
	if t != nil {
		t.release()
	}
}

func (t *TraceCtx) release() {
	hub := t.hub
	t.hub = nil
	hub.ctxPool.Put(t)
}

// Traces snapshots the retained trace records, oldest first.
func (h *Hub) Traces() []Trace {
	if h == nil {
		return nil
	}
	return h.ring.snapshot()
}

// traceRing is a fixed-capacity lock-free ring of sampled traces,
// newest-kept — the BoundedLog discipline applied to trace records.
type traceRing struct {
	slots  []atomic.Pointer[Trace]
	cursor atomic.Uint64
}

func newTraceRing(capacity int) *traceRing {
	return &traceRing{slots: make([]atomic.Pointer[Trace], capacity)}
}

func (r *traceRing) append(t Trace) {
	idx := r.cursor.Add(1) - 1
	r.slots[idx%uint64(len(r.slots))].Store(&t)
}

func (r *traceRing) snapshot() []Trace {
	cur := r.cursor.Load()
	n := cur
	if n > uint64(len(r.slots)) {
		n = uint64(len(r.slots))
	}
	out := make([]Trace, 0, n)
	for i := cur - n; i < cur; i++ {
		if p := r.slots[i%uint64(len(r.slots))].Load(); p != nil {
			out = append(out, *p)
		}
	}
	return out
}
