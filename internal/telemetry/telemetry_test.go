package telemetry

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexProperty(t *testing.T) {
	// Every duration lands in the smallest bucket whose inclusive upper
	// bound covers it.
	rng := rand.New(rand.NewSource(1))
	check := func(d time.Duration) {
		idx := bucketIndex(d)
		bound := BucketBound(idx)
		if bound >= 0 && int64(d) > bound {
			t.Fatalf("d=%d placed in bucket %d with bound %d (too small)", d, idx, bound)
		}
		if idx > 0 {
			prev := BucketBound(idx - 1)
			if int64(d) <= prev {
				t.Fatalf("d=%d placed in bucket %d but fits bound %d", d, idx, prev)
			}
		}
	}
	for i := 0; i < 100000; i++ {
		check(time.Duration(rng.Int63n(int64(10 * time.Second))))
	}
	// Boundary cases: exact powers of two land on their own bound
	// (inclusive le semantics), one past rolls over.
	for b := 0; b < NumBuckets-1; b++ {
		bound := BucketBound(b)
		if got := bucketIndex(time.Duration(bound)); got != b {
			t.Fatalf("bound %d: bucketIndex=%d, want %d", bound, got, b)
		}
		if got := bucketIndex(time.Duration(bound + 1)); got != b+1 {
			t.Fatalf("bound+1 %d: bucketIndex=%d, want %d", bound+1, got, b+1)
		}
	}
	if got := bucketIndex(0); got != 0 {
		t.Fatalf("bucketIndex(0)=%d, want 0", got)
	}
	if got := bucketIndex(time.Hour); got != NumBuckets-1 {
		t.Fatalf("bucketIndex(1h)=%d, want overflow bucket %d", got, NumBuckets-1)
	}
}

func TestRecordAndSnapshot(t *testing.T) {
	h := New(Config{Shards: 4})
	h.RecordDecision("api", VerdictAllowed, PathRaw, 300*time.Nanosecond)
	h.RecordDecision("api", VerdictAllowed, PathRaw, 900*time.Nanosecond)
	h.RecordDecision("api", VerdictDenied, PathDecoded, 5*time.Microsecond)
	h.RecordDecision("batch", VerdictShadowed, PathDecoded, 2*time.Microsecond)

	s := h.Snapshot()
	if got := s.Decisions(); got != 4 {
		t.Fatalf("Decisions()=%d, want 4", got)
	}
	api := s.Workload("api")
	if api == nil {
		t.Fatal("workload api missing from snapshot")
	}
	cell := api.Cell("allowed", "raw")
	if cell == nil || cell.Count != 2 {
		t.Fatalf("allowed/raw cell = %+v, want count 2", cell)
	}
	if cell.SumNs != 1200 {
		t.Fatalf("allowed/raw SumNs=%d, want 1200", cell.SumNs)
	}
	var bucketSum uint64
	for _, b := range cell.Buckets {
		bucketSum += b
	}
	if bucketSum != cell.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, cell.Count)
	}
	if s.Workload("batch").Cell("shadowed", "decoded") == nil {
		t.Fatal("batch shadowed/decoded cell missing")
	}
	// Zero-count cells are omitted.
	if api.Cell("shed", "raw") != nil {
		t.Fatal("zero-count cell present in snapshot")
	}
}

func TestLoadSumsAllCells(t *testing.T) {
	h := New(Config{Shards: 4})
	h.RecordDecision("api", VerdictAllowed, PathRaw, 300*time.Nanosecond)
	h.RecordDecision("api", VerdictAllowed, PathRaw, 900*time.Nanosecond)
	h.RecordDecision("api", VerdictDenied, PathDecoded, 5*time.Microsecond)
	h.RecordDecision("batch", VerdictShadowed, PathDecoded, 2*time.Microsecond)

	count, sumNs := h.Load("api")
	if count != 3 || sumNs != 300+900+5000 {
		t.Fatalf("Load(api) = (%d, %d), want (3, 6200)", count, sumNs)
	}
	// The read path agrees with the snapshot's cell sums.
	var snapCount, snapSum uint64
	snap := h.Snapshot()
	for _, cell := range snap.Workload("api").Cells {
		snapCount += cell.Count
		snapSum += cell.SumNs
	}
	if count != snapCount || sumNs != snapSum {
		t.Fatalf("Load(api) = (%d, %d) disagrees with snapshot (%d, %d)",
			count, sumNs, snapCount, snapSum)
	}
	if c, s := h.Load("ghost"); c != 0 || s != 0 {
		t.Fatalf("Load(ghost) = (%d, %d), want zero", c, s)
	}
	var nilHub *Hub
	if c, s := nilHub.Load("api"); c != 0 || s != 0 {
		t.Fatalf("nil hub Load = (%d, %d), want zero", c, s)
	}
}

func TestQuantile(t *testing.T) {
	h := New(Config{Shards: 1})
	// 90 fast decisions (<= 256ns), 10 slow (~1ms).
	for i := 0; i < 90; i++ {
		h.RecordDecision("w", VerdictAllowed, PathRaw, 200*time.Nanosecond)
	}
	for i := 0; i < 10; i++ {
		h.RecordDecision("w", VerdictAllowed, PathRaw, time.Millisecond)
	}
	snap := h.Snapshot()
	cell := snap.Workload("w").Cell("allowed", "raw")
	if p50 := cell.Quantile(0.50); p50 != 256*time.Nanosecond {
		t.Fatalf("p50=%v, want 256ns", p50)
	}
	if p99 := cell.Quantile(0.99); p99 < 512*time.Microsecond || p99 > 2*time.Millisecond {
		t.Fatalf("p99=%v, want ~1ms bucket bound", p99)
	}
	if q := cell.Quantile(0.5); cell.Quantile(0.99) < q {
		t.Fatalf("quantile not monotone: p99 %v < p50 %v", cell.Quantile(0.99), q)
	}
}

func TestMergeEqualsSumOfReplicas(t *testing.T) {
	// Property: the merged tier histogram of every cell equals the sum
	// of per-replica histograms — drive three hubs with a random but
	// mirrored workload and compare against one hub fed everything.
	rng := rand.New(rand.NewSource(7))
	replicas := []*Hub{New(Config{Shards: 2}), New(Config{Shards: 4}), New(Config{Shards: 1})}
	all := New(Config{Shards: 8})
	workloads := []string{"api", "batch", "cron"}
	for i := 0; i < 5000; i++ {
		w := workloads[rng.Intn(len(workloads))]
		v := Verdict(rng.Intn(numVerdicts))
		p := Path(rng.Intn(numPaths))
		d := time.Duration(rng.Int63n(int64(20 * time.Millisecond)))
		replicas[rng.Intn(len(replicas))].RecordDecision(w, v, p, d)
		all.RecordDecision(w, v, p, d)
	}
	snaps := make([]Snapshot, len(replicas))
	for i, r := range replicas {
		snaps[i] = r.Snapshot()
	}
	merged := Merge(snaps...)
	want := all.Snapshot()
	if merged.Decisions() != want.Decisions() {
		t.Fatalf("merged decisions %d != %d", merged.Decisions(), want.Decisions())
	}
	for _, ws := range want.Workloads {
		mws := merged.Workload(ws.Workload)
		if mws == nil {
			t.Fatalf("merged snapshot missing workload %s", ws.Workload)
		}
		for _, c := range ws.Cells {
			mc := mws.Cell(c.Verdict, c.Path)
			if mc == nil {
				t.Fatalf("merged %s missing cell %s/%s", ws.Workload, c.Verdict, c.Path)
			}
			if mc.Count != c.Count || mc.SumNs != c.SumNs {
				t.Fatalf("%s %s/%s: merged count/sum %d/%d != %d/%d",
					ws.Workload, c.Verdict, c.Path, mc.Count, mc.SumNs, c.Count, c.SumNs)
			}
			for b := range c.Buckets {
				if mc.Buckets[b] != c.Buckets[b] {
					t.Fatalf("%s %s/%s bucket %d: merged %d != %d",
						ws.Workload, c.Verdict, c.Path, b, mc.Buckets[b], c.Buckets[b])
				}
			}
		}
	}
}

func TestConcurrentRecordScrape(t *testing.T) {
	// -race hammer: writers record while scrapers snapshot and expose.
	h := New(Config{Shards: 4, SampleEvery: 8, TraceRing: 64})
	const writers = 8
	const perWriter = 2000
	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() {
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var buf bytes.Buffer
			if err := WriteMetrics(&buf, s); err != nil {
				t.Errorf("WriteMetrics: %v", err)
				return
			}
			h.Traces()
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				d := time.Duration(i%4096) * time.Nanosecond
				tc := h.Sample()
				tc.Stage("resolve")
				tc.Stage("raw-match")
				h.RecordDecision("hammer", VerdictAllowed, PathRaw, d)
				tc.Finish("hammer", VerdictAllowed, PathRaw, "Pod", "p")
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-scraperDone
	final := h.Snapshot()
	if got := final.Decisions(); got != writers*perWriter {
		t.Fatalf("decisions after quiesce = %d, want %d", got, writers*perWriter)
	}
}

func TestTraceSampling(t *testing.T) {
	h := New(Config{SampleEvery: 4, TraceRing: 16, Shards: 1})
	for i := 0; i < 40; i++ {
		tc := h.Sample()
		tc.Stage("resolve")
		tc.Stage("validate")
		h.RecordDecision("w", VerdictDenied, PathDecoded, time.Microsecond)
		tc.Finish("w", VerdictDenied, PathDecoded, "Deployment", "web")
	}
	traces := h.Traces()
	if len(traces) != 10 {
		t.Fatalf("got %d traces, want 10 (1/4 of 40)", len(traces))
	}
	tr := traces[len(traces)-1]
	if tr.Workload != "w" || tr.Verdict != "denied" || tr.Path != "decoded" {
		t.Fatalf("trace labels = %+v", tr)
	}
	if tr.NumStages != 2 || tr.Stages[0].Name != "resolve" || tr.Stages[1].Name != "validate" {
		t.Fatalf("trace stages = %+v", tr.StageList())
	}
	if s := h.Snapshot(); s.Sampled != 10 {
		t.Fatalf("Sampled=%d, want 10", s.Sampled)
	}
	// JSON emits a trimmed stages list, not the fixed array.
	raw, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"stages":[{"name":"resolve"`) {
		t.Fatalf("trace JSON missing trimmed stages: %s", raw)
	}
	// Unsampled hub and nil ctx are no-ops.
	off := New(Config{SampleEvery: 0})
	if tc := off.Sample(); tc != nil {
		t.Fatal("SampleEvery=0 hub returned a trace ctx")
	}
	var nilCtx *TraceCtx
	nilCtx.Stage("x")
	nilCtx.Finish("w", VerdictAllowed, PathRaw, "", "")
	nilCtx.Discard()
}

func TestTraceRingBounded(t *testing.T) {
	h := New(Config{SampleEvery: 1, TraceRing: 8, Shards: 1})
	for i := 0; i < 50; i++ {
		tc := h.Sample()
		tc.Finish("w", VerdictAllowed, PathRaw, "", "")
	}
	traces := h.Traces()
	if len(traces) != 8 {
		t.Fatalf("ring kept %d traces, want 8", len(traces))
	}
}

func TestNilHubSafe(t *testing.T) {
	var h *Hub
	h.RecordDecision("w", VerdictAllowed, PathRaw, time.Microsecond)
	h.RegisterWorkload("w")
	if tc := h.Sample(); tc != nil {
		t.Fatal("nil hub sampled")
	}
	if tr := h.Traces(); tr != nil {
		t.Fatal("nil hub returned traces")
	}
	if s := h.Snapshot(); s.Decisions() != 0 {
		t.Fatal("nil hub snapshot non-empty")
	}
	if h.SampleEvery() != 0 {
		t.Fatal("nil hub SampleEvery non-zero")
	}
}

func TestRecordDecisionAllocFree(t *testing.T) {
	h := New(Config{Shards: 4})
	h.RegisterWorkload("w")
	allocs := testing.AllocsPerRun(1000, func() {
		h.RecordDecision("w", VerdictAllowed, PathRaw, 731*time.Nanosecond)
	})
	if allocs != 0 {
		t.Fatalf("RecordDecision allocs/op = %v, want 0", allocs)
	}
	// The unsampled Sample() probe is also alloc-free.
	hs := New(Config{Shards: 1, SampleEvery: 1 << 30})
	allocs = testing.AllocsPerRun(1000, func() {
		if tc := hs.Sample(); tc != nil {
			tc.Discard()
		}
	})
	if allocs != 0 {
		t.Fatalf("unsampled Sample allocs/op = %v, want 0", allocs)
	}
}

func TestWriteMetricsExposition(t *testing.T) {
	h := New(Config{Shards: 2, SampleEvery: 2, TraceRing: 8})
	for i := 0; i < 100; i++ {
		tc := h.Sample()
		h.RecordDecision("api", VerdictAllowed, PathRaw, time.Duration(i)*time.Microsecond)
		tc.Finish("api", VerdictAllowed, PathRaw, "Pod", "p")
	}
	h.RecordDecision("api", VerdictDenied, PathDecoded, 3*time.Millisecond)
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, h.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`# TYPE kubefence_decisions_total counter`,
		`# TYPE kubefence_decision_seconds histogram`,
		`kubefence_decisions_total{workload="api",verdict="allowed",path="raw"} 100`,
		`kubefence_decisions_total{workload="api",verdict="denied",path="decoded"} 1`,
		`le="+Inf"`,
		`kubefence_decision_seconds_count{workload="api",verdict="allowed",path="raw"} 100`,
		`kubefence_traces_sampled_total 50`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("ValidateExposition: %v\n%s", err, out)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"bad name":       "9badname 1\n",
		"no value":       "kubefence_decisions_total\n",
		"bad value":      "kubefence_decisions_total x\n",
		"bad label":      `kubefence_decisions_total{9bad="x"} 1` + "\n",
		"unquoted":       `kubefence_decisions_total{workload=x} 1` + "\n",
		"bucket no le":   `m_bucket{workload="x"} 1` + "\n",
		"non-cumulative": "m_bucket{le=\"1\"} 5\nm_bucket{le=\"2\"} 3\nm_bucket{le=\"+Inf\"} 5\n",
		"no inf":         `m_bucket{le="1"} 5` + "\n",
		"count mismatch": "m_bucket{le=\"+Inf\"} 5\nm_count 7\n",
		"bad type":       "# TYPE m frobnicator\n",
	}
	for name, in := range cases {
		if err := ValidateExposition([]byte(in)); err == nil {
			t.Errorf("%s: ValidateExposition accepted %q", name, in)
		}
	}
	// Valid input with comments, blanks, and an escaped label passes.
	ok := "# random comment\n\nm_total{l=\"a\\\"b\"} 1 1712345678\n"
	if err := ValidateExposition([]byte(ok)); err != nil {
		t.Errorf("valid input rejected: %v", err)
	}
}

func TestMux(t *testing.T) {
	h := New(Config{Shards: 1, SampleEvery: 1, TraceRing: 4})
	tc := h.Sample()
	h.RecordDecision("api", VerdictAllowed, PathRaw, time.Microsecond)
	tc.Finish("api", VerdictAllowed, PathRaw, "Pod", "p")
	healthy := true
	mux := Mux(MuxConfig{
		Snapshot: h.Snapshot,
		Traces:   h.Traces,
		Varz:     func() any { return map[string]int{"replicas": 3} },
		Healthz: func() error {
			if !healthy {
				return errDraining
			}
			return nil
		},
		EnablePprof: true,
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	if err := ValidateExposition([]byte(body)); err != nil {
		t.Fatalf("/metrics not valid exposition: %v", err)
	}
	if !strings.Contains(body, "kubefence_decisions_total") {
		t.Fatalf("/metrics missing decision counter:\n%s", body)
	}

	code, body = get("/varz")
	if code != 200 {
		t.Fatalf("/varz status %d", code)
	}
	var varz map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &varz); err != nil {
		t.Fatalf("/varz not JSON: %v", err)
	}
	for _, k := range []string{"telemetry", "traces", "state"} {
		if _, ok := varz[k]; !ok {
			t.Fatalf("/varz missing %q: %s", k, body)
		}
	}

	if code, body = get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	healthy = false
	if code, _ = get("/healthz"); code != 503 {
		t.Fatalf("unhealthy /healthz = %d, want 503", code)
	}

	if code, _ = get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

var errDraining = errDrainingType{}

type errDrainingType struct{}

func (errDrainingType) Error() string { return "draining" }
