// Package client is the kubectl-equivalent REST client for the simulated
// API server: typed errors, create/get/update/delete/list, and an Apply
// that mirrors `kubectl apply` (create, fall back to replace on conflict).
// It works over plain HTTP (tests), TLS, and mTLS (through the KubeFence
// proxy), depending on the http.Client it is built with.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/object"
)

// APIError is a non-2xx response from the API server.
type APIError struct {
	Code    int
	Message string
	Reason  string
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("server returned %d (%s): %s", e.Code, e.Reason, e.Message)
}

// IsForbidden reports whether err is an APIError with HTTP 403.
func IsForbidden(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.Code == http.StatusForbidden
}

// IsNotFound reports whether err is an APIError with HTTP 404.
func IsNotFound(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.Code == http.StatusNotFound
}

// IsConflict reports whether err is an APIError with HTTP 409.
func IsConflict(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.Code == http.StatusConflict
}

// Client talks to one API server (directly or through a proxy).
type Client struct {
	base string
	http *http.Client
	// user/groups are sent as X-Remote-User/X-Remote-Group headers for
	// header-authenticated connections; ignored by cert-authenticated
	// servers.
	user   string
	groups []string
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient sets the underlying transport (TLS configs live here).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// WithUser sets the identity asserted via headers.
func WithUser(user string, groups ...string) Option {
	return func(c *Client) { c.user = user; c.groups = groups }
}

// New builds a client for a base URL like "https://127.0.0.1:6443".
func New(base string, opts ...Option) *Client {
	c := &Client{
		base: base,
		http: &http.Client{Timeout: 30 * time.Second},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// resourcePath resolves the REST path for an object.
func resourcePath(o object.Object, withName bool) (string, error) {
	info, ok := object.LookupKind(o.Kind())
	if !ok {
		return "", fmt.Errorf("client: kind %q is not served", o.Kind())
	}
	p := info.Path(o.Namespace())
	if withName {
		if o.Name() == "" {
			return "", fmt.Errorf("client: %s object has no name", o.Kind())
		}
		p += "/" + o.Name()
	}
	return p, nil
}

// Create POSTs the object to its collection.
func (c *Client) Create(o object.Object) (object.Object, error) {
	path, err := resourcePath(o, false)
	if err != nil {
		return nil, err
	}
	return c.do(http.MethodPost, path, o)
}

// Update PUTs the object to its item URL.
func (c *Client) Update(o object.Object) (object.Object, error) {
	path, err := resourcePath(o, true)
	if err != nil {
		return nil, err
	}
	return c.do(http.MethodPut, path, o)
}

// Apply creates the object, replacing it if it already exists — the
// `kubectl apply` workload used in the paper's Table IV measurement.
func (c *Client) Apply(o object.Object) (object.Object, error) {
	created, err := c.Create(o)
	if err == nil {
		return created, nil
	}
	if !IsConflict(err) {
		return nil, err
	}
	fresh := o.DeepCopy()
	object.Delete(fresh, "metadata.resourceVersion")
	return c.Update(fresh)
}

// ApplyAll applies objects in order, failing fast.
func (c *Client) ApplyAll(objs []object.Object) error {
	for _, o := range objs {
		if _, err := c.Apply(o); err != nil {
			return fmt.Errorf("applying %s %s: %w", o.Kind(), o.Name(), err)
		}
	}
	return nil
}

// Get fetches one object by kind coordinates.
func (c *Client) Get(kind, ns, name string) (object.Object, error) {
	info, ok := object.LookupKind(kind)
	if !ok {
		return nil, fmt.Errorf("client: kind %q is not served", kind)
	}
	return c.do(http.MethodGet, info.Path(ns)+"/"+name, nil)
}

// Delete removes one object by kind coordinates.
func (c *Client) Delete(kind, ns, name string) error {
	info, ok := object.LookupKind(kind)
	if !ok {
		return fmt.Errorf("client: kind %q is not served", kind)
	}
	_, err := c.do(http.MethodDelete, info.Path(ns)+"/"+name, nil)
	return err
}

// List fetches a collection.
func (c *Client) List(kind, ns string) ([]object.Object, error) {
	info, ok := object.LookupKind(kind)
	if !ok {
		return nil, fmt.Errorf("client: kind %q is not served", kind)
	}
	body, err := c.do(http.MethodGet, info.Path(ns), nil)
	if err != nil {
		return nil, err
	}
	items, _ := object.GetSlice(body, "items")
	out := make([]object.Object, 0, len(items))
	for _, it := range items {
		if m, ok := it.(map[string]any); ok {
			out = append(out, object.Object(m))
		}
	}
	return out, nil
}

// WatchEvent is one event from a watch stream.
type WatchEvent struct {
	// Type is ADDED, MODIFIED, or DELETED.
	Type   string
	Object object.Object
}

// Watch opens a streaming watch on a collection. Events arrive on the
// returned channel until the stream ends or cancel is called; the channel
// is closed on termination.
func (c *Client) Watch(kind, ns string) (<-chan WatchEvent, func(), error) {
	info, ok := object.LookupKind(kind)
	if !ok {
		return nil, nil, fmt.Errorf("client: kind %q is not served", kind)
	}
	req, err := http.NewRequest(http.MethodGet, c.base+info.Path(ns)+"?watch=true", nil)
	if err != nil {
		return nil, nil, err
	}
	if c.user != "" {
		req.Header.Set("X-Remote-User", c.user)
	}
	// Watches are long-lived: bypass the client timeout.
	transport := c.http.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	streaming := &http.Client{Transport: transport}
	resp, err := streaming.Do(req)
	if err != nil {
		return nil, nil, fmt.Errorf("client: opening watch: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, nil, &APIError{Code: resp.StatusCode, Message: "watch refused"}
	}
	events := make(chan WatchEvent, 16)
	done := make(chan struct{})
	go func() {
		defer close(events)
		defer resp.Body.Close()
		dec := json.NewDecoder(resp.Body)
		for {
			var raw struct {
				Type   string         `json:"type"`
				Object map[string]any `json:"object"`
			}
			if err := dec.Decode(&raw); err != nil {
				return
			}
			select {
			case events <- WatchEvent{Type: raw.Type, Object: object.Object(raw.Object)}:
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			close(done)
			resp.Body.Close()
		})
	}
	return events, cancel, nil
}

// Healthz probes the server's health endpoint.
func (c *Client) Healthz() error {
	req, err := http.NewRequest(http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz returned %d", resp.StatusCode)
	}
	return nil
}

func (c *Client) do(method, path string, body object.Object) (object.Object, error) {
	var rdr io.Reader
	if body != nil {
		data, err := json.Marshal(map[string]any(body))
		if err != nil {
			return nil, fmt.Errorf("client: encoding body: %w", err)
		}
		rdr = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, rdr)
	if err != nil {
		return nil, fmt.Errorf("client: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.user != "" {
		req.Header.Set("X-Remote-User", c.user)
		for _, g := range c.groups {
			req.Header.Add("X-Remote-Group", g)
		}
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, fmt.Errorf("client: reading response: %w", err)
	}
	if resp.StatusCode >= 400 {
		var st struct {
			Message string `json:"message"`
			Reason  string `json:"reason"`
		}
		_ = json.Unmarshal(data, &st)
		if st.Message == "" {
			st.Message = string(data)
		}
		return nil, &APIError{Code: resp.StatusCode, Message: st.Message, Reason: st.Reason}
	}
	var m map[string]any
	if len(data) > 0 {
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("client: decoding response: %w", err)
		}
	}
	return object.Object(m), nil
}
