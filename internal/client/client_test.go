package client

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/object"
)

func TestErrorClassifiers(t *testing.T) {
	tests := []struct {
		code      int
		forbidden bool
		notFound  bool
		conflict  bool
	}{
		{403, true, false, false},
		{404, false, true, false},
		{409, false, false, true},
		{500, false, false, false},
	}
	for _, tt := range tests {
		err := &APIError{Code: tt.code, Message: "m", Reason: "r"}
		if IsForbidden(err) != tt.forbidden {
			t.Errorf("IsForbidden(%d) = %v", tt.code, IsForbidden(err))
		}
		if IsNotFound(err) != tt.notFound {
			t.Errorf("IsNotFound(%d) = %v", tt.code, IsNotFound(err))
		}
		if IsConflict(err) != tt.conflict {
			t.Errorf("IsConflict(%d) = %v", tt.code, IsConflict(err))
		}
	}
	// Non-APIError values classify as nothing.
	if IsForbidden(nil) || IsNotFound(errPlain) || IsConflict(errPlain) {
		t.Error("plain errors must not classify")
	}
}

var errPlain = &plainError{}

type plainError struct{}

func (*plainError) Error() string { return "plain" }

func TestUnknownKindErrors(t *testing.T) {
	c := New("http://127.0.0.1:0")
	if _, err := c.Create(object.Object{"kind": "Widget", "metadata": map[string]any{"name": "x"}}); err == nil {
		t.Error("unknown kind should error before any network call")
	}
	if _, err := c.Get("Widget", "", "x"); err == nil {
		t.Error("unknown kind get should error")
	}
	if err := c.Delete("Widget", "", "x"); err == nil {
		t.Error("unknown kind delete should error")
	}
	if _, err := c.List("Widget", ""); err == nil {
		t.Error("unknown kind list should error")
	}
	if _, err := c.Update(object.Object{"kind": "Pod", "metadata": map[string]any{}}); err == nil {
		t.Error("update without name should error")
	}
}

// TestApplyFallsBackToUpdate verifies the kubectl-apply semantics against
// a stub server that returns 409 on create.
func TestApplyFallsBackToUpdate(t *testing.T) {
	var puts atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			w.WriteHeader(http.StatusConflict)
			_ = json.NewEncoder(w).Encode(map[string]any{"message": "exists", "reason": "AlreadyExists"})
		case http.MethodPut:
			puts.Add(1)
			var body map[string]any
			_ = json.NewDecoder(r.Body).Decode(&body)
			// The stale resourceVersion must have been stripped.
			if md, ok := body["metadata"].(map[string]any); ok {
				if _, has := md["resourceVersion"]; has {
					w.WriteHeader(http.StatusBadRequest)
					return
				}
			}
			w.WriteHeader(http.StatusOK)
			_ = json.NewEncoder(w).Encode(body)
		}
	}))
	defer ts.Close()

	c := New(ts.URL, WithUser("u"))
	pod := object.Object{
		"apiVersion": "v1", "kind": "Pod",
		"metadata": map[string]any{
			"name": "p", "namespace": "default", "resourceVersion": "stale",
		},
	}
	if _, err := c.Apply(pod); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if puts.Load() != 1 {
		t.Errorf("puts = %d, want 1", puts.Load())
	}
	// The caller's object is untouched.
	if _, ok := object.Get(pod, "metadata.resourceVersion"); !ok {
		t.Error("Apply mutated the caller's object")
	}
}

func TestIdentityHeadersSent(t *testing.T) {
	var gotUser string
	var gotGroups []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotUser = r.Header.Get("X-Remote-User")
		gotGroups = r.Header.Values("X-Remote-Group")
		_ = json.NewEncoder(w).Encode(map[string]any{})
	}))
	defer ts.Close()
	c := New(ts.URL, WithUser("alice", "devs", "oncall"))
	if _, err := c.Get("Pod", "default", "x"); err != nil {
		t.Fatal(err)
	}
	if gotUser != "alice" || len(gotGroups) != 2 {
		t.Errorf("user = %q groups = %v", gotUser, gotGroups)
	}
}

func TestServerErrorMessageSurfaced(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusForbidden)
		_ = json.NewEncoder(w).Encode(map[string]any{
			"message": "blocked by KubeFence policy", "reason": "KubeFencePolicyViolation",
		})
	}))
	defer ts.Close()
	c := New(ts.URL)
	_, err := c.Get("Pod", "default", "x")
	ae, ok := err.(*APIError)
	if !ok {
		t.Fatalf("err = %T", err)
	}
	if ae.Reason != "KubeFencePolicyViolation" || ae.Message == "" {
		t.Errorf("error = %+v", ae)
	}
}
