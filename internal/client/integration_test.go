package client

import (
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/apiserver"
	"repro/internal/object"
	"repro/internal/store"
)

func newServer(t *testing.T) *Client {
	t.Helper()
	api, err := apiserver.New(apiserver.Config{Store: store.New()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(api)
	t.Cleanup(ts.Close)
	return New(ts.URL, WithUser("tester"))
}

func cm(name, v string) object.Object {
	return object.Object{
		"apiVersion": "v1", "kind": "ConfigMap",
		"metadata": map[string]any{"name": name, "namespace": "default"},
		"data":     map[string]any{"k": v},
	}
}

func TestCRUDAgainstServer(t *testing.T) {
	c := newServer(t)
	if _, err := c.Create(cm("a", "1")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("ConfigMap", "default", "a")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := object.Get(got, "data.k"); v != "1" {
		t.Errorf("data = %v", v)
	}
	got["data"].(map[string]any)["k"] = "2"
	if _, err := c.Update(got); err != nil {
		t.Fatal(err)
	}
	list, err := c.List("ConfigMap", "default")
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 {
		t.Errorf("list = %d", len(list))
	}
	if err := c.Delete("ConfigMap", "default", "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("ConfigMap", "default", "a"); !IsNotFound(err) {
		t.Errorf("err = %v", err)
	}
}

func TestApplyAllStopsOnFirstError(t *testing.T) {
	c := newServer(t)
	objs := []object.Object{
		cm("ok", "1"),
		{"apiVersion": "v1", "kind": "ConfigMap", "metadata": map[string]any{"namespace": "default"}}, // no name
		cm("never", "2"),
	}
	if err := c.ApplyAll(objs); err == nil {
		t.Fatal("want error")
	}
	if _, err := c.Get("ConfigMap", "default", "ok"); err != nil {
		t.Errorf("first object should exist: %v", err)
	}
	if _, err := c.Get("ConfigMap", "default", "never"); !IsNotFound(err) {
		t.Error("third object should not have been applied")
	}
}

func TestHealthzAgainstServer(t *testing.T) {
	c := newServer(t)
	if err := c.Healthz(); err != nil {
		t.Error(err)
	}
	dead := New("http://127.0.0.1:1")
	if err := dead.Healthz(); err == nil {
		t.Error("dead server should fail healthz")
	}
}

func TestWatchThroughClient(t *testing.T) {
	c := newServer(t)
	events, cancel, err := c.Watch("ConfigMap", "default")
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if _, err := c.Create(cm("watched", "1")); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		if ev.Type != "ADDED" || ev.Object.Name() != "watched" {
			t.Errorf("event = %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no event")
	}
}

func TestWatchUnknownKind(t *testing.T) {
	c := newServer(t)
	if _, _, err := c.Watch("Widget", ""); err == nil {
		t.Error("unknown kind should error")
	}
}
