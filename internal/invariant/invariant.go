// Package invariant implements cross-resource policy rules — the policy
// class that constrains relationships *between* a workload's objects
// rather than the shape of any single one. The motivating example is the
// multi-service store scenario: the customer-db pod must never mount the
// store-api's credentials, yet a schema policy cannot express that,
// because secret names contain the release name and therefore generalize
// to free strings during policy generation (internal/validator). The
// rules here plug into the registry beside the schema policy
// (registry.SetInvariants) and are evaluated by both engines after a
// clean schema verdict.
//
// Every rule is stateless per request: its verdict depends only on the
// submitted object and the rule's immutable configuration. That makes
// enforcement independent of admission order by construction — no matter
// how the three services' objects interleave, and no matter which
// requests race a policy Swap, an object that violates secret ownership
// is denied (the property the cross-resource tests verify).
package invariant

import (
	"fmt"
	"sort"

	"repro/internal/object"
	"repro/internal/validator"
)

// DefaultComponentLabel is the pod-template label that names the
// component a pod belongs to, following the Kubernetes recommended
// label set.
const DefaultComponentLabel = "app.kubernetes.io/component"

// SecretOwnership is the "the DB pod never mounts the API's secrets"
// rule class: each listed Secret is owned by exactly one component, and
// only pods of that component may consume it — as a volume, a projected
// volume source, an env valueFrom reference, or an envFrom bulk import.
// Secrets not listed are unconstrained.
type SecretOwnership struct {
	// RuleName identifies the rule in diagnostics (default
	// "secret-ownership").
	RuleName string
	// ComponentLabel locates the component name in the pod template's
	// labels (default DefaultComponentLabel).
	ComponentLabel string
	// Owners maps Secret name → owning component name.
	Owners map[string]string
}

// Name implements registry.Invariant.
func (s *SecretOwnership) Name() string {
	if s.RuleName != "" {
		return s.RuleName
	}
	return "secret-ownership"
}

// OwnedSecrets lists the constrained secret names, sorted.
func (s *SecretOwnership) OwnedSecrets() []string {
	out := make([]string, 0, len(s.Owners))
	for name := range s.Owners {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// podSpecPath mirrors the REST shape of the pod-bearing kinds this
// reproduction models (attacks.PodSpecPath, duplicated here so the rule
// layer does not depend on the attack catalog).
func podSpecOf(o object.Object) (map[string]any, string, bool) {
	switch o.Kind() {
	case "Pod":
		spec, ok := object.GetMap(o, "spec")
		return spec, "spec", ok
	case "Deployment", "StatefulSet", "DaemonSet", "ReplicaSet", "Job":
		spec, ok := object.GetMap(o, "spec.template.spec")
		return spec, "spec.template.spec", ok
	case "CronJob":
		spec, ok := object.GetMap(o, "spec.jobTemplate.spec.template.spec")
		return spec, "spec.jobTemplate.spec.template.spec", ok
	}
	return nil, "", false
}

// componentOf extracts the object's component from the pod template
// labels (falling back to the object's own labels for bare Pods and
// templates without labels).
func (s *SecretOwnership) componentOf(o object.Object) string {
	label := s.ComponentLabel
	if label == "" {
		label = DefaultComponentLabel
	}
	for _, path := range []string{
		"spec.template.metadata.labels",
		"spec.jobTemplate.spec.template.metadata.labels",
		"metadata.labels",
	} {
		if labels, ok := object.GetMap(o, path); ok {
			if v, ok := labels[label].(string); ok && v != "" {
				return v
			}
		}
	}
	return ""
}

// Check implements registry.Invariant: it walks every way a pod spec can
// consume a Secret and denies references to secrets owned by another
// component. Objects without a pod spec are out of scope (the Secret
// objects themselves, Services, RBAC, ...).
func (s *SecretOwnership) Check(o object.Object) []validator.Violation {
	spec, base, ok := podSpecOf(o)
	if !ok {
		return nil
	}
	component := s.componentOf(o)
	var out []validator.Violation
	deny := func(path, secret string) {
		owner := s.Owners[secret]
		out = append(out, validator.Violation{
			Path: path,
			Got:  secret,
			Reason: fmt.Sprintf("cross-resource invariant %s: secret %q is owned by component %q and may not be consumed by component %q",
				s.Name(), secret, owner, orUnlabeled(component)),
		})
	}
	check := func(path, secret string) {
		if secret == "" {
			return
		}
		owner, constrained := s.Owners[secret]
		if constrained && owner != component {
			deny(path, secret)
		}
	}

	if vols, ok := spec["volumes"].([]any); ok {
		for i, v := range vols {
			vol, ok := v.(map[string]any)
			if !ok {
				continue
			}
			p := fmt.Sprintf("%s.volumes[%d]", base, i)
			if sec, ok := vol["secret"].(map[string]any); ok {
				name, _ := sec["secretName"].(string)
				check(p+".secret.secretName", name)
			}
			if proj, ok := vol["projected"].(map[string]any); ok {
				if srcs, ok := proj["sources"].([]any); ok {
					for j, src := range srcs {
						sm, ok := src.(map[string]any)
						if !ok {
							continue
						}
						if sec, ok := sm["secret"].(map[string]any); ok {
							name, _ := sec["name"].(string)
							check(fmt.Sprintf("%s.projected.sources[%d].secret.name", p, j), name)
						}
					}
				}
			}
		}
	}

	for _, list := range []string{"containers", "initContainers", "ephemeralContainers"} {
		items, ok := spec[list].([]any)
		if !ok {
			continue
		}
		for i, it := range items {
			c, ok := it.(map[string]any)
			if !ok {
				continue
			}
			cp := fmt.Sprintf("%s.%s[%d]", base, list, i)
			if envs, ok := c["env"].([]any); ok {
				for j, e := range envs {
					em, ok := e.(map[string]any)
					if !ok {
						continue
					}
					if vf, ok := em["valueFrom"].(map[string]any); ok {
						if ref, ok := vf["secretKeyRef"].(map[string]any); ok {
							name, _ := ref["name"].(string)
							check(fmt.Sprintf("%s.env[%d].valueFrom.secretKeyRef.name", cp, j), name)
						}
					}
				}
			}
			if envFroms, ok := c["envFrom"].([]any); ok {
				for j, e := range envFroms {
					em, ok := e.(map[string]any)
					if !ok {
						continue
					}
					if ref, ok := em["secretRef"].(map[string]any); ok {
						name, _ := ref["name"].(string)
						check(fmt.Sprintf("%s.envFrom[%d].secretRef.name", cp, j), name)
					}
				}
			}
		}
	}
	return out
}

func orUnlabeled(component string) string {
	if component == "" {
		return "(unlabeled)"
	}
	return component
}

// OwnershipFromObjects derives a SecretOwnership rule from rendered
// manifests: every Secret carrying the component label is owned by that
// component. This is how the multi-service scenario wires the rule — the
// chart stamps each credentials Secret with the component it belongs to,
// and the derived rule then denies any pod of another component that
// consumes it, regardless of the order the objects are admitted in.
func OwnershipFromObjects(objs []object.Object, componentLabel string) *SecretOwnership {
	if componentLabel == "" {
		componentLabel = DefaultComponentLabel
	}
	owners := map[string]string{}
	for _, o := range objs {
		if o.Kind() != "Secret" {
			continue
		}
		labels, ok := object.GetMap(o, "metadata.labels")
		if !ok {
			continue
		}
		component, _ := labels[componentLabel].(string)
		if component == "" || o.Name() == "" {
			continue
		}
		owners[o.Name()] = component
	}
	return &SecretOwnership{ComponentLabel: componentLabel, Owners: owners}
}
