package invariant

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/chart"
	"repro/internal/charts"
	"repro/internal/core"
	"repro/internal/mutate"
	"repro/internal/object"
	"repro/internal/proxy"
	"repro/internal/registry"
	"repro/internal/replay"
)

// nullTransport completes every forwarded round trip in memory, so the
// replay exercises only the enforcement path.
type nullTransport struct{}

func (nullTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if r.Body != nil {
		r.Body.Close()
	}
	return &http.Response{
		StatusCode: http.StatusOK,
		Header:     http.Header{"Content-Type": []string{"application/json"}},
		Body:       io.NopCloser(strings.NewReader(`{"kind":"Status","status":"Success"}`)),
	}, nil
}

// storeFixture renders the multi-service scenario and generates its
// schema policy and derived secret-ownership rule.
func storeFixture(t *testing.T) (objs []object.Object, pol *core.Result, rule *SecretOwnership) {
	t.Helper()
	c := charts.MustLoad("store")
	files, err := c.Render(nil, chart.ReleaseOptions{Name: "rel", Namespace: "store"})
	if err != nil {
		t.Fatal(err)
	}
	objs = chart.Objects(files)
	pol, err = core.GeneratePolicy(c, core.Options{Namespace: "store"})
	if err != nil {
		t.Fatal(err)
	}
	rule = OwnershipFromObjects(objs, "")
	return objs, pol, rule
}

// findByName returns the rendered object of a kind whose name has the
// given suffix.
func findByName(t *testing.T, objs []object.Object, kind, suffix string) object.Object {
	t.Helper()
	for _, o := range objs {
		if o.Kind() == kind && len(o.Name()) >= len(suffix) &&
			o.Name()[len(o.Name())-len(suffix):] == suffix {
			return o
		}
	}
	t.Fatalf("no %s named *%s", kind, suffix)
	return nil
}

// violatingAdmissions derives cross-mount attacks from the benign
// manifests: each one points a pod's secret consumption at a secret
// owned by another component, through a different consumption channel.
func violatingAdmissions(t *testing.T, objs []object.Object) []object.Object {
	t.Helper()
	api := findByName(t, objs, "Deployment", "-api")
	proc := findByName(t, objs, "Deployment", "-processor")
	db := findByName(t, objs, "StatefulSet", "-db")
	apiSecret := findByName(t, objs, "Secret", "-api-credentials").Name()
	dbSecret := findByName(t, objs, "Secret", "-db-credentials").Name()

	// The DB pod mounts the API's credentials as a volume.
	dbMountsAPI := db.DeepCopy()
	_ = object.Set(dbMountsAPI, "metadata.name", db.Name()+"-inv1")
	vols, _ := object.GetMap(dbMountsAPI, "spec.template.spec")
	for _, v := range vols["volumes"].([]any) {
		vol := v.(map[string]any)
		if sec, ok := vol["secret"].(map[string]any); ok {
			sec["secretName"] = apiSecret
		}
	}

	// The API pod reads the DB password via an env secretKeyRef.
	apiReadsDB := api.DeepCopy()
	_ = object.Set(apiReadsDB, "metadata.name", api.Name()+"-inv2")
	spec, _ := object.GetMap(apiReadsDB, "spec.template.spec")
	c0 := spec["containers"].([]any)[0].(map[string]any)
	for _, e := range c0["env"].([]any) {
		em := e.(map[string]any)
		if vf, ok := em["valueFrom"].(map[string]any); ok {
			vf["secretKeyRef"].(map[string]any)["name"] = dbSecret
		}
	}

	// The processor bulk-imports the API's credentials via envFrom.
	procReadsAPI := proc.DeepCopy()
	_ = object.Set(procReadsAPI, "metadata.name", proc.Name()+"-inv3")
	pspec, _ := object.GetMap(procReadsAPI, "spec.template.spec")
	pc0 := pspec["containers"].([]any)[0].(map[string]any)
	for _, e := range pc0["envFrom"].([]any) {
		em := e.(map[string]any)
		if ref, ok := em["secretRef"].(map[string]any); ok {
			ref["name"] = apiSecret
		}
	}

	return []object.Object{dbMountsAPI, apiReadsDB, procReadsAPI}
}

// TestSecretOwnershipCheck unit-tests the rule against every consumption
// channel: own-component references are clean, cross-component ones are
// violations, unlisted secrets and pod-less kinds are out of scope.
func TestSecretOwnershipCheck(t *testing.T) {
	objs, _, rule := storeFixture(t)
	if len(rule.Owners) != 3 {
		t.Fatalf("derived %d owned secrets, want 3: %v", len(rule.Owners), rule.OwnedSecrets())
	}

	// Every benign object is clean, including the Secrets themselves.
	for _, o := range objs {
		if vs := rule.Check(o); len(vs) != 0 {
			t.Errorf("benign %s/%s violates the rule: %v", o.Kind(), o.Name(), vs)
		}
	}

	// Every derived cross-mount is caught.
	for _, o := range violatingAdmissions(t, objs) {
		if vs := rule.Check(o); len(vs) == 0 {
			t.Errorf("cross-mount %s/%s not caught", o.Kind(), o.Name())
		}
	}

	// Unlisted secrets are unconstrained.
	db := findByName(t, objs, "StatefulSet", "-db").DeepCopy()
	spec, _ := object.GetMap(db, "spec.template.spec")
	for _, v := range spec["volumes"].([]any) {
		vol := v.(map[string]any)
		if sec, ok := vol["secret"].(map[string]any); ok {
			sec["secretName"] = "some-unrelated-secret"
		}
	}
	if vs := rule.Check(db); len(vs) != 0 {
		t.Errorf("unlisted secret flagged: %v", vs)
	}

	// A projected volume source is also a consumption channel.
	apiSecret := findByName(t, objs, "Secret", "-api-credentials").Name()
	db2 := findByName(t, objs, "StatefulSet", "-db").DeepCopy()
	spec2, _ := object.GetMap(db2, "spec.template.spec")
	spec2["volumes"] = []any{map[string]any{
		"name": "proj",
		"projected": map[string]any{"sources": []any{
			map[string]any{"secret": map[string]any{"name": apiSecret}},
		}},
	}}
	if vs := rule.Check(db2); len(vs) == 0 {
		t.Error("projected cross-component source not caught")
	}
}

// TestSecretOwnershipEdges covers the rule's identity and fallback
// behavior: default and custom rule names, the sorted owned-secret
// listing, non-pod objects passing through, and an unlabeled pod being
// denied access to any constrained secret.
func TestSecretOwnershipEdges(t *testing.T) {
	objs, _, rule := storeFixture(t)
	if rule.Name() != "secret-ownership" {
		t.Errorf("default rule name = %q", rule.Name())
	}
	named := &SecretOwnership{RuleName: "custom", Owners: rule.Owners}
	if named.Name() != "custom" {
		t.Errorf("custom rule name = %q", named.Name())
	}
	owned := rule.OwnedSecrets()
	if len(owned) != 3 {
		t.Fatalf("OwnedSecrets = %v", owned)
	}
	for i := 1; i < len(owned); i++ {
		if owned[i-1] >= owned[i] {
			t.Errorf("OwnedSecrets not sorted: %v", owned)
		}
	}

	// A pod template with no component label may not consume any
	// constrained secret: ownership cannot be verified, so it fails
	// closed.
	db := findByName(t, objs, "StatefulSet", "-db").DeepCopy()
	labels, _ := object.GetMap(db, "spec.template.metadata.labels")
	delete(labels, DefaultComponentLabel)
	// The rule falls back to the object's own labels for bare Pods and
	// unlabeled templates; strip those too to make it truly unlabeled.
	if own, ok := object.GetMap(db, "metadata.labels"); ok {
		delete(own, DefaultComponentLabel)
	}
	apiSecret := findByName(t, objs, "Secret", "-api-credentials").Name()
	spec, _ := object.GetMap(db, "spec.template.spec")
	spec["volumes"] = []any{map[string]any{
		"name":   "v",
		"secret": map[string]any{"secretName": apiSecret},
	}}
	vs := rule.Check(db)
	if len(vs) == 0 {
		t.Fatal("unlabeled consumer of a constrained secret not caught")
	}
	if !strings.Contains(vs[0].Reason, "(unlabeled)") {
		t.Errorf("diagnostic does not name the unlabeled component: %v", vs[0])
	}

	// Objects without a pod spec (the Secrets themselves, Services) are
	// out of the rule's scope.
	for _, o := range objs {
		if o.Kind() == "Service" || o.Kind() == "Secret" {
			if got := rule.Check(o); len(got) != 0 {
				t.Errorf("non-pod object %s/%s flagged: %v", o.Kind(), o.Name(), got)
			}
		}
	}
}

// TestEnginesAgreeOnInvariants: the compiled, interpreted, and shadow
// paths all evaluate invariants through registry.validateVersion, so
// their verdicts on the same object must be identical.
func TestEnginesAgreeOnInvariants(t *testing.T) {
	objs, pol, rule := storeFixture(t)
	for _, interpreted := range []bool{false, true} {
		reg := registry.New(registry.Config{CacheSize: 64, Interpreted: interpreted})
		e, err := reg.Register("store", registry.Selector{Namespace: "store"}, pol.Validator)
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.SetInvariants("store", []registry.Invariant{rule}); err != nil {
			t.Fatal(err)
		}
		for _, o := range objs {
			if vs := reg.Validate(e, nil, o); len(vs) != 0 {
				t.Errorf("interpreted=%v: benign %s/%s denied: %v", interpreted, o.Kind(), o.Name(), vs)
			}
		}
		for _, o := range violatingAdmissions(t, objs) {
			if vs := reg.Validate(e, nil, o); len(vs) == 0 {
				t.Errorf("interpreted=%v: cross-mount %s forwarded", interpreted, o.Name())
			}
		}
	}
}

// TestRawPathFallsBackUnderInvariants: an entry carrying invariants must
// never decide on the raw streaming view (the scan vouches for schema
// shape only), but cached decode-path verdicts may short-circuit.
func TestRawPathFallsBackUnderInvariants(t *testing.T) {
	objs, pol, rule := storeFixture(t)
	reg := registry.New(registry.Config{CacheSize: 64})
	e, err := reg.Register("store", registry.Selector{Namespace: "store"}, pol.Validator)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.SetInvariants("store", []registry.Invariant{rule}); err != nil {
		t.Fatal(err)
	}
	o := objs[0]
	body, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	if _, decided := reg.ValidateRaw(e, body); decided {
		t.Error("raw path decided for an entry with invariants before any cached verdict")
	}
	// Decode-path validation populates the cache; the raw path may now
	// answer from it (same generation, invariants included).
	if vs := reg.Validate(e, body, o); len(vs) != 0 {
		t.Fatalf("benign object denied: %v", vs)
	}
	vs, decided := reg.ValidateRaw(e, body)
	if !decided || len(vs) != 0 {
		t.Errorf("cache short-circuit lost: decided=%v vs=%v", decided, vs)
	}
}

// TestCrossResourceInterleavingProperty is the satellite property test:
// across random interleavings of the three services' admissions — and
// with policy Swaps racing the traffic — a secret-mount violation is
// never forwarded and benign admissions are never denied, through a real
// proxy with the raw fast path enabled. The rule is stateless per
// request, so arrival order cannot matter; this test verifies that
// property end to end rather than assuming it.
func TestCrossResourceInterleavingProperty(t *testing.T) {
	objs, pol, rule := storeFixture(t)

	var events []replay.Event
	for _, o := range objs {
		for _, method := range []string{"POST", "PUT"} {
			ev, err := replay.BenignEvent("store", o, method)
			if err != nil {
				t.Fatal(err)
			}
			events = append(events, ev)
		}
	}
	for i, o := range violatingAdmissions(t, objs) {
		sc := mutate.Scenario{
			ID:          fmt.Sprintf("INV/cross-resource/%02d", i+1),
			AttackID:    "INV",
			Class:       "cross-resource",
			Description: "secret owned by another component consumed by this pod",
			Object:      o,
			Method:      "POST",
		}
		ev, err := replay.AttackEvent("store", sc)
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}

	reg := registry.New(registry.Config{CacheSize: 256})
	if _, err := reg.Register("store", registry.Selector{Namespace: "store"}, pol.Validator); err != nil {
		t.Fatal(err)
	}
	if err := reg.SetInvariants("store", []registry.Invariant{rule}); err != nil {
		t.Fatal(err)
	}
	p, err := proxy.New(proxy.Config{
		Upstream:  "http://upstream.invalid",
		Transport: nullTransport{},
		Registry:  reg,
		ProxyUser: "kubefence-proxy",
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p)
	defer ts.Close()

	// Swaps race the replayed traffic: a reader must never observe a
	// snapshot without the invariants (Swap carries them over), so the
	// verdicts cannot change mid-run.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := reg.Swap("store", pol.Validator); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for seed := int64(1); seed <= 8; seed++ {
		res, err := replay.Run(ts.URL, events, replay.Options{Concurrency: 8, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Clean() {
			t.Fatalf("seed %d: FN=%d FP=%d errors=%d mismatches=%v",
				seed, res.FalseNegatives, res.FalsePositives, res.Errors, res.Mismatches)
		}
	}
	close(stop)
	wg.Wait()
}
