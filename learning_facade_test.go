package kubefence

import (
	"strings"
	"testing"
)

// TestLearnPolicyFacade mines a policy from a rendered chart trace via
// the public API and checks it behaves like any other Policy: validates
// benign traffic, denies unobserved surface, compiles, registers.
func TestLearnPolicyFacade(t *testing.T) {
	c, err := LoadBuiltinChart("nginx")
	if err != nil {
		t.Fatal(err)
	}
	manifests, err := RenderChart(c, nil, ReleaseOptions{Name: "rel", Namespace: "nginx"})
	if err != nil {
		t.Fatal(err)
	}
	miner := NewMiner("nginx", LearnOptions{})
	for _, data := range manifests {
		if err := miner.ObserveManifest(data); err != nil {
			t.Fatal(err)
		}
		if err := miner.ObserveManifest(data); err != nil { // reconcile re-apply
			t.Fatal(err)
		}
	}
	if miner.Requests() != uint64(2*len(manifests)) {
		t.Fatalf("observed %d", miner.Requests())
	}
	mined, err := miner.Policy()
	if err != nil {
		t.Fatal(err)
	}
	for _, data := range manifests {
		vs, err := mined.ValidateManifest(data)
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) != 0 {
			t.Fatalf("mined policy denies its own trace: %v", vs)
		}
	}
	if vs := mined.ValidateObject(map[string]any{
		"apiVersion": "v1", "kind": "Pod",
		"metadata": map[string]any{"name": "x", "namespace": "nginx"},
		"spec":     map[string]any{"hostNetwork": true},
	}); len(vs) == 0 {
		t.Error("mined policy allowed a never-observed shape")
	}
	if _, err := mined.Compile(); err != nil {
		t.Fatalf("mined policy does not compile: %v", err)
	}

	// Summaries and the chart diff are the audit trail.
	if len(miner.Summaries()) == 0 {
		t.Error("no mined path summaries")
	}
	chartPol, err := GeneratePolicy(c, Options{Workload: "nginx"})
	if err != nil {
		t.Fatal(err)
	}
	d, err := miner.Diff(chartPol)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.MinedOnly) != 0 {
		t.Errorf("mined policy allows paths the chart policy does not: %v", d.MinedOnly)
	}
	if !strings.Contains(d.Render(), "nginx") {
		t.Error("diff render lost the workload")
	}
}

// TestRolloutFacade drives the lifecycle through the facade types.
func TestRolloutFacade(t *testing.T) {
	r := NewRegistry(RegistryConfig{})
	ctl := NewRolloutController(r, RolloutGates{MinLearnRequests: 2, MinShadowRequests: 2})
	if _, err := ctl.AddWorkload("w", Selector{Namespace: "ns"}, LearnOptions{}); err != nil {
		t.Fatal(err)
	}
	if mode, err := r.Mode("w"); err != nil || mode != ModeLearn {
		t.Fatalf("mode = %v, %v", mode, err)
	}
	obj := map[string]any{
		"apiVersion": "v1", "kind": "ConfigMap",
		"metadata": map[string]any{"name": "cm", "namespace": "ns"},
		"data":     map[string]any{"k": "v"},
	}
	e, _ := r.Entry("w")
	for i := 0; i < 3; i++ {
		e.ObserveLearn(obj)
	}
	ctl.Tick()
	if mode, _ := r.Mode("w"); mode != ModeShadow {
		t.Fatalf("mode = %v after learn tick", mode)
	}
	for i := 0; i < 3; i++ {
		if vs, _ := r.ShadowValidate(e, nil, obj); len(vs) != 0 {
			t.Fatalf("shadow denies the learned trace: %v", vs)
		}
	}
	ctl.Tick()
	if mode, _ := r.Mode("w"); mode != ModeEnforce {
		t.Fatalf("mode = %v after shadow tick (stats %+v)", mode, e.ShadowStats())
	}
	// Manual override and back.
	if err := r.SetMode("w", ModeShadow); err != nil {
		t.Fatal(err)
	}
	if mode, _ := r.Mode("w"); mode != ModeShadow {
		t.Fatal("SetMode override ignored")
	}
}

// TestRunLearningFacade smoke-runs the experiment through the facade on
// the reduced matrix.
func TestRunLearningFacade(t *testing.T) {
	rep, err := RunLearning(LearningOptions{
		Charts:            []string{"mlflow"},
		Concurrency:       4,
		MaxPerAttackClass: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("learning run not clean:\n%s", RenderLearningReport(rep))
	}
	if !strings.Contains(RenderLearningReport(rep), "mlflow") {
		t.Error("render lost the chart")
	}
}
