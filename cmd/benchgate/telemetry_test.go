package main

import (
	"os"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// telemetryReport builds a two-state report (off/on at one fleet size)
// with the given on-cell overhead ratio and allocs added.
func telemetryReport(nsOff, nsOn, allocsAdded float64, expoValid bool) experiments.TelemetryReport {
	return experiments.TelemetryReport{
		CacheSize:       0,
		SampleEvery:     128,
		ExpositionValid: expoValid,
		Results: []experiments.TelemetryResult{
			{Workloads: 1, Telemetry: "off", Requests: 3000, NsPerOp: nsOff, AllocsPerOp: 20},
			{Workloads: 1, Telemetry: "on", Requests: 3000, NsPerOp: nsOn, AllocsPerOp: 20 + allocsAdded},
		},
		Overheads: []experiments.TelemetryOverhead{
			{Workloads: 1, Telemetry: "on", Overhead: nsOn/nsOff - 1, AllocsAdded: allocsAdded},
		},
	}
}

func TestTelemetryGatePassesWithinCeiling(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", telemetryReport(4000, 4080, 0, true))
	fresh := writeJSON(t, dir, "fresh.json", telemetryReport(4100, 4150, 0, true))
	if err := run([]string{"-kind", "telemetry", "-baseline", base, "-fresh", fresh}, os.Stdout); err != nil {
		t.Fatalf("2%% overhead run failed: %v", err)
	}
}

func TestTelemetryGateFailsAboveOverheadCeiling(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", telemetryReport(4000, 4080, 0, true))
	fresh := writeJSON(t, dir, "fresh.json", telemetryReport(4000, 4400, 0, true))
	err := run([]string{"-kind", "telemetry", "-baseline", base, "-fresh", fresh}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("10%% overhead must fail the 5%% ceiling, got %v", err)
	}
}

func TestTelemetryGateFailsOnAddedAllocations(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", telemetryReport(4000, 4080, 0, true))
	// Overhead fine, but recording started allocating.
	fresh := writeJSON(t, dir, "fresh.json", telemetryReport(4000, 4080, 2, true))
	err := run([]string{"-kind", "telemetry", "-baseline", base, "-fresh", fresh, "-advise-relative"}, os.Stdout)
	if err == nil {
		t.Fatal("allocating recording must fail the gate even under -advise-relative")
	}
}

func TestTelemetryGateFailsOnInvalidExposition(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", telemetryReport(4000, 4080, 0, true))
	fresh := writeJSON(t, dir, "fresh.json", telemetryReport(4000, 4080, 0, false))
	err := run([]string{"-kind", "telemetry", "-baseline", base, "-fresh", fresh, "-advise-relative"}, os.Stdout)
	if err == nil {
		t.Fatal("invalid exposition must fail the gate even under -advise-relative")
	}
}

func TestTelemetryGateAdvisesRelativeOnForeignHardware(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", telemetryReport(4000, 4080, 0, true))
	// Both cells 2x slower (foreign hardware), overhead ratio still 2%:
	// wall-clock comparisons must downgrade to advisory, the ratio holds.
	fresh := writeJSON(t, dir, "fresh.json", telemetryReport(8000, 8160, 0, true))
	if err := run([]string{"-kind", "telemetry", "-baseline", base, "-fresh", fresh, "-advise-relative"}, os.Stdout); err != nil {
		t.Fatalf("same-ratio run on slower hardware failed under -advise-relative: %v", err)
	}
	// Without -advise-relative the same run fails on the ns/op cells.
	if err := run([]string{"-kind", "telemetry", "-baseline", base, "-fresh", fresh}, os.Stdout); err == nil {
		t.Fatal("2x ns/op regression must fail without -advise-relative")
	}
}

func TestTelemetryGateCustomCeiling(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", telemetryReport(4000, 4120, 0, true))
	fresh := writeJSON(t, dir, "fresh.json", telemetryReport(4000, 4120, 0, true))
	// 3% overhead passes the default ceiling but not a 1% one.
	if err := run([]string{"-kind", "telemetry", "-baseline", base, "-fresh", fresh}, os.Stdout); err != nil {
		t.Fatalf("3%% overhead failed the default ceiling: %v", err)
	}
	if err := run([]string{"-kind", "telemetry", "-baseline", base, "-fresh", fresh,
		"-max-telemetry-overhead", "0.01"}, os.Stdout); err == nil {
		t.Fatal("3% overhead must fail a 1% ceiling")
	}
}
