package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func writeJSON(t *testing.T, dir, name string, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func throughput(workloads int, ops float64) experiments.ThroughputResult {
	return experiments.ThroughputResult{Workloads: workloads, OpsPerSec: ops}
}

func latencyReport(coldInterp, coldCompiled float64) experiments.LatencyReport {
	return experiments.LatencyReport{
		Results: []experiments.LatencyResult{
			{Workloads: 1, Engine: "interpreted", Mode: "cold", NsPerOp: coldInterp, AllocsPerOp: 50},
			{Workloads: 1, Engine: "compiled", Mode: "cold", NsPerOp: coldCompiled},
			{Workloads: 1, Engine: "interpreted", Mode: "hot", NsPerOp: 600},
			{Workloads: 1, Engine: "compiled", Mode: "hot", NsPerOp: 600},
		},
		Speedups: []experiments.LatencySpeedup{
			{Workloads: 1, Cold: coldInterp / coldCompiled, Hot: 1.0},
		},
	}
}

func TestThroughputGatePassesWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", []experiments.ThroughputResult{throughput(1, 10000), throughput(5, 8000)})
	fresh := writeJSON(t, dir, "fresh.json", []experiments.ThroughputResult{throughput(1, 9200), throughput(5, 8500)})
	err := run([]string{"-kind", "throughput", "-baseline", base, "-fresh", fresh, "-tolerance", "0.15"}, os.Stdout)
	if err != nil {
		t.Fatalf("within-tolerance run failed: %v", err)
	}
}

func TestThroughputGateFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", []experiments.ThroughputResult{throughput(1, 10000)})
	fresh := writeJSON(t, dir, "fresh.json", []experiments.ThroughputResult{throughput(1, 6000)})
	err := run([]string{"-kind", "throughput", "-baseline", base, "-fresh", fresh}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("40%% throughput drop must fail the gate, got %v", err)
	}
}

func TestThroughputGateFailsOnMissingWorkloadCount(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", []experiments.ThroughputResult{throughput(1, 10000), throughput(5, 8000)})
	fresh := writeJSON(t, dir, "fresh.json", []experiments.ThroughputResult{throughput(1, 10000)})
	if err := run([]string{"-kind", "throughput", "-baseline", base, "-fresh", fresh}, os.Stdout); err == nil {
		t.Fatal("shrunken fresh matrix must fail the gate")
	}
}

func TestLatencyGatePassesAndEnforcesSpeedupFloor(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", latencyReport(10000, 1500))
	fresh := writeJSON(t, dir, "fresh.json", latencyReport(10500, 1450))
	if err := run([]string{"-kind", "latency", "-baseline", base, "-fresh", fresh}, os.Stdout); err != nil {
		t.Fatalf("healthy latency run failed: %v", err)
	}
	// Speedup collapsing below the floor fails even when absolute ns/op
	// stays within tolerance of a (hypothetically slow) baseline.
	slow := writeJSON(t, dir, "slowbase.json", latencyReport(10000, 6000))
	slowFresh := writeJSON(t, dir, "slowfresh.json", latencyReport(10000, 6000))
	err := run([]string{"-kind", "latency", "-baseline", slow, "-fresh", slowFresh}, os.Stdout)
	if err == nil {
		t.Fatal("1.7x cold speedup must fail the 2x floor")
	}
}

func TestLatencyGateFailsOnNsRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", latencyReport(10000, 1500))
	regressed := latencyReport(10000, 3000)
	fresh := writeJSON(t, dir, "fresh.json", regressed)
	err := run([]string{"-kind", "latency", "-baseline", base, "-fresh", fresh, "-tolerance", "0.15"}, os.Stdout)
	if err == nil {
		t.Fatal("2x compiled cold regression must fail the gate")
	}
}

func TestAdviseRelativeDowngradesOnlyRelativeChecks(t *testing.T) {
	dir := t.TempDir()
	// A 40% throughput drop passes in advisory mode...
	base := writeJSON(t, dir, "base.json", []experiments.ThroughputResult{throughput(1, 10000)})
	fresh := writeJSON(t, dir, "fresh.json", []experiments.ThroughputResult{throughput(1, 6000)})
	if err := run([]string{"-kind", "throughput", "-advise-relative",
		"-baseline", base, "-fresh", fresh}, os.Stdout); err != nil {
		t.Fatalf("advisory mode must not gate relative regressions: %v", err)
	}
	// ...but a collapsed speedup floor still fails: it is machine-
	// independent and gates everywhere.
	lb := writeJSON(t, dir, "lb.json", latencyReport(10000, 6000))
	lf := writeJSON(t, dir, "lf.json", latencyReport(10000, 6000))
	if err := run([]string{"-kind", "latency", "-advise-relative",
		"-baseline", lb, "-fresh", lf}, os.Stdout); err == nil {
		t.Fatal("speedup floor must gate even in advisory mode")
	}
	// ...and so does a shrunken fresh matrix...
	short := writeJSON(t, dir, "short.json", []experiments.ThroughputResult{})
	if err := run([]string{"-kind", "throughput", "-advise-relative",
		"-baseline", base, "-fresh", short}, os.Stdout); err == nil {
		t.Fatal("missing workload counts must gate even in advisory mode")
	}
	// ...and an allocs/op regression, which is machine-independent.
	lbAlloc := writeJSON(t, dir, "lb-alloc.json", latencyReport(10000, 1500))
	regressed := latencyReport(10000, 1500)
	for i := range regressed.Results {
		regressed.Results[i].AllocsPerOp += 40
	}
	lfAlloc := writeJSON(t, dir, "lf-alloc.json", regressed)
	if err := run([]string{"-kind", "latency", "-advise-relative",
		"-baseline", lbAlloc, "-fresh", lfAlloc}, os.Stdout); err == nil {
		t.Fatal("allocs/op regression must gate even in advisory mode")
	}
}

func TestGateRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-kind", "latency"}, os.Stdout); err == nil {
		t.Fatal("missing -baseline/-fresh must error")
	}
	if err := run([]string{"-kind", "nope", "-baseline", "a", "-fresh", "b"}, os.Stdout); err == nil {
		t.Fatal("unknown -kind must error")
	}
}

func learningResult(convNginx, convMlflow, fn, fp int) experiments.LearningResult {
	return experiments.LearningResult{
		Charts: []string{"nginx", "mlflow"},
		PerChart: []*experiments.LearningChartResult{
			{Chart: "mlflow", Converged: true, Promoted: true,
				ConvergenceRequests: convMlflow, AttackScenarios: 100},
			{Chart: "nginx", Converged: true, Promoted: true,
				ConvergenceRequests: convNginx, AttackScenarios: 100,
				FalseNegatives: fn, EnforceFalsePositives: fp},
		},
		AllConverged: true, AllPromoted: true,
		TotalScenarios: 200, TotalFalseNegatives: fn, TotalEnforceFP: fp,
	}
}

func TestLearningGatePassesWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", learningResult(24, 20, 0, 0))
	fresh := writeJSON(t, dir, "fresh.json", learningResult(26, 20, 0, 0))
	if err := run([]string{"-kind", "learning", "-baseline", base, "-fresh", fresh}, os.Stdout); err != nil {
		t.Fatalf("gate failed within tolerance: %v", err)
	}
}

func TestLearningGateFailsOnFalseNegatives(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", learningResult(24, 20, 0, 0))
	fresh := writeJSON(t, dir, "fresh.json", learningResult(24, 20, 1, 0))
	// FN gates even with -advise-relative: it is machine-independent.
	if err := run([]string{"-kind", "learning", "-advise-relative",
		"-baseline", base, "-fresh", fresh}, os.Stdout); err == nil {
		t.Fatal("false negatives must gate")
	}
}

func TestLearningGateFailsOnConvergenceRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", learningResult(24, 20, 0, 0))
	fresh := writeJSON(t, dir, "fresh.json", learningResult(48, 20, 0, 0))
	if err := run([]string{"-kind", "learning", "-baseline", base, "-fresh", fresh}, os.Stdout); err == nil {
		t.Fatal("a 2x convergence regression must gate")
	}
}

func TestLearningGateFailsOnIncompleteRollout(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", learningResult(24, 20, 0, 0))
	stuck := learningResult(24, 20, 0, 0)
	stuck.AllPromoted = false
	fresh := writeJSON(t, dir, "fresh.json", stuck)
	if err := run([]string{"-kind", "learning", "-baseline", base, "-fresh", fresh}, os.Stdout); err == nil {
		t.Fatal("an unpromoted workload must gate")
	}
}

func TestLearningGateToleratesChartSubset(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", learningResult(24, 20, 0, 0))
	subset := experiments.LearningResult{
		Charts: []string{"nginx"},
		PerChart: []*experiments.LearningChartResult{
			{Chart: "nginx", Converged: true, Promoted: true,
				ConvergenceRequests: 24, AttackScenarios: 100},
		},
		AllConverged: true, AllPromoted: true,
		TotalScenarios: 100,
	}
	fresh := writeJSON(t, dir, "fresh.json", subset)
	// The CI smoke path runs a chart subset; the gate compares only the
	// charts the fresh run covered.
	if err := run([]string{"-kind", "learning", "-baseline", base, "-fresh", fresh}, os.Stdout); err != nil {
		t.Fatalf("chart subset must not gate: %v", err)
	}
}
