package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/replay"
	"repro/internal/synth"
)

func writeJSON(t *testing.T, dir, name string, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func throughput(workloads int, ops float64) experiments.ThroughputResult {
	return experiments.ThroughputResult{Workloads: workloads, OpsPerSec: ops}
}

func latencyReport(coldInterp, coldCompiled float64) experiments.LatencyReport {
	return experiments.LatencyReport{
		Results: []experiments.LatencyResult{
			{Workloads: 1, Engine: "interpreted", Mode: "cold", NsPerOp: coldInterp, AllocsPerOp: 50},
			{Workloads: 1, Engine: "compiled", Mode: "cold", NsPerOp: coldCompiled},
			{Workloads: 1, Engine: "interpreted", Mode: "hot", NsPerOp: 600},
			{Workloads: 1, Engine: "compiled", Mode: "hot", NsPerOp: 600},
		},
		Speedups: []experiments.LatencySpeedup{
			{Workloads: 1, Cold: coldInterp / coldCompiled, Hot: 1.0},
		},
	}
}

func TestThroughputGatePassesWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", []experiments.ThroughputResult{throughput(1, 10000), throughput(5, 8000)})
	fresh := writeJSON(t, dir, "fresh.json", []experiments.ThroughputResult{throughput(1, 9200), throughput(5, 8500)})
	err := run([]string{"-kind", "throughput", "-baseline", base, "-fresh", fresh, "-tolerance", "0.15"}, os.Stdout)
	if err != nil {
		t.Fatalf("within-tolerance run failed: %v", err)
	}
}

func TestThroughputGateFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", []experiments.ThroughputResult{throughput(1, 10000)})
	fresh := writeJSON(t, dir, "fresh.json", []experiments.ThroughputResult{throughput(1, 6000)})
	err := run([]string{"-kind", "throughput", "-baseline", base, "-fresh", fresh}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("40%% throughput drop must fail the gate, got %v", err)
	}
}

func TestThroughputGateFailsOnMissingWorkloadCount(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", []experiments.ThroughputResult{throughput(1, 10000), throughput(5, 8000)})
	fresh := writeJSON(t, dir, "fresh.json", []experiments.ThroughputResult{throughput(1, 10000)})
	if err := run([]string{"-kind", "throughput", "-baseline", base, "-fresh", fresh}, os.Stdout); err == nil {
		t.Fatal("shrunken fresh matrix must fail the gate")
	}
}

func TestLatencyGatePassesAndEnforcesSpeedupFloor(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", latencyReport(10000, 1500))
	fresh := writeJSON(t, dir, "fresh.json", latencyReport(10500, 1450))
	if err := run([]string{"-kind", "latency", "-baseline", base, "-fresh", fresh}, os.Stdout); err != nil {
		t.Fatalf("healthy latency run failed: %v", err)
	}
	// Speedup collapsing below the floor fails even when absolute ns/op
	// stays within tolerance of a (hypothetically slow) baseline.
	slow := writeJSON(t, dir, "slowbase.json", latencyReport(10000, 6000))
	slowFresh := writeJSON(t, dir, "slowfresh.json", latencyReport(10000, 6000))
	err := run([]string{"-kind", "latency", "-baseline", slow, "-fresh", slowFresh}, os.Stdout)
	if err == nil {
		t.Fatal("1.7x cold speedup must fail the 2x floor")
	}
}

func TestLatencyGateFailsOnNsRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", latencyReport(10000, 1500))
	regressed := latencyReport(10000, 3000)
	fresh := writeJSON(t, dir, "fresh.json", regressed)
	err := run([]string{"-kind", "latency", "-baseline", base, "-fresh", fresh, "-tolerance", "0.15"}, os.Stdout)
	if err == nil {
		t.Fatal("2x compiled cold regression must fail the gate")
	}
}

func TestAdviseRelativeDowngradesOnlyRelativeChecks(t *testing.T) {
	dir := t.TempDir()
	// A 40% throughput drop passes in advisory mode...
	base := writeJSON(t, dir, "base.json", []experiments.ThroughputResult{throughput(1, 10000)})
	fresh := writeJSON(t, dir, "fresh.json", []experiments.ThroughputResult{throughput(1, 6000)})
	if err := run([]string{"-kind", "throughput", "-advise-relative",
		"-baseline", base, "-fresh", fresh}, os.Stdout); err != nil {
		t.Fatalf("advisory mode must not gate relative regressions: %v", err)
	}
	// ...but a collapsed speedup floor still fails: it is machine-
	// independent and gates everywhere.
	lb := writeJSON(t, dir, "lb.json", latencyReport(10000, 6000))
	lf := writeJSON(t, dir, "lf.json", latencyReport(10000, 6000))
	if err := run([]string{"-kind", "latency", "-advise-relative",
		"-baseline", lb, "-fresh", lf}, os.Stdout); err == nil {
		t.Fatal("speedup floor must gate even in advisory mode")
	}
	// ...and so does a shrunken fresh matrix...
	short := writeJSON(t, dir, "short.json", []experiments.ThroughputResult{})
	if err := run([]string{"-kind", "throughput", "-advise-relative",
		"-baseline", base, "-fresh", short}, os.Stdout); err == nil {
		t.Fatal("missing workload counts must gate even in advisory mode")
	}
	// ...and an allocs/op regression, which is machine-independent.
	lbAlloc := writeJSON(t, dir, "lb-alloc.json", latencyReport(10000, 1500))
	regressed := latencyReport(10000, 1500)
	for i := range regressed.Results {
		regressed.Results[i].AllocsPerOp += 40
	}
	lfAlloc := writeJSON(t, dir, "lf-alloc.json", regressed)
	if err := run([]string{"-kind", "latency", "-advise-relative",
		"-baseline", lbAlloc, "-fresh", lfAlloc}, os.Stdout); err == nil {
		t.Fatal("allocs/op regression must gate even in advisory mode")
	}
}

func TestGateRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-kind", "latency"}, os.Stdout); err == nil {
		t.Fatal("missing -baseline/-fresh must error")
	}
	if err := run([]string{"-kind", "nope", "-baseline", "a", "-fresh", "b"}, os.Stdout); err == nil {
		t.Fatal("unknown -kind must error")
	}
}

func learningResult(convNginx, convMlflow, fn, fp int) experiments.LearningResult {
	return experiments.LearningResult{
		Charts: []string{"nginx", "mlflow"},
		PerChart: []*experiments.LearningChartResult{
			{Chart: "mlflow", Converged: true, Promoted: true,
				ConvergenceRequests: convMlflow, AttackScenarios: 100},
			{Chart: "nginx", Converged: true, Promoted: true,
				ConvergenceRequests: convNginx, AttackScenarios: 100,
				FalseNegatives: fn, EnforceFalsePositives: fp},
		},
		AllConverged: true, AllPromoted: true,
		TotalScenarios: 200, TotalFalseNegatives: fn, TotalEnforceFP: fp,
	}
}

func TestLearningGatePassesWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", learningResult(24, 20, 0, 0))
	fresh := writeJSON(t, dir, "fresh.json", learningResult(26, 20, 0, 0))
	if err := run([]string{"-kind", "learning", "-baseline", base, "-fresh", fresh}, os.Stdout); err != nil {
		t.Fatalf("gate failed within tolerance: %v", err)
	}
}

func TestLearningGateFailsOnFalseNegatives(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", learningResult(24, 20, 0, 0))
	fresh := writeJSON(t, dir, "fresh.json", learningResult(24, 20, 1, 0))
	// FN gates even with -advise-relative: it is machine-independent.
	if err := run([]string{"-kind", "learning", "-advise-relative",
		"-baseline", base, "-fresh", fresh}, os.Stdout); err == nil {
		t.Fatal("false negatives must gate")
	}
}

func TestLearningGateFailsOnConvergenceRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", learningResult(24, 20, 0, 0))
	fresh := writeJSON(t, dir, "fresh.json", learningResult(48, 20, 0, 0))
	if err := run([]string{"-kind", "learning", "-baseline", base, "-fresh", fresh}, os.Stdout); err == nil {
		t.Fatal("a 2x convergence regression must gate")
	}
}

func TestLearningGateFailsOnIncompleteRollout(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", learningResult(24, 20, 0, 0))
	stuck := learningResult(24, 20, 0, 0)
	stuck.AllPromoted = false
	fresh := writeJSON(t, dir, "fresh.json", stuck)
	if err := run([]string{"-kind", "learning", "-baseline", base, "-fresh", fresh}, os.Stdout); err == nil {
		t.Fatal("an unpromoted workload must gate")
	}
}

func TestLearningGateToleratesChartSubset(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", learningResult(24, 20, 0, 0))
	subset := experiments.LearningResult{
		Charts: []string{"nginx"},
		PerChart: []*experiments.LearningChartResult{
			{Chart: "nginx", Converged: true, Promoted: true,
				ConvergenceRequests: 24, AttackScenarios: 100},
		},
		AllConverged: true, AllPromoted: true,
		TotalScenarios: 100,
	}
	fresh := writeJSON(t, dir, "fresh.json", subset)
	// The CI smoke path runs a chart subset; the gate compares only the
	// charts the fresh run covered.
	if err := run([]string{"-kind", "learning", "-baseline", base, "-fresh", fresh}, os.Stdout); err != nil {
		t.Fatalf("chart subset must not gate: %v", err)
	}
}

func e2eReport(fastNs, decodeNs, fastAllocs, decodeAllocs float64) experiments.E2EReport {
	cell := func(path, mode, enc string, ns, allocs float64) experiments.E2EResult {
		return experiments.E2EResult{
			Workloads: 1, Path: path, Mode: mode, Encoding: enc,
			NsPerOp: ns, P50Ns: int64(ns), P99Ns: int64(ns * 3), AllocsPerOp: allocs,
		}
	}
	report := experiments.E2EReport{}
	for _, enc := range []string{"json", "yaml"} {
		report.Results = append(report.Results,
			cell("fast", "cold", enc, fastNs, fastAllocs),
			cell("decode", "cold", enc, decodeNs, decodeAllocs),
			cell("fast", "hot", enc, fastNs/2, fastAllocs),
			cell("decode", "hot", enc, decodeNs*0.9, decodeAllocs),
		)
		report.Speedups = append(report.Speedups,
			experiments.E2ESpeedup{Workloads: 1, Mode: "cold", Encoding: enc,
				Speedup: decodeNs / fastNs, AllocReduction: 1 - fastAllocs/decodeAllocs},
			experiments.E2ESpeedup{Workloads: 1, Mode: "hot", Encoding: enc,
				Speedup: decodeNs * 0.9 / (fastNs / 2), AllocReduction: 1 - fastAllocs/decodeAllocs},
		)
	}
	return report
}

// TestE2EGateRequiresYAMLCells: a fresh report without YAML-encoding
// speedup cells (e.g. regenerated by an older binary) must fail — the
// YAML fast pass would otherwise run ungated.
func TestE2EGateRequiresYAMLCells(t *testing.T) {
	dir := t.TempDir()
	jsonOnly := e2eReport(7000, 18000, 15, 116)
	var trimmedResults []experiments.E2EResult
	for _, res := range jsonOnly.Results {
		if res.Encoding != "yaml" {
			trimmedResults = append(trimmedResults, res)
		}
	}
	var trimmedSpeedups []experiments.E2ESpeedup
	for _, sp := range jsonOnly.Speedups {
		if sp.Encoding != "yaml" {
			trimmedSpeedups = append(trimmedSpeedups, sp)
		}
	}
	jsonOnly.Results, jsonOnly.Speedups = trimmedResults, trimmedSpeedups
	base := writeJSON(t, dir, "base.json", jsonOnly)
	fresh := writeJSON(t, dir, "fresh.json", jsonOnly)
	err := run([]string{"-kind", "e2e", "-baseline", base, "-fresh", fresh, "-advise-relative"}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("fresh report without YAML cells must fail the gate, got %v", err)
	}
}

func TestE2EGatePassesWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", e2eReport(7000, 18000, 15, 116))
	fresh := writeJSON(t, dir, "fresh.json", e2eReport(7500, 18500, 15, 115))
	if err := run([]string{"-kind", "e2e", "-baseline", base, "-fresh", fresh}, os.Stdout); err != nil {
		t.Fatalf("within-tolerance e2e run failed: %v", err)
	}
}

func TestE2EGateFailsOnFastPathAllocRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", e2eReport(7000, 18000, 15, 116))
	fresh := writeJSON(t, dir, "fresh.json", e2eReport(7000, 18000, 40, 116))
	err := run([]string{"-kind", "e2e", "-baseline", base, "-fresh", fresh, "-advise-relative"}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("fast-path allocs/op above baseline must fail even with -advise-relative, got %v", err)
	}
}

func TestE2EGateEnforcesSpeedupAndAllocReductionFloors(t *testing.T) {
	dir := t.TempDir()
	// Fast path barely faster and barely cheaper: both floors violated.
	base := writeJSON(t, dir, "base.json", e2eReport(10000, 11000, 100, 116))
	fresh := writeJSON(t, dir, "fresh.json", e2eReport(10000, 11000, 100, 116))
	err := run([]string{"-kind", "e2e", "-baseline", base, "-fresh", fresh, "-advise-relative"}, os.Stdout)
	if err == nil {
		t.Fatal("speedup and alloc-reduction floors must gate on foreign hardware")
	}
}

func TestE2EGateNsRegressionAdvisoryOnForeignHardware(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", e2eReport(7000, 18000, 15, 116))
	fresh := writeJSON(t, dir, "fresh.json", e2eReport(14000, 36000, 15, 116))
	// Doubled wall clock: fails strict, passes -advise-relative (ratios
	// and allocations are unchanged).
	if err := run([]string{"-kind", "e2e", "-baseline", base, "-fresh", fresh}, os.Stdout); err == nil {
		t.Fatal("doubled ns/op must fail the strict gate")
	}
	if err := run([]string{"-kind", "e2e", "-baseline", base, "-fresh", fresh, "-advise-relative"}, os.Stdout); err != nil {
		t.Fatalf("wall-clock regression must be advisory on foreign hardware: %v", err)
	}
}

func TestE2EGateFailsOnMissingCell(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", e2eReport(7000, 18000, 15, 116))
	missing := e2eReport(7000, 18000, 15, 116)
	missing.Results = missing.Results[:2]
	fresh := writeJSON(t, dir, "fresh.json", missing)
	if err := run([]string{"-kind", "e2e", "-baseline", base, "-fresh", fresh, "-advise-relative"}, os.Stdout); err == nil {
		t.Fatal("missing fresh cells must fail the gate")
	}
}

func scenariosResult(counts []int, evPerSec float64) experiments.ScenariosResult {
	r := experiments.ScenariosResult{
		Synth: counts[len(counts)-1], Seed: 1, Concurrency: 8,
		Generator:     synth.Options{Seed: 1, Count: counts[len(counts)-1]}.Resolved(),
		VerifiedPairs: true,
		Counts:        counts,
	}
	for _, engine := range []string{"raw", "compiled", "interpreted"} {
		for _, c := range counts {
			cell := experiments.ScenarioCell{Workloads: c, Engine: engine}
			cell.Events = c * 120
			cell.BenignEvents = c * 20
			cell.AttackEvents = c * 100
			cell.Blocked = c * 100
			cell.EventsPerSec = evPerSec
			r.Cells = append(r.Cells, cell)
		}
		r.Flatness = append(r.Flatness, experiments.FlatnessSummary{
			Engine: engine, MinWorkloads: counts[0], MaxWorkloads: counts[len(counts)-1],
			Ratio: 0.95,
		})
	}
	return r
}

func TestScenariosGatePassesOnCleanRun(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", scenariosResult([]int{1, 25, 50, 100}, 20000))
	fresh := writeJSON(t, dir, "fresh.json", scenariosResult([]int{1, 25, 50, 100}, 19000))
	if err := run([]string{"-kind", "scenarios", "-baseline", base, "-fresh", fresh}, os.Stdout); err != nil {
		t.Fatalf("clean scenarios run failed: %v", err)
	}
}

func TestScenariosGateFailsOnFalseNegatives(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", scenariosResult([]int{1, 100}, 20000))
	leaked := scenariosResult([]int{1, 100}, 20000)
	leaked.TotalFalseNegatives = 2
	fresh := writeJSON(t, dir, "fresh.json", leaked)
	// FN gates even with -advise-relative: replay scores are counts from
	// a deterministic trace, not wall clock.
	if err := run([]string{"-kind", "scenarios", "-advise-relative",
		"-baseline", base, "-fresh", fresh}, os.Stdout); err == nil {
		t.Fatal("false negatives must gate")
	}
}

func TestScenariosGateFailsOnUnverifiedPairs(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", scenariosResult([]int{1, 100}, 20000))
	unverified := scenariosResult([]int{1, 100}, 20000)
	unverified.VerifiedPairs = false
	fresh := writeJSON(t, dir, "fresh.json", unverified)
	if err := run([]string{"-kind", "scenarios", "-advise-relative",
		"-baseline", base, "-fresh", fresh}, os.Stdout); err == nil {
		t.Fatal("unverified (policy, trace) pairs must gate")
	}
}

func TestScenariosGateFailsOnEventCountDrift(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", scenariosResult([]int{1, 100}, 20000))
	drifted := scenariosResult([]int{1, 100}, 20000)
	drifted.Cells[1].Events += 7
	fresh := writeJSON(t, dir, "fresh.json", drifted)
	// Same seed, same generator knobs, same matrix cap: matching cells
	// must replay identical event counts. Determinism gates everywhere.
	if err := run([]string{"-kind", "scenarios", "-advise-relative",
		"-baseline", base, "-fresh", fresh}, os.Stdout); err == nil {
		t.Fatal("event-count drift under a fixed seed must gate")
	}
}

func TestScenariosGateSkipsDeterminismWhenInputsDiffer(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", scenariosResult([]int{1, 100}, 20000))
	other := scenariosResult([]int{1, 100}, 20000)
	other.Seed = 2
	other.Generator.Seed = 2
	other.Cells[1].Events += 7
	fresh := writeJSON(t, dir, "fresh.json", other)
	// A different seed generates a different corpus; event counts are not
	// comparable and must not gate.
	if err := run([]string{"-kind", "scenarios", "-baseline", base, "-fresh", fresh}, os.Stdout); err != nil {
		t.Fatalf("determinism check must skip when corpus inputs differ: %v", err)
	}
}

func TestScenariosGateEnforcesFlatnessFloor(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", scenariosResult([]int{1, 100}, 20000))
	sloped := scenariosResult([]int{1, 100}, 20000)
	sloped.Flatness[0].Ratio = 0.2
	fresh := writeJSON(t, dir, "fresh.json", sloped)
	// A per-request cost growing with registered-workload count is an
	// O(1)-resolve regression on any hardware: gates under advisory mode.
	if err := run([]string{"-kind", "scenarios", "-advise-relative",
		"-baseline", base, "-fresh", fresh}, os.Stdout); err == nil {
		t.Fatal("collapsed scaling flatness must gate")
	}
}

func TestScenariosGateToleratesCountSubset(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", scenariosResult([]int{1, 25, 50, 100}, 20000))
	smoke := scenariosResult([]int{1, 25}, 20000)
	smoke.Synth = 25
	smoke.Generator.Count = 25
	fresh := writeJSON(t, dir, "fresh.json", smoke)
	// The CI smoke path measures a 25-workload corpus prefix; prefix
	// stability makes its {1, 25} cells line up with the baseline's, and
	// the baseline cells it did not run are skipped.
	if err := run([]string{"-kind", "scenarios", "-baseline", base, "-fresh", fresh}, os.Stdout); err != nil {
		t.Fatalf("count subset must not gate: %v", err)
	}
}

func TestScenariosGateEventsPerSecAdvisoryOnForeignHardware(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", scenariosResult([]int{1, 100}, 20000))
	fresh := writeJSON(t, dir, "fresh.json", scenariosResult([]int{1, 100}, 8000))
	// A halved events/sec fails strict but is advisory on foreign
	// hardware (counts and flatness are unchanged).
	if err := run([]string{"-kind", "scenarios", "-baseline", base, "-fresh", fresh}, os.Stdout); err == nil {
		t.Fatal("halved events/sec must fail the strict gate")
	}
	if err := run([]string{"-kind", "scenarios", "-advise-relative",
		"-baseline", base, "-fresh", fresh}, os.Stdout); err != nil {
		t.Fatalf("events/sec regression must be advisory on foreign hardware: %v", err)
	}
}

// planeResult builds a minimal tier report: a clean correctness matrix,
// hash + weighted zipf scaling curves at 1 and 8 replicas with the
// given weighted efficiency at 8, and a healthy cache-handoff cell.
func planeResult(effAt8 float64) experiments.PlaneResult {
	return experiments.PlaneResult{
		ReplicaCounts: []int{1, 8},
		Placements:    []string{"hash", "weighted"},
		Skews:         []string{"zipf"},
		Synth:         32,
		Seed:          1,
		Generator:     synth.Options{Seed: 1, Count: 32},
		VerifiedPairs: true,
		Cells: []experiments.PlaneCell{
			{Placement: "hash", Skew: "zipf", Replicas: 1, OpsPerSec: 1000, Efficiency: 1.0},
			{Placement: "hash", Skew: "zipf", Replicas: 8, OpsPerSec: 4200, Efficiency: 0.52},
			{Placement: "weighted", Skew: "zipf", Replicas: 1, OpsPerSec: 1000, Efficiency: 1.0},
			{Placement: "weighted", Skew: "zipf", Replicas: 8, OpsPerSec: 8000 * effAt8, Efficiency: effAt8},
		},
		Rebalance: &experiments.PlaneRebalanceCell{
			Replicas: 8, Skew: "zipf", Moves: 3, MovedWorkloads: 4,
			HandoffEntries: 40, Probes: 20, RetainedHits: 18, Retention: 0.9,
		},
		MatrixReplicas:  8,
		MatrixPlacement: "weighted",
		Matrix:          replay.Result{Events: 100, BenignEvents: 20, AttackEvents: 80},
	}
}

func TestPlaneGatePassesOnCleanRun(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", planeResult(0.85))
	fresh := writeJSON(t, dir, "fresh.json", planeResult(0.85))
	if err := run([]string{"-kind", "plane", "-baseline", base, "-fresh", fresh}, os.Stdout); err != nil {
		t.Fatalf("clean plane run failed the gate: %v", err)
	}
}

func TestPlaneGateEnforcesEfficiencyFloor(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", planeResult(0.85))
	fresh := writeJSON(t, dir, "fresh.json", planeResult(0.55))
	// The floor is a same-machine ratio from the fresh run, so it gates
	// even under -advise-relative.
	err := run([]string{"-kind", "plane", "-advise-relative",
		"-baseline", base, "-fresh", fresh}, os.Stdout)
	if err == nil {
		t.Fatal("weighted zipf efficiency 0.55 at 8 replicas must fail the 0.7 floor")
	}
}

func TestPlaneGateEnforcesDominance(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", planeResult(0.85))
	losing := planeResult(0.72)
	losing.CellFor("hash", "zipf", 8).Efficiency = 0.80
	fresh := writeJSON(t, dir, "fresh.json", losing)
	// 0.72 clears the floor but trails hash's 0.80 by more than the
	// 0.02 slack; dominance is a same-run ratio, so it gates even under
	// -advise-relative.
	if err := run([]string{"-kind", "plane", "-advise-relative",
		"-baseline", base, "-fresh", fresh}, os.Stdout); err == nil {
		t.Fatal("weighted placement losing to hash under zipf must fail the gate")
	}
}

func TestPlaneGateEnforcesCacheRetention(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", planeResult(0.85))
	cold := planeResult(0.85)
	cold.Rebalance.RetainedHits = 4
	cold.Rebalance.Retention = 0.2
	fresh := writeJSON(t, dir, "fresh.json", cold)
	if err := run([]string{"-kind", "plane", "-advise-relative",
		"-baseline", base, "-fresh", fresh}, os.Stdout); err == nil {
		t.Fatal("post-rebalance retention 0.2 must fail the 0.5 floor")
	}
}

func TestPlaneGateSkipsRetentionWithoutMoves(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", planeResult(0.85))
	still := planeResult(0.85)
	still.Rebalance = &experiments.PlaneRebalanceCell{Replicas: 8, Skew: "zipf"}
	fresh := writeJSON(t, dir, "fresh.json", still)
	if err := run([]string{"-kind", "plane", "-baseline", base, "-fresh", fresh}, os.Stdout); err != nil {
		t.Fatalf("a rebalance that moved nothing must not fail the retention floor: %v", err)
	}
}

func TestPlaneGateFailsOnFalseNegatives(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", planeResult(0.85))
	dirty := planeResult(0.85)
	dirty.TotalFalseNegatives = 3
	fresh := writeJSON(t, dir, "fresh.json", dirty)
	if err := run([]string{"-kind", "plane", "-advise-relative",
		"-baseline", base, "-fresh", fresh}, os.Stdout); err == nil {
		t.Fatal("false negatives must fail the plane gate everywhere")
	}
}

func TestPlaneGateToleratesReplicaSubset(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", planeResult(0.85))
	smoke := planeResult(0.85)
	smoke.ReplicaCounts = []int{1, 2}
	smoke.Cells = []experiments.PlaneCell{
		{Placement: "hash", Skew: "zipf", Replicas: 1, OpsPerSec: 1000, Efficiency: 1.0},
		{Placement: "hash", Skew: "zipf", Replicas: 2, OpsPerSec: 1800, Efficiency: 0.90},
		{Placement: "weighted", Skew: "zipf", Replicas: 1, OpsPerSec: 1000, Efficiency: 1.0},
		{Placement: "weighted", Skew: "zipf", Replicas: 2, OpsPerSec: 1900, Efficiency: 0.95},
	}
	smoke.Rebalance.Replicas = 2
	smoke.MatrixReplicas = 2
	fresh := writeJSON(t, dir, "fresh.json", smoke)
	if err := run([]string{"-kind", "plane", "-baseline", base, "-fresh", fresh}, os.Stdout); err != nil {
		t.Fatalf("PR smoke leg (no 8-replica cell) must pass: %v", err)
	}
}

func TestPlaneGateFailsOnMatrixDrift(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", planeResult(0.85))
	drifted := planeResult(0.85)
	drifted.Matrix.AttackEvents = 79
	drifted.Matrix.Events = 99
	fresh := writeJSON(t, dir, "fresh.json", drifted)
	if err := run([]string{"-kind", "plane", "-baseline", base, "-fresh", fresh}, os.Stdout); err == nil {
		t.Fatal("matrix event-count drift with matching corpus inputs must fail")
	}
}

func TestPlaneGateOpsAdvisoryOnForeignHardware(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", planeResult(0.85))
	slow := planeResult(0.85)
	for i := range slow.Cells {
		slow.Cells[i].OpsPerSec *= 0.5
	}
	fresh := writeJSON(t, dir, "fresh.json", slow)
	if err := run([]string{"-kind", "plane", "-baseline", base, "-fresh", fresh}, os.Stdout); err == nil {
		t.Fatal("50% ops/sec drop must fail on the baseline machine")
	}
	if err := run([]string{"-kind", "plane", "-advise-relative",
		"-baseline", base, "-fresh", fresh}, os.Stdout); err != nil {
		t.Fatalf("ops/sec drop must be advisory under -advise-relative: %v", err)
	}
}
