// Command benchgate is the CI benchmark regression gate: it compares a
// freshly measured benchmark JSON against the committed BENCH_*.json
// baseline and exits non-zero when performance regressed beyond a
// configurable tolerance, so a PR that slows the enforcement hot path
// fails its build instead of landing silently.
//
//	benchgate -kind throughput -baseline BENCH_throughput.json -fresh fresh.json
//	benchgate -kind latency    -baseline BENCH_latency.json    -fresh fresh.json
//	benchgate -kind learning   -baseline BENCH_learning.json   -fresh fresh.json
//	benchgate -kind e2e        -baseline BENCH_e2e.json        -fresh fresh.json
//	benchgate -kind scenarios  -baseline BENCH_scenarios.json  -fresh fresh.json
//	benchgate -kind plane      -baseline BENCH_plane.json      -fresh fresh.json
//	benchgate -kind telemetry  -baseline BENCH_telemetry.json  -fresh fresh.json
//
// Two classes of check run:
//
//   - Relative-to-baseline: fresh ops/sec must not drop more than
//     -tolerance (default 15%) below the baseline; fresh ns/op and
//     allocs/op must not rise more than -tolerance above it. Absolute
//     numbers are only meaningful when the gate runs on the machine
//     the baselines were recorded on; on foreign hardware (shared CI
//     runners) pass -advise-relative to print these comparisons as
//     ADVISORY instead of failing the build on them.
//   - Machine-independent invariants: the compiled engine's cold-path
//     speedup over the interpreted engine ships as part of
//     BENCH_latency.json and must stay at or above -min-speedup
//     (default 2.0) wherever the gate runs; a ratio of two measurements
//     taken on the same machine does not care how fast that machine
//     is. Allocation counts are deterministic for a given code path,
//     so allocs/op comparisons are machine-independent too. These
//     checks (and a shrunken result matrix) always gate.
//
// The e2e kind gates the streaming admission pipeline: per-cell ns/op
// and p99 comparisons are relative-to-baseline (advisory on foreign
// hardware), while allocs/op — deterministic per code path — and the
// fast-vs-decode speedup and allocation-reduction floors (same-machine
// ratios) gate everywhere. The allowed-request fast path must never
// quietly start allocating more than the committed baseline, and must
// keep beating the decode-first baseline by -min-e2e-speedup with at
// least -min-alloc-reduction of the allocations eliminated.
//
// The learning kind is machine-independent end to end — its numbers are
// request COUNTS from a deterministic replay, not wall-clock — so every
// learning check gates everywhere, -advise-relative or not: the mined
// policies must score zero false negatives and zero enforcement false
// positives on whatever matrix the fresh run used, every chart must
// converge and promote, and per-chart requests-to-convergence may not
// regress more than -tolerance over the committed baseline.
//
// The scenarios kind gates the synthetic workload corpus. Machine-
// independent checks always gate: every generated (policy, trace) pair
// verified, zero false negatives / false positives / errors across every
// (workload count, engine) cell, and per-engine scaling flatness — the
// same-machine ratio of events/sec at the largest workload count over
// the smallest multi-workload count — at or above -min-flatness (a
// per-request cost that
// grows with registered-workload count is an O(1)-resolve regression
// regardless of hardware). When the fresh run used the same seed,
// generator knobs, and matrix cap as the baseline, matching cells must
// also replay byte-for-byte the same event counts (the corpus is
// deterministic and prefix-stable, so a CI smoke run over a 25-workload
// prefix is comparable cell-by-cell with the committed 100-workload
// baseline). Per-cell events/sec comparisons are relative-to-baseline
// and advisory-able like the other wall-clock checks.
//
// The plane kind gates the distributed admission tier. Machine-
// independent checks always gate: verified pairs, a zero-FN / zero-FP /
// zero-error correctness matrix (replayed through the rebalanced
// weighted tier), the scaling-efficiency floor — the fresh run's own
// ops/sec in the weighted-placement zipf cell at 8 replicas over 8x
// its single-replica per-replica rate must stay at or above
// -min-plane-efficiency — the weighted-vs-hash dominance check (the
// weighted placer's mean zipf efficiency across the measured fleet
// sizes of 2+ replicas may not fall more than two points below blind
// hashing's mean), and the
// post-rebalance cache-retention floor (-min-cache-retention): the
// fraction of migrated-workload probes the destination replica answers
// from the handed-off decision cache. Each is a same-machine ratio of
// measurements from one run, so it gates on any hardware. When the
// fresh run shares the baseline's corpus inputs, the correctness
// matrix's event counts must match the baseline exactly. Per-cell
// ops/sec comparisons are relative-to-baseline and advisory-able; a
// fresh run that measured only a tier-size subset (the PR smoke leg
// runs 1 and 2 replicas) gates everything except the 8-replica
// efficiency floor, which needs the nightly full matrix.
//
// The telemetry kind gates the observability layer's own cost. Machine-
// independent checks always gate: the fresh run's /metrics rendering
// must satisfy the exposition grammar, the "on" cell may add at most a
// rounding sliver of allocs/op over its same-run "off" cell (recording
// a decision on the allowed fast path must stay allocation-free), and
// the on/off and scrape/off overhead ratios — same-machine ratios of
// cells measured back to back in one process — must stay at or below
// -max-telemetry-overhead (default 5%). Per-cell ns/op and allocs/op
// comparisons against the committed baseline follow the usual rules:
// wall clock is relative and advisory-able, allocation counts gate
// everywhere (the scrape cell's allocs are excluded — the concurrent
// scraper's own allocations land in the same MemStats window and vary
// with machine speed). Cells the fresh run did not measure (a reduced
// CI matrix) are skipped.
//
// Every comparison is printed; failures are marked FAIL and summarized.
// Gate kinds dispatch over a table of gate functions sharing one
// options struct — adding a kind means adding a table entry.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/experiments"
	"repro/internal/plane"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

// gateOptions carries every flag-derived knob the gate functions share.
type gateOptions struct {
	baseline, fresh    string
	tolerance          float64
	minSpeedup         float64
	minE2ESpeedup      float64
	minAllocReduction  float64
	minFlatness        float64
	minPlaneEfficiency float64
	minCacheRetention  float64
	maxTelOverhead     float64
	advise             bool
}

// gateFunc is the common signature every gate kind implements: the
// returned failures always gate, advisories only report.
type gateFunc func(o gateOptions, out *os.File) (failures, advisories []string, err error)

// gates is the kind dispatch table.
var gates = map[string]gateFunc{
	"throughput": func(o gateOptions, out *os.File) ([]string, []string, error) {
		return gateThroughput(o.baseline, o.fresh, o.tolerance, o.advise, out)
	},
	"latency": func(o gateOptions, out *os.File) ([]string, []string, error) {
		return gateLatency(o.baseline, o.fresh, o.tolerance, o.minSpeedup, o.advise, out)
	},
	"learning": func(o gateOptions, out *os.File) ([]string, []string, error) {
		failures, err := gateLearning(o.baseline, o.fresh, o.tolerance, out)
		return failures, nil, err
	},
	"e2e": func(o gateOptions, out *os.File) ([]string, []string, error) {
		return gateE2E(o.baseline, o.fresh, o.tolerance,
			o.minE2ESpeedup, o.minAllocReduction, o.advise, out)
	},
	"scenarios": func(o gateOptions, out *os.File) ([]string, []string, error) {
		return gateScenarios(o.baseline, o.fresh, o.tolerance,
			o.minFlatness, o.advise, out)
	},
	"plane":     gatePlane,
	"telemetry": gateTelemetry,
}

// kindNames lists the dispatch table's keys, sorted for stable usage
// text.
func kindNames() []string {
	names := make([]string, 0, len(gates))
	for name := range gates {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("benchgate", flag.ExitOnError)
	kind := fs.String("kind", "", "baseline kind: "+strings.Join(kindNames(), " | "))
	baselinePath := fs.String("baseline", "", "committed BENCH_*.json baseline")
	freshPath := fs.String("fresh", "", "freshly measured JSON to gate")
	tolerance := fs.Float64("tolerance", 0.15, "allowed relative regression (0.15 = 15%)")
	minSpeedup := fs.Float64("min-speedup", 2.0, "latency: required compiled-vs-interpreted cold speedup")
	minE2ESpeedup := fs.Float64("min-e2e-speedup", 1.5, "e2e: required fast-vs-decode cold speedup")
	minAllocReduction := fs.Float64("min-alloc-reduction", 0.5, "e2e: required fraction of per-request allocations the fast path eliminates")
	minFlatness := fs.Float64("min-flatness", 0.5, "scenarios: required per-engine events/sec flatness ratio across workload counts")
	minPlaneEfficiency := fs.Float64("min-plane-efficiency", 0.7, "plane: required weighted-placement zipf scaling efficiency at 8 replicas")
	minCacheRetention := fs.Float64("min-cache-retention", 0.5, "plane: required post-rebalance decision-cache retention for migrated workloads")
	maxTelOverhead := fs.Float64("max-telemetry-overhead", 0.05, "telemetry: allowed on/off and scrape/off overhead ratio")
	adviseRelative := fs.Bool("advise-relative", false,
		"report relative-to-baseline regressions without failing (for runs on hardware other than the baseline machine); machine-independent checks still gate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baselinePath == "" || *freshPath == "" {
		return fmt.Errorf("-baseline and -fresh are required")
	}
	if *tolerance < 0 {
		return fmt.Errorf("-tolerance must be >= 0")
	}
	gate, ok := gates[*kind]
	if !ok {
		return fmt.Errorf("-kind: %q is not one of %s", *kind, strings.Join(kindNames(), ", "))
	}
	failures, advisories, err := gate(gateOptions{
		baseline:           *baselinePath,
		fresh:              *freshPath,
		tolerance:          *tolerance,
		minSpeedup:         *minSpeedup,
		minE2ESpeedup:      *minE2ESpeedup,
		minAllocReduction:  *minAllocReduction,
		minFlatness:        *minFlatness,
		minPlaneEfficiency: *minPlaneEfficiency,
		minCacheRetention:  *minCacheRetention,
		maxTelOverhead:     *maxTelOverhead,
		advise:             *adviseRelative,
	}, out)
	if err != nil {
		return err
	}
	if len(advisories) > 0 {
		fmt.Fprintf(out, "\n%d advisory regression(s) (not gating on this hardware):\n", len(advisories))
		for _, a := range advisories {
			fmt.Fprintln(out, "  ADVISE", a)
		}
	}
	if len(failures) > 0 {
		fmt.Fprintf(out, "\n%d regression(s):\n", len(failures))
		for _, f := range failures {
			fmt.Fprintln(out, "  FAIL", f)
		}
		return fmt.Errorf("benchmark regression beyond %.0f%% tolerance", *tolerance*100)
	}
	fmt.Fprintln(out, "\nbench gate passed")
	return nil
}

func loadJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// gateThroughput requires fresh ops/sec per workload count to stay
// within tolerance of the committed baseline.
func gateThroughput(baselinePath, freshPath string, tol float64, advise bool, out *os.File) (failures, advisories []string, err error) {
	var baseline, fresh []experiments.ThroughputResult
	if err := loadJSON(baselinePath, &baseline); err != nil {
		return nil, nil, err
	}
	if err := loadJSON(freshPath, &fresh); err != nil {
		return nil, nil, err
	}
	byCount := map[int]experiments.ThroughputResult{}
	for _, r := range fresh {
		byCount[r.Workloads] = r
	}
	relative := func(msg string) string {
		if advise {
			advisories = append(advisories, msg)
			return "ADVISE"
		}
		failures = append(failures, msg)
		return "FAIL"
	}
	fmt.Fprintf(out, "%-10s %-14s %-14s %-10s %s\n",
		"workloads", "base ops/sec", "fresh ops/sec", "delta", "verdict")
	for _, base := range baseline {
		fr, ok := byCount[base.Workloads]
		if !ok {
			failures = append(failures, fmt.Sprintf(
				"workloads=%d missing from fresh results", base.Workloads))
			continue
		}
		delta := fr.OpsPerSec/base.OpsPerSec - 1
		verdict := "ok"
		if fr.OpsPerSec < base.OpsPerSec*(1-tol) {
			verdict = relative(fmt.Sprintf(
				"workloads=%d ops/sec %.0f -> %.0f (%.1f%% drop, tolerance %.0f%%)",
				base.Workloads, base.OpsPerSec, fr.OpsPerSec, -delta*100, tol*100))
		}
		fmt.Fprintf(out, "%-10d %-14.0f %-14.0f %-+9.1f%% %s\n",
			base.Workloads, base.OpsPerSec, fr.OpsPerSec, delta*100, verdict)
	}
	return failures, advisories, nil
}

// gateLatency requires fresh ns/op and allocs/op per (workloads,
// engine, mode) cell to stay within tolerance of the baseline, and the
// machine-independent compiled cold-path speedup to hold its floor.
func gateLatency(baselinePath, freshPath string, tol, minSpeedup float64, advise bool, out *os.File) (failures, advisories []string, err error) {
	var baseline, fresh experiments.LatencyReport
	if err := loadJSON(baselinePath, &baseline); err != nil {
		return nil, nil, err
	}
	if err := loadJSON(freshPath, &fresh); err != nil {
		return nil, nil, err
	}
	relative := func(msg string) string {
		if advise {
			advisories = append(advisories, msg)
			return "ADVISE"
		}
		failures = append(failures, msg)
		return "FAIL"
	}
	fmt.Fprintf(out, "%-10s %-12s %-6s %-12s %-12s %-10s %s\n",
		"workloads", "engine", "mode", "base ns/op", "fresh ns/op", "delta", "verdict")
	for _, base := range baseline.Results {
		fr := fresh.Result(base.Workloads, base.Engine, base.Mode)
		if fr == nil {
			failures = append(failures, fmt.Sprintf(
				"workloads=%d engine=%s mode=%s missing from fresh results",
				base.Workloads, base.Engine, base.Mode))
			continue
		}
		delta := fr.NsPerOp/base.NsPerOp - 1
		verdict := "ok"
		if fr.NsPerOp > base.NsPerOp*(1+tol) {
			verdict = relative(fmt.Sprintf(
				"workloads=%d engine=%s mode=%s ns/op %.0f -> %.0f (+%.1f%%, tolerance %.0f%%)",
				base.Workloads, base.Engine, base.Mode,
				base.NsPerOp, fr.NsPerOp, delta*100, tol*100))
		}
		// Allocation counts are machine-independent (a unit of slack
		// absorbs GC-accounting jitter in the measurement itself), so
		// unlike wall-clock comparisons they gate even under
		// -advise-relative: a zero-alloc hot path must not regress
		// silently on foreign hardware.
		if fr.AllocsPerOp > base.AllocsPerOp*(1+tol)+1 {
			verdict = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"workloads=%d engine=%s mode=%s allocs/op %.1f -> %.1f (tolerance %.0f%%)",
				base.Workloads, base.Engine, base.Mode,
				base.AllocsPerOp, fr.AllocsPerOp, tol*100))
		}
		fmt.Fprintf(out, "%-10d %-12s %-6s %-12.0f %-12.0f %-+9.1f%% %s\n",
			base.Workloads, base.Engine, base.Mode, base.NsPerOp, fr.NsPerOp, delta*100, verdict)
	}
	for _, sp := range fresh.Speedups {
		verdict := "ok"
		if sp.Cold < minSpeedup {
			verdict = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"workloads=%d compiled cold speedup %.2fx below the %.1fx floor",
				sp.Workloads, sp.Cold, minSpeedup))
		}
		fmt.Fprintf(out, "workloads=%-3d compiled cold speedup %.2fx (floor %.1fx) %s\n",
			sp.Workloads, sp.Cold, minSpeedup, verdict)
	}
	if len(fresh.Speedups) == 0 {
		failures = append(failures, "fresh latency report carries no speedup summary")
	}
	return failures, advisories, nil
}

// gateE2E gates the end-to-end admission path. Wall-clock comparisons
// (ns/op, p99) are relative-to-baseline and advisory-able; the
// machine-independent checks always gate: per-cell allocs/op must stay
// at or below the committed baseline (plus tolerance and a unit of
// GC-accounting slack), the cold fast-vs-decode speedup must hold its
// floor, and the fast path must keep eliminating at least the required
// fraction of per-request allocations.
func gateE2E(baselinePath, freshPath string, tol, minSpeedup, minAllocReduction float64, advise bool, out *os.File) (failures, advisories []string, err error) {
	var baseline, fresh experiments.E2EReport
	if err := loadJSON(baselinePath, &baseline); err != nil {
		return nil, nil, err
	}
	if err := loadJSON(freshPath, &fresh); err != nil {
		return nil, nil, err
	}
	relative := func(msg string) string {
		if advise {
			advisories = append(advisories, msg)
			return "ADVISE"
		}
		failures = append(failures, msg)
		return "FAIL"
	}
	enc := func(e string) string {
		if e == "" {
			return "json"
		}
		return e
	}
	fmt.Fprintf(out, "%-10s %-8s %-6s %-6s %-12s %-12s %-10s %-12s %-12s %s\n",
		"workloads", "path", "mode", "enc", "base ns/op", "fresh ns/op", "delta", "base allocs", "fresh allocs", "verdict")
	for _, base := range baseline.Results {
		fr := fresh.Result(base.Workloads, base.Path, base.Mode, base.Encoding)
		if fr == nil {
			failures = append(failures, fmt.Sprintf(
				"workloads=%d path=%s mode=%s encoding=%s missing from fresh results",
				base.Workloads, base.Path, base.Mode, enc(base.Encoding)))
			continue
		}
		cell := fmt.Sprintf("workloads=%d path=%s mode=%s encoding=%s",
			base.Workloads, base.Path, base.Mode, enc(base.Encoding))
		delta := fr.NsPerOp/base.NsPerOp - 1
		verdict := "ok"
		if fr.NsPerOp > base.NsPerOp*(1+tol) {
			verdict = relative(fmt.Sprintf(
				"%s ns/op %.0f -> %.0f (+%.1f%%, tolerance %.0f%%)",
				cell, base.NsPerOp, fr.NsPerOp, delta*100, tol*100))
		}
		if float64(fr.P99Ns) > float64(base.P99Ns)*(1+tol) {
			verdict = relative(fmt.Sprintf(
				"%s p99 %d -> %d ns (tolerance %.0f%%)",
				cell, base.P99Ns, fr.P99Ns, tol*100))
		}
		// Allocation counts are machine-independent and gate even under
		// -advise-relative: the decode-free fast path must never start
		// allocating more than the committed baseline silently. This
		// covers the YAML cells identically — the YAML fast pass is held
		// to its own committed allocation budget.
		if fr.AllocsPerOp > base.AllocsPerOp*(1+tol)+1 {
			verdict = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"%s allocs/op %.1f -> %.1f (tolerance %.0f%%)",
				cell, base.AllocsPerOp, fr.AllocsPerOp, tol*100))
		}
		fmt.Fprintf(out, "%-10d %-8s %-6s %-6s %-12.0f %-12.0f %-+9.1f%% %-12.1f %-12.1f %s\n",
			base.Workloads, base.Path, base.Mode, enc(base.Encoding), base.NsPerOp, fr.NsPerOp, delta*100,
			base.AllocsPerOp, fr.AllocsPerOp, verdict)
	}
	yamlSpeedups := 0
	for _, sp := range fresh.Speedups {
		if sp.Mode != "cold" {
			continue
		}
		if enc(sp.Encoding) == "yaml" {
			yamlSpeedups++
		}
		verdict := "ok"
		if sp.Speedup < minSpeedup {
			verdict = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"workloads=%d encoding=%s fast-path cold speedup %.2fx below the %.1fx floor",
				sp.Workloads, enc(sp.Encoding), sp.Speedup, minSpeedup))
		}
		if sp.AllocReduction < minAllocReduction {
			verdict = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"workloads=%d encoding=%s fast-path alloc reduction %.0f%% below the %.0f%% floor",
				sp.Workloads, enc(sp.Encoding), sp.AllocReduction*100, minAllocReduction*100))
		}
		fmt.Fprintf(out, "workloads=%-3d enc=%-4s fast-path cold speedup %.2fx (floor %.1fx), alloc reduction %.0f%% (floor %.0f%%) %s\n",
			sp.Workloads, enc(sp.Encoding), sp.Speedup, minSpeedup, sp.AllocReduction*100, minAllocReduction*100, verdict)
	}
	if len(fresh.Speedups) == 0 {
		failures = append(failures, "fresh e2e report carries no speedup summary")
	}
	// The YAML decode-path cells must exist and gate: a regeneration that
	// silently drops them would un-gate the YAML fast pass entirely.
	if yamlSpeedups == 0 {
		failures = append(failures, "fresh e2e report carries no YAML-encoding speedup cells")
	}
	return failures, advisories, nil
}

// gateLearning applies the machine-independent learning gates: the
// mined policies must hold the zero-FN / zero-FP line on the fresh
// run's matrix, every chart must converge and promote, and per-chart
// requests-to-convergence may not regress beyond the tolerance against
// the committed baseline. Counts from a deterministic replay do not
// depend on hardware, so everything here gates unconditionally.
func gateLearning(baselinePath, freshPath string, tol float64, out *os.File) (failures []string, err error) {
	var baseline, fresh experiments.LearningResult
	if err := loadJSON(baselinePath, &baseline); err != nil {
		return nil, err
	}
	if err := loadJSON(freshPath, &fresh); err != nil {
		return nil, err
	}
	if fresh.TotalFalseNegatives != 0 {
		failures = append(failures, fmt.Sprintf(
			"mined policies leaked %d attack scenario(s) (false negatives must be 0)",
			fresh.TotalFalseNegatives))
	}
	if fresh.TotalEnforceFP != 0 {
		failures = append(failures, fmt.Sprintf(
			"mined policies denied %d benign request(s) after promotion (enforce FPs must be 0)",
			fresh.TotalEnforceFP))
	}
	if !fresh.AllConverged || !fresh.AllPromoted {
		failures = append(failures, fmt.Sprintf(
			"rollout incomplete: converged=%v promoted=%v", fresh.AllConverged, fresh.AllPromoted))
	}
	if fresh.Errors != 0 {
		failures = append(failures, fmt.Sprintf("fresh run had %d replay errors", fresh.Errors))
	}
	fmt.Fprintf(out, "%-12s %-14s %-14s %-10s %-6s %-6s %s\n",
		"chart", "base converge", "fresh converge", "delta", "FN", "FP", "verdict")
	for _, base := range baseline.PerChart {
		fr := fresh.Chart(base.Chart)
		if fr == nil {
			// The fresh run may legitimately cover a chart subset (the
			// CI smoke path); only gate the charts it ran.
			continue
		}
		verdict := "ok"
		delta := 0.0
		if base.ConvergenceRequests > 0 {
			delta = float64(fr.ConvergenceRequests)/float64(base.ConvergenceRequests) - 1
		}
		if float64(fr.ConvergenceRequests) > float64(base.ConvergenceRequests)*(1+tol) {
			verdict = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"chart=%s convergence requests %d -> %d (+%.1f%%, tolerance %.0f%%)",
				base.Chart, base.ConvergenceRequests, fr.ConvergenceRequests,
				delta*100, tol*100))
		}
		fmt.Fprintf(out, "%-12s %-14d %-14d %-+9.1f%% %-6d %-6d %s\n",
			base.Chart, base.ConvergenceRequests, fr.ConvergenceRequests,
			delta*100, fr.FalseNegatives, fr.EnforceFalsePositives, verdict)
	}
	if len(fresh.PerChart) == 0 {
		failures = append(failures, "fresh learning report carries no per-chart results")
	}
	return failures, nil
}

// gateScenarios gates the synthetic-corpus scaling run. The
// machine-independent checks always gate: verified pairs, a zero-FN /
// zero-FP / zero-error line across every cell, and the per-engine
// flatness ratio (same-machine events/sec at the largest count over the
// smallest) at or above its floor. When the fresh run shares the
// baseline's seed, generator knobs, and matrix cap, matching
// (workloads, engine) cells must replay identical event counts — the
// corpus is deterministic and prefix-stable, so a smoke run over a
// corpus prefix still lines up cell-for-cell with the committed
// baseline. Per-cell events/sec is relative-to-baseline and
// advisory-able. Cells the fresh run did not measure (the reduced CI
// matrix) are skipped, like gateLearning's chart subset.
func gateScenarios(baselinePath, freshPath string, tol, minFlatness float64, advise bool, out *os.File) (failures, advisories []string, err error) {
	var baseline, fresh experiments.ScenariosResult
	if err := loadJSON(baselinePath, &baseline); err != nil {
		return nil, nil, err
	}
	if err := loadJSON(freshPath, &fresh); err != nil {
		return nil, nil, err
	}
	relative := func(msg string) string {
		if advise {
			advisories = append(advisories, msg)
			return "ADVISE"
		}
		failures = append(failures, msg)
		return "FAIL"
	}
	if !fresh.VerifiedPairs {
		failures = append(failures, "fresh run did not verify every generated (policy, trace) pair")
	}
	if fresh.TotalFalseNegatives != 0 {
		failures = append(failures, fmt.Sprintf(
			"generated corpus leaked %d attack scenario(s) (false negatives must be 0)",
			fresh.TotalFalseNegatives))
	}
	if fresh.TotalFalsePositives != 0 {
		failures = append(failures, fmt.Sprintf(
			"generated corpus denied %d benign request(s) (false positives must be 0)",
			fresh.TotalFalsePositives))
	}
	if fresh.Errors != 0 {
		failures = append(failures, fmt.Sprintf("fresh run had %d replay errors", fresh.Errors))
	}
	if len(fresh.Cells) == 0 {
		failures = append(failures, "fresh scenarios report carries no cells")
	}
	// Event counts are deterministic for a given (seed, generator, matrix
	// cap); comparing them is only meaningful when those inputs match.
	// Corpus size is deliberately excluded: workload i depends only on
	// (seed, i), so a smaller corpus is an exact prefix of a larger one
	// and their shared cells still line up.
	baseGen, freshGen := baseline.Generator, fresh.Generator
	baseGen.Count, freshGen.Count = 0, 0
	comparable := fresh.Seed == baseline.Seed && freshGen == baseGen &&
		fresh.MaxPerAttackClass == baseline.MaxPerAttackClass
	if !comparable {
		fmt.Fprintln(out, "corpus inputs differ from baseline (seed, generator knobs, or matrix cap); skipping determinism and events/sec comparisons")
	}
	fmt.Fprintf(out, "%-10s %-12s %-12s %-14s %-14s %-10s %s\n",
		"workloads", "engine", "base events", "base ev/sec", "fresh ev/sec", "delta", "verdict")
	for _, base := range baseline.Cells {
		fr := fresh.Cell(base.Workloads, base.Engine)
		if fr == nil {
			// The fresh run may legitimately measure a count subset (the
			// CI smoke path); only gate the cells it ran.
			continue
		}
		verdict := "ok"
		delta := 0.0
		if comparable {
			if fr.Events != base.Events || fr.BenignEvents != base.BenignEvents ||
				fr.AttackEvents != base.AttackEvents {
				verdict = "FAIL"
				failures = append(failures, fmt.Sprintf(
					"workloads=%d engine=%s event counts drifted from baseline: %d/%d/%d -> %d/%d/%d (total/benign/attack; corpus must be deterministic for a fixed seed)",
					base.Workloads, base.Engine,
					base.Events, base.BenignEvents, base.AttackEvents,
					fr.Events, fr.BenignEvents, fr.AttackEvents))
			}
			if base.EventsPerSec > 0 {
				delta = fr.EventsPerSec/base.EventsPerSec - 1
			}
			if fr.EventsPerSec < base.EventsPerSec*(1-tol) {
				verdict = relative(fmt.Sprintf(
					"workloads=%d engine=%s events/sec %.0f -> %.0f (%.1f%% drop, tolerance %.0f%%)",
					base.Workloads, base.Engine, base.EventsPerSec, fr.EventsPerSec,
					-delta*100, tol*100))
			}
		}
		fmt.Fprintf(out, "%-10d %-12s %-12d %-14.0f %-14.0f %-+9.1f%% %s\n",
			base.Workloads, base.Engine, base.Events, base.EventsPerSec,
			fr.EventsPerSec, delta*100, verdict)
	}
	// Flatness is a same-machine ratio from the fresh run itself, so it
	// gates everywhere, like the latency and e2e speedup floors.
	for _, f := range fresh.Flatness {
		verdict := "ok"
		if f.MinWorkloads != f.MaxWorkloads && f.Ratio < minFlatness {
			verdict = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"engine=%s events/sec flatness %.2fx (%d -> %d workloads) below the %.2fx floor",
				f.Engine, f.Ratio, f.MinWorkloads, f.MaxWorkloads, minFlatness))
		}
		fmt.Fprintf(out, "engine=%-12s flatness %d -> %d workloads: %.2fx (floor %.2fx) %s\n",
			f.Engine, f.MinWorkloads, f.MaxWorkloads, f.Ratio, minFlatness, verdict)
	}
	if len(fresh.Flatness) == 0 {
		failures = append(failures, "fresh scenarios report carries no flatness summary")
	}
	return failures, advisories, nil
}

// gatePlane gates the distributed admission tier. Machine-independent
// checks always gate: verified pairs, a zero-FN / zero-FP / zero-error
// correctness matrix (through the rebalanced weighted tier), matrix
// event-count determinism against the baseline when the corpus inputs
// match, the weighted-zipf scaling-efficiency floor at 8 replicas, the
// weighted-vs-hash dominance check per measured tier size under zipf
// skew, and the post-rebalance cache-retention floor — each a
// same-machine ratio of measurements from the fresh run itself, so
// they hold on any hardware. Per-cell ops/sec comparisons are
// relative-to-baseline and advisory-able. A fresh run that measured
// only a tier-size subset (the PR smoke leg) skips the 8-replica
// efficiency floor, which needs the full matrix, but still gates
// correctness, dominance at the sizes it did measure, and retention.
func gatePlane(o gateOptions, out *os.File) (failures, advisories []string, err error) {
	var baseline, fresh experiments.PlaneResult
	if err := loadJSON(o.baseline, &baseline); err != nil {
		return nil, nil, err
	}
	if err := loadJSON(o.fresh, &fresh); err != nil {
		return nil, nil, err
	}
	relative := func(msg string) string {
		if o.advise {
			advisories = append(advisories, msg)
			return "ADVISE"
		}
		failures = append(failures, msg)
		return "FAIL"
	}
	if !fresh.VerifiedPairs {
		failures = append(failures, "fresh run did not verify every generated (policy, trace) pair")
	}
	if fresh.TotalFalseNegatives != 0 {
		failures = append(failures, fmt.Sprintf(
			"tier leaked %d attack scenario(s) (false negatives must be 0)",
			fresh.TotalFalseNegatives))
	}
	if fresh.TotalFalsePositives != 0 {
		failures = append(failures, fmt.Sprintf(
			"tier denied %d benign request(s) (false positives must be 0)",
			fresh.TotalFalsePositives))
	}
	if fresh.Errors != 0 {
		failures = append(failures, fmt.Sprintf("fresh run had %d replay errors", fresh.Errors))
	}
	if len(fresh.Cells) == 0 {
		failures = append(failures, "fresh plane report carries no cells")
	}

	// Corpus and matrix inputs are deterministic for a given (seed,
	// generator, corpus size, matrix cap); only compare event counts when
	// they all match.
	comparable := fresh.Seed == baseline.Seed && fresh.Generator == baseline.Generator &&
		fresh.Synth == baseline.Synth && fresh.MaxPerAttackClass == baseline.MaxPerAttackClass
	if comparable {
		if fresh.Matrix.Events != baseline.Matrix.Events ||
			fresh.Matrix.BenignEvents != baseline.Matrix.BenignEvents ||
			fresh.Matrix.AttackEvents != baseline.Matrix.AttackEvents {
			failures = append(failures, fmt.Sprintf(
				"correctness-matrix event counts drifted from baseline: %d/%d/%d -> %d/%d/%d (total/benign/attack; the corpus is deterministic for a fixed seed)",
				baseline.Matrix.Events, baseline.Matrix.BenignEvents, baseline.Matrix.AttackEvents,
				fresh.Matrix.Events, fresh.Matrix.BenignEvents, fresh.Matrix.AttackEvents))
		}
	} else {
		fmt.Fprintln(out, "corpus inputs differ from baseline (seed, generator knobs, corpus size, or matrix cap); skipping matrix determinism and ops/sec comparisons")
	}

	fmt.Fprintf(out, "%-10s %-8s %-9s %-14s %-14s %-10s %-12s %-6s %s\n",
		"placement", "skew", "replicas", "base ops/sec", "fresh ops/sec", "delta", "efficiency", "shed", "verdict")
	for i := range fresh.Cells {
		fc := &fresh.Cells[i]
		verdict := "ok"
		delta := 0.0
		base := baseline.CellFor(fc.Placement, fc.Skew, fc.Replicas)
		if base != nil && comparable {
			if base.OpsPerSec > 0 {
				delta = fc.OpsPerSec/base.OpsPerSec - 1
			}
			if fc.OpsPerSec < base.OpsPerSec*(1-o.tolerance) {
				verdict = relative(fmt.Sprintf(
					"placement=%s skew=%s replicas=%d ops/sec %.0f -> %.0f (%.1f%% drop, tolerance %.0f%%)",
					fc.Placement, fc.Skew, fc.Replicas, base.OpsPerSec, fc.OpsPerSec,
					-delta*100, o.tolerance*100))
			}
		}
		baseOps := 0.0
		if base != nil {
			baseOps = base.OpsPerSec
		}
		fmt.Fprintf(out, "%-10s %-8s %-9d %-14.0f %-14.0f %-+9.1f%% %-12.2f %-6d %s\n",
			fc.Placement, fc.Skew, fc.Replicas, baseOps, fc.OpsPerSec, delta*100,
			fc.Efficiency, fc.Shed, verdict)
	}

	weighted := string(plane.PlacementWeighted)
	hash := string(plane.PlacementHash)

	// The efficiency floor is the tier's scaling contract: the weighted
	// placer under zipf skew at 8 replicas. It gates whenever the fresh
	// run measured that cell; the PR smoke leg (1 and 2 replicas)
	// legitimately skips it.
	const floorReplicas = 8
	if cell := fresh.CellFor(weighted, experiments.SkewZipf, floorReplicas); cell != nil {
		verdict := "ok"
		if cell.Efficiency < o.minPlaneEfficiency {
			verdict = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"weighted zipf scaling efficiency %.2f at %d replicas below the %.2f floor",
				cell.Efficiency, floorReplicas, o.minPlaneEfficiency))
		}
		fmt.Fprintf(out, "weighted zipf scaling efficiency at %d replicas: %.2f (floor %.2f) %s\n",
			floorReplicas, cell.Efficiency, o.minPlaneEfficiency, verdict)
	} else {
		fmt.Fprintf(out, "fresh run has no weighted zipf %d-replica cell; efficiency floor not applicable (reduced matrix)\n",
			floorReplicas)
	}

	// Dominance: load-aware placement must never lose to blind hashing
	// under the skew it exists to fix. Both efficiencies are same-run
	// ratios, so the check is machine-independent. It compares the MEAN
	// efficiency across every measured fleet size of 2+ replicas: on
	// small, luckily-balanced tiers the two policies are a coin flip
	// around zero and a per-size check would flake on queueing noise,
	// while averaging keeps the structural signal (hash collapses as the
	// tier grows, weighted holds). Single replicas never count — with
	// nothing to place, both policies route every request to the same
	// proxy. The two-point slack absorbs residual noise.
	const dominanceSlack = 0.02
	var wSum, hSum float64
	var dominanceCells int
	for _, n := range fresh.ReplicaCounts {
		if n < 2 {
			continue
		}
		wc := fresh.CellFor(weighted, experiments.SkewZipf, n)
		hc := fresh.CellFor(hash, experiments.SkewZipf, n)
		if wc == nil || hc == nil {
			continue
		}
		wSum += wc.Efficiency
		hSum += hc.Efficiency
		dominanceCells++
		fmt.Fprintf(out, "zipf efficiency at %d replicas: weighted %.2f vs hash %.2f\n",
			n, wc.Efficiency, hc.Efficiency)
	}
	if dominanceCells > 0 {
		wMean := wSum / float64(dominanceCells)
		hMean := hSum / float64(dominanceCells)
		verdict := "ok"
		if wMean < hMean-dominanceSlack {
			verdict = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"mean weighted zipf efficiency %.2f across %d fleet sizes below hash placement's %.2f (slack %.2f)",
				wMean, dominanceCells, hMean, dominanceSlack))
		}
		fmt.Fprintf(out, "zipf dominance over %d fleet size(s): weighted mean %.2f vs hash mean %.2f (slack %.2f) %s\n",
			dominanceCells, wMean, hMean, dominanceSlack, verdict)
	}

	// Cache retention: the handoff contract. Migrated workloads must
	// keep at least -min-cache-retention of their probed decisions warm
	// at the destination — without the handoff this fraction is zero,
	// because every moved shard restarts cold.
	if rc := fresh.Rebalance; rc != nil {
		if rc.Probes > 0 {
			verdict := "ok"
			if rc.Retention < o.minCacheRetention {
				verdict = "FAIL"
				failures = append(failures, fmt.Sprintf(
					"post-rebalance cache retention %.2f (%d/%d probes) below the %.2f floor",
					rc.Retention, rc.RetainedHits, rc.Probes, o.minCacheRetention))
			}
			fmt.Fprintf(out, "post-rebalance cache retention at %d replicas: %d/%d probes warm (%.2f, floor %.2f) %s\n",
				rc.Replicas, rc.RetainedHits, rc.Probes, rc.Retention, o.minCacheRetention, verdict)
		} else {
			fmt.Fprintf(out, "rebalance at %d replicas moved no shards; cache-retention floor not applicable\n",
				rc.Replicas)
		}
	} else {
		fmt.Fprintln(out, "fresh run measured no rebalance cell (weighted placement or cache disabled); cache-retention floor not applicable")
	}
	return failures, advisories, nil
}

// gateTelemetry gates the observability layer's own cost. Machine-
// independent checks always gate: the exposition grammar, the
// allocation budget of the "on" cell over its same-run "off" cell
// (recording must stay alloc-free on the allowed fast path), and the
// overhead ratios — on/off and scrape/off are cells measured back to
// back in one process, so the ratio holds on any hardware. Per-cell
// ns/op against the committed baseline is relative and advisory-able;
// per-cell allocs/op gates everywhere except the scrape cell, whose
// MemStats window also contains the concurrent scraper's allocations
// (their count varies with how many scrapes the hardware fit into the
// measurement). Cells the fresh run did not measure are skipped.
func gateTelemetry(o gateOptions, out *os.File) (failures, advisories []string, err error) {
	var baseline, fresh experiments.TelemetryReport
	if err := loadJSON(o.baseline, &baseline); err != nil {
		return nil, nil, err
	}
	if err := loadJSON(o.fresh, &fresh); err != nil {
		return nil, nil, err
	}
	relative := func(msg string) string {
		if o.advise {
			advisories = append(advisories, msg)
			return "ADVISE"
		}
		failures = append(failures, msg)
		return "FAIL"
	}
	if !fresh.ExpositionValid {
		failures = append(failures, "fresh run's /metrics rendering failed exposition validation")
	}
	if len(fresh.Results) == 0 {
		failures = append(failures, "fresh telemetry report carries no cells")
	}
	fmt.Fprintf(out, "%-10s %-10s %-12s %-12s %-10s %-12s %-12s %s\n",
		"workloads", "telemetry", "base ns/op", "fresh ns/op", "delta", "base allocs", "fresh allocs", "verdict")
	for _, base := range baseline.Results {
		fr := fresh.Result(base.Workloads, base.Telemetry)
		if fr == nil {
			// The fresh run may legitimately measure a fleet-size subset
			// (the CI smoke path); only gate the cells it ran.
			continue
		}
		cell := fmt.Sprintf("workloads=%d telemetry=%s", base.Workloads, base.Telemetry)
		delta := 0.0
		if base.NsPerOp > 0 {
			delta = fr.NsPerOp/base.NsPerOp - 1
		}
		verdict := "ok"
		if fr.NsPerOp > base.NsPerOp*(1+o.tolerance) {
			verdict = relative(fmt.Sprintf(
				"%s ns/op %.0f -> %.0f (+%.1f%%, tolerance %.0f%%)",
				cell, base.NsPerOp, fr.NsPerOp, delta*100, o.tolerance*100))
		}
		// Allocation counts are machine-independent and gate even under
		// -advise-relative — except for the scrape cell, whose MemStats
		// window includes the concurrent scraper's own allocations, a
		// count that scales with machine speed rather than code path.
		if base.Telemetry != "scrape" && fr.AllocsPerOp > base.AllocsPerOp*(1+o.tolerance)+1 {
			verdict = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"%s allocs/op %.1f -> %.1f (tolerance %.0f%%)",
				cell, base.AllocsPerOp, fr.AllocsPerOp, o.tolerance*100))
		}
		fmt.Fprintf(out, "%-10d %-10s %-12.0f %-12.0f %-+9.1f%% %-12.1f %-12.1f %s\n",
			base.Workloads, base.Telemetry, base.NsPerOp, fr.NsPerOp, delta*100,
			base.AllocsPerOp, fr.AllocsPerOp, verdict)
	}
	// The overhead ratio and allocation budget come from the fresh run
	// itself (on/off/scrape cells measured back to back in one process),
	// so they gate on any hardware — this is the layer's core contract:
	// recording a decision costs at most -max-telemetry-overhead of wall
	// clock and zero allocations on the allowed fast path.
	onCells := 0
	for _, ov := range fresh.Overheads {
		verdict := "ok"
		if ov.Telemetry == "on" {
			onCells++
			// Half an alloc/op of slack absorbs GC-accounting jitter; a
			// real per-request allocation would add a full 1.0.
			if ov.AllocsAdded > 0.5 {
				verdict = "FAIL"
				failures = append(failures, fmt.Sprintf(
					"workloads=%d telemetry=on adds %.1f allocs/op (recording must stay allocation-free)",
					ov.Workloads, ov.AllocsAdded))
			}
		}
		if ov.Overhead > o.maxTelOverhead {
			verdict = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"workloads=%d telemetry=%s overhead %.2f%% above the %.1f%% ceiling",
				ov.Workloads, ov.Telemetry, ov.Overhead*100, o.maxTelOverhead*100))
		}
		fmt.Fprintf(out, "workloads=%-3d telemetry=%-7s overhead %+.2f%% (ceiling %.1f%%), allocs/op added %+.1f %s\n",
			ov.Workloads, ov.Telemetry, ov.Overhead*100, o.maxTelOverhead*100, ov.AllocsAdded, verdict)
	}
	if onCells == 0 {
		failures = append(failures, "fresh telemetry report carries no on-vs-off overhead cells")
	}
	return failures, advisories, nil
}
