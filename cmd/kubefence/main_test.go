package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeChartDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"Chart.yaml":  "name: disk\nversion: 0.1.0\n",
		"values.yaml": "replicas: 2\nimage:\n  registry: docker.io\n  repository: corp/app\n  tag: \"1.0\"\n",
		"templates/deploy.yaml": `
apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ .Release.Name }}-disk
spec:
  replicas: {{ .Values.replicas }}
  template:
    spec:
      containers:
        - name: app
          image: "{{ .Values.image.registry }}/{{ .Values.image.repository }}:{{ .Values.image.tag }}"
          securityContext:
            runAsNonRoot: true
`,
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadChartDir(t *testing.T) {
	dir := writeChartDir(t)
	c, err := loadChartDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "disk" || len(c.Templates) != 1 {
		t.Errorf("chart = %+v", c)
	}
	if _, err := loadChartDir(t.TempDir()); err == nil {
		t.Error("empty dir should error")
	}
}

func TestGenerateFromDirAndWorkload(t *testing.T) {
	dir := writeChartDir(t)
	res, err := generate(dir, "", "lenient", false)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Validator.Kinds["Deployment"]; !ok {
		t.Errorf("kinds = %v", res.Validator.AllowedKinds())
	}
	res, err = generate("", "nginx", "strict", false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "nginx" {
		t.Errorf("workload = %s", res.Workload)
	}
	if _, err := generate("", "", "lenient", false); err == nil {
		t.Error("missing chart/workload should error")
	}
	if _, err := generate("", "nginx", "bogus", false); err == nil {
		t.Error("bad mode should error")
	}
}

func TestRunGenerateToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "policy.yaml")
	if err := runGenerate([]string{"-workload", "mlflow", "-o", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Deployment:") {
		t.Errorf("policy file malformed:\n%.300s", data)
	}
	// Schema emission.
	outSchema := filepath.Join(t.TempDir(), "schema.yaml")
	if err := runGenerate([]string{"-workload", "mlflow", "-schema", "-o", outSchema}); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(outSchema)
	if !strings.Contains(string(data), "registry: docker.io") {
		t.Errorf("schema should lock registry:\n%.300s", data)
	}
}

func TestRunProxyValidation(t *testing.T) {
	if err := runProxy([]string{"-workload", "nginx"}); err == nil {
		t.Error("missing -upstream should error")
	}
	if err := runProxy([]string{"-workload", "nginx", "-upstream", "http://x",
		"-rollout", "observe"}); err == nil {
		t.Error("unknown -rollout mode should error")
	}
	// Learning needs per-workload scoping: a single cluster-wide
	// validator has no namespace to attribute observations to.
	if err := runProxy([]string{"-workload", "nginx", "-upstream", "http://x",
		"-rollout", "learn"}); err == nil {
		t.Error("-rollout learn without -workloads should error")
	}
	if err := runProxy([]string{"-workloads", "nginx", "-upstream", "http://x",
		"-mode", "bogus"}); err == nil {
		t.Error("unknown -mode should error")
	}
	if err := runProxy([]string{"-workloads", "nginx", "-workload", "nginx",
		"-upstream", "http://x"}); err == nil {
		t.Error("-workloads with -workload should error")
	}
	if err := runProxy([]string{"-workloads", " , ", "-upstream", "http://x"}); err == nil {
		t.Error("empty -workloads list should error")
	}
}

// TestRunProxySetupPaths drives every rollout branch through the full
// setup — policy generation, registry construction, controller wiring,
// trace tap — by occupying the listen port first, so ListenAndServe
// fails immediately after setup succeeds.
func TestRunProxySetupPaths(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addr := ln.Addr().String()

	cases := []struct {
		name string
		args []string
	}{
		{"single-chart", []string{"-workload", "nginx"}},
		{"enforce-strict", []string{"-workloads", "nginx,mlflow", "-mode", "strict", "-cache", "64"}},
		{"shadow", []string{"-workloads", "nginx", "-rollout", "shadow",
			"-trace-out", filepath.Join(t.TempDir(), "trace.jsonl")}},
		{"learn", []string{"-workloads", "nginx", "-rollout", "learn"}},
	}
	for _, tc := range cases {
		args := append(tc.args, "-upstream", "http://127.0.0.1:1", "-listen", addr)
		err := runProxy(args)
		if err == nil || !strings.Contains(err.Error(), "address already in use") {
			t.Errorf("%s: expected the occupied listen address to fail, got %v", tc.name, err)
		}
	}
}
