// Command kubefence generates KubeFence security policies from Helm
// charts and runs the enforcement proxy.
//
// Generate a policy from a chart directory (or a builtin workload):
//
//	kubefence generate -chart ./mychart -o policy.yaml
//	kubefence generate -workload nginx
//
// Run the enforcement proxy in front of an API server:
//
//	kubefence proxy -workload nginx -upstream http://127.0.0.1:8001 -listen :8443
//
// Or enforce several workload policies concurrently from one proxy, each
// scoped to the namespace named after its workload:
//
//	kubefence proxy -workloads all -upstream http://127.0.0.1:8001 -cache 4096
//
// Workloads without a usable chart can have their policies MINED from
// traffic instead, via the learn → shadow → enforce rollout lifecycle:
//
//	kubefence proxy -workloads ns1,ns2 -rollout learn -upstream ... \
//	        -rollout-interval 30s -trace-out trace.jsonl
//
// -rollout learn starts every workload with no policy at all: traffic is
// forwarded, observed, and generalized into candidates that are shadowed
// (would-deny verdicts recorded, nothing blocked) and auto-promoted to
// enforcement once the promotion gates hold. -rollout shadow keeps the
// chart-generated policies but rehearses them against live traffic
// before they deny anything. -trace-out additionally records every
// inspected request as JSONL for offline mining and audit.
//
// -telemetry-addr serves the observability surface on a second listener,
// separate from the enforcement path: Prometheus text-format /metrics
// (per-workload decision counters and latency histograms), JSON /varz,
// /healthz, and the net/http/pprof handlers under /debug/pprof/:
//
//	kubefence proxy -workloads all -upstream ... -telemetry-addr :9090
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	kubefence "repro"
	"repro/internal/chart"
	"repro/internal/charts"
	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/object"
	"repro/internal/proxy"
	"repro/internal/registry"
	"repro/internal/schema"
	"repro/internal/telemetry"
	"repro/internal/validator"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = runGenerate(os.Args[2:])
	case "proxy":
		err = runProxy(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "kubefence: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "kubefence:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  kubefence generate [-chart DIR | -workload NAME] [-o FILE] [-mode lenient|strict] [-schema]
  kubefence proxy    [-chart DIR | -workload NAME | -workloads A,B,..|all] -upstream URL
                     [-listen ADDR] [-proxy-user USER] [-cache N]
                     [-rollout learn|shadow|enforce] [-rollout-interval D] [-trace-out FILE]
                     [-telemetry-addr ADDR] [-telemetry-sample N]

In -workloads mode one proxy enforces every listed builtin policy
concurrently: each workload's policy governs the namespace named after
it (the one-operator-per-namespace convention), requests outside every
registered scope are denied, and individual policies stay hot-swappable.

-rollout selects the lifecycle the workloads start in: "enforce" (the
default) denies violations immediately, "shadow" rehearses the
generated policies against live traffic (would-deny verdicts are
recorded, nothing is blocked) and auto-promotes once they hold a clean
window, and "learn" starts with NO policies at all and mines them from
observed traffic before shadowing and promoting them the same way.
-trace-out appends every inspected request to a JSONL admission trace
for offline mining (kubefence and audit tooling read it back).

-telemetry-addr serves /metrics (Prometheus text format), /varz (JSON),
/healthz, and /debug/pprof/ on a separate listener, so scrapes and
profiles never share the enforcement listener. -telemetry-sample traces
one decision per N onto a bounded in-memory ring, readable via /varz.`)
}

// lockedWriter serializes writes to the shared trace buffer against the
// flush timer.
type lockedWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// loadChart resolves -chart / -workload into a chart.
func loadChart(chartDir, workload string) (*chart.Chart, error) {
	switch {
	case workload != "":
		return charts.Load(workload)
	case chartDir != "":
		return loadChartDir(chartDir)
	default:
		return nil, fmt.Errorf("one of -chart or -workload is required (builtins: %s)",
			strings.Join(charts.Names(), ", "))
	}
}

// loadChartDir reads a chart from disk: Chart.yaml, values.yaml, and
// templates/*.
func loadChartDir(dir string) (*chart.Chart, error) {
	files := chart.Fileset{}
	for _, name := range []string{"Chart.yaml", "values.yaml"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", name, err)
		}
		files[name] = string(data)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "templates"))
	if err != nil {
		return nil, fmt.Errorf("reading templates/: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, "templates", e.Name()))
		if err != nil {
			return nil, err
		}
		files["templates/"+e.Name()] = string(data)
	}
	return chart.Load(files)
}

func generate(chartDir, workload, mode string, disableLocks bool) (*core.Result, error) {
	c, err := loadChart(chartDir, workload)
	if err != nil {
		return nil, err
	}
	opts := core.Options{Schema: schema.Options{DisableLocks: disableLocks}}
	switch mode {
	case "", "lenient":
		opts.Mode = validator.LockIfPresent
	case "strict":
		opts.Mode = validator.LockRequired
	default:
		return nil, fmt.Errorf("unknown -mode %q (lenient or strict)", mode)
	}
	return core.GeneratePolicy(c, opts)
}

func runGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	chartDir := fs.String("chart", "", "chart directory (Chart.yaml, values.yaml, templates/)")
	workload := fs.String("workload", "", "builtin evaluation chart name")
	out := fs.String("o", "", "output file (default stdout)")
	mode := fs.String("mode", "lenient", "lock mode: lenient (lock-if-present) or strict (lock-required)")
	emitSchema := fs.Bool("schema", false, "emit the intermediate values schema instead of the validator")
	noLocks := fs.Bool("no-locks", false, "disable security locks (ablation)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := generate(*chartDir, *workload, *mode, *noLocks)
	if err != nil {
		return err
	}
	var data []byte
	if *emitSchema {
		data, err = res.Schema.MarshalYAML()
	} else {
		data, err = res.Validator.MarshalYAML()
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"kubefence: workload %s: %d variants, %d manifests, %d kinds\n",
		res.Workload, res.Variants, res.Manifests, len(res.Validator.Kinds))
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

// multiRegistry builds the multi-workload policy registry via the
// facade (one policy per builtin chart, namespace-scoped, cluster
// kinds claimed automatically).
func multiRegistry(names []string, mode string, cacheSize int) (*kubefence.Registry, error) {
	cfg := kubefence.RegistryConfig{CacheSize: cacheSize}
	switch mode {
	case "", "lenient":
		cfg.Mode = kubefence.LockIfPresent
	case "strict":
		cfg.Mode = kubefence.LockRequired
	default:
		return nil, fmt.Errorf("unknown -mode %q (lenient or strict)", mode)
	}
	return kubefence.GenerateRegistry(cfg, names...)
}

func runProxy(args []string) error {
	fs := flag.NewFlagSet("proxy", flag.ExitOnError)
	chartDir := fs.String("chart", "", "chart directory")
	workload := fs.String("workload", "", "builtin evaluation chart name")
	workloads := fs.String("workloads", "", "comma-separated builtin charts (or \"all\") enforced concurrently by one proxy")
	upstream := fs.String("upstream", "", "API server base URL (required)")
	listen := fs.String("listen", ":8443", "listen address")
	proxyUser := fs.String("proxy-user", "kubefence-proxy", "identity asserted upstream")
	mode := fs.String("mode", "lenient", "lock mode")
	cacheSize := fs.Int("cache", 0, "per-workload decision-cache shard size (cached validation outcomes; 0 disables)")
	rollout := fs.String("rollout", "enforce", "initial workload lifecycle: learn | shadow | enforce")
	rolloutInterval := fs.Duration("rollout-interval", 15*time.Second, "promotion-gate evaluation interval for learn/shadow rollouts")
	traceOut := fs.String("trace-out", "", "append inspected requests to a JSONL admission trace (offline mining input)")
	telemetryAddr := fs.String("telemetry-addr", "", "serve /metrics, /varz, /healthz, and /debug/pprof/ on this address (off when empty)")
	telemetrySample := fs.Int("telemetry-sample", 128, "trace one decision per N onto the telemetry ring")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *upstream == "" {
		return fmt.Errorf("-upstream is required")
	}
	rolloutMode, err := registry.ParseMode(*rollout)
	if err != nil {
		return err
	}
	if rolloutMode != registry.ModeEnforce && *workloads == "" {
		return fmt.Errorf("-rollout %s requires -workloads (per-workload namespaces scope what each miner learns)", *rollout)
	}
	onViolation := func(r proxy.ViolationRecord) {
		wl := r.Workload
		if wl == "" {
			wl = "-"
		}
		fmt.Fprintf(os.Stderr, "[%s] DENY workload=%s %s %s %s/%s: %d violation(s)\n",
			r.Time.Format(time.RFC3339), wl, r.User, r.Method, r.Kind, r.Name, len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(os.Stderr, "    %s\n", v)
		}
	}

	cfg := proxy.Config{
		Upstream:    *upstream,
		ProxyUser:   *proxyUser,
		CacheSize:   *cacheSize,
		OnViolation: onViolation,
	}
	var hub *telemetry.Hub
	if *telemetryAddr != "" {
		hub = telemetry.New(telemetry.Config{SampleEvery: *telemetrySample})
		cfg.Telemetry = hub
	}
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("-trace-out: %w", err)
		}
		defer f.Close()
		// The tap runs on the request path: buffer the writes so request
		// goroutines never serialize on a disk syscall, and flush on a
		// timer. ReadTrace tolerates the truncated final line a crash
		// between flushes can leave behind.
		buf := bufio.NewWriterSize(f, 64*1024)
		var bufMu sync.Mutex
		defer func() {
			bufMu.Lock()
			defer bufMu.Unlock()
			_ = buf.Flush()
		}()
		go func() {
			ticker := time.NewTicker(time.Second)
			defer ticker.Stop()
			for range ticker.C {
				bufMu.Lock()
				_ = buf.Flush()
				bufMu.Unlock()
			}
		}()
		tw := learn.NewTraceWriter(lockedWriter{w: buf, mu: &bufMu})
		cfg.Tap = func(workload, user, method, path string, obj object.Object) {
			_ = tw.Record(learn.TraceEntry{
				Time: time.Now(), Workload: workload, User: user,
				Method: method, Path: path, Object: obj,
			})
		}
	}
	cfg.OnShadowViolation = func(r proxy.ViolationRecord) {
		fmt.Fprintf(os.Stderr, "[%s] SHADOW-DENY workload=%s %s %s %s/%s: %d violation(s) (forwarded)\n",
			r.Time.Format(time.RFC3339), r.Workload, r.User, r.Method, r.Kind, r.Name, len(r.Violations))
	}

	var (
		enforcing string
		ctl       *learn.Controller
	)
	if *workloads != "" {
		if *chartDir != "" || *workload != "" {
			return fmt.Errorf("-workloads is exclusive with -chart and -workload")
		}
		names := charts.Names()
		if *workloads != "all" {
			names = names[:0:0]
			for _, name := range strings.Split(*workloads, ",") {
				if name = strings.TrimSpace(name); name != "" {
					names = append(names, name)
				}
			}
			if len(names) == 0 {
				return fmt.Errorf("-workloads: no workload names given")
			}
		}
		switch rolloutMode {
		case registry.ModeLearn:
			// No chart policies at all: each workload starts empty and
			// mines its policy from its namespace's traffic.
			reg := registry.New(registry.Config{CacheSize: *cacheSize})
			ctl = learn.NewController(reg, learn.GateConfig{})
			for _, name := range names {
				if _, err := ctl.AddWorkload(name, registry.Selector{Namespace: name}, learn.Options{}); err != nil {
					return err
				}
			}
			cfg.Registry = reg
			enforcing = fmt.Sprintf("%d learning workloads (%s)", len(names), strings.Join(names, ", "))
		case registry.ModeShadow:
			// Chart policies exist but rehearse before they deny.
			reg, err := multiRegistry(names, *mode, *cacheSize)
			if err != nil {
				return err
			}
			ctl = learn.NewController(reg, learn.GateConfig{})
			for _, name := range reg.Workloads() {
				if _, err := ctl.Adopt(name, learn.Options{}); err != nil {
					return err
				}
			}
			cfg.Registry = reg
			enforcing = fmt.Sprintf("%d workload policies in shadow (%s)", len(names), strings.Join(reg.Workloads(), ", "))
		default:
			reg, err := multiRegistry(names, *mode, *cacheSize)
			if err != nil {
				return err
			}
			cfg.Registry = reg
			enforcing = fmt.Sprintf("%d workload policies (%s)", len(names), strings.Join(reg.Workloads(), ", "))
		}
	} else {
		res, err := generate(*chartDir, *workload, *mode, false)
		if err != nil {
			return err
		}
		cfg.Validator = res.Validator
		enforcing = res.Workload + " policy"
	}
	p, err := proxy.New(cfg)
	if err != nil {
		return err
	}
	if ctl != nil {
		// The promotion-gate loop: evaluate every workload's gates on a
		// timer and log each lifecycle transition.
		go func() {
			ticker := time.NewTicker(*rolloutInterval)
			defer ticker.Stop()
			for range ticker.C {
				for _, tr := range ctl.Tick() {
					fmt.Fprintf(os.Stderr, "kubefence: rollout %s: %s -> %s (gen %d): %s\n",
						tr.Workload, tr.FromName, tr.ToName, tr.Generation, tr.Reason)
				}
			}
		}()
	}
	if hub != nil {
		// The telemetry surface gets its own listener and server: scrapes
		// and pprof captures allocate freely and must never contend with
		// admission traffic for the enforcement listener.
		mux := telemetry.Mux(telemetry.MuxConfig{
			Snapshot:    hub.Snapshot,
			Traces:      hub.Traces,
			Varz:        func() any { return p.Metrics() },
			EnablePprof: true,
		})
		tsrv := &http.Server{
			Addr:              *telemetryAddr,
			Handler:           mux,
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := tsrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "kubefence: telemetry:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "kubefence: telemetry on %s (/metrics /varz /healthz /debug/pprof/)\n",
			*telemetryAddr)
	}
	fmt.Fprintf(os.Stderr, "kubefence: enforcing %s, %s -> %s\n",
		enforcing, *listen, *upstream)
	server := &http.Server{
		Addr:              *listen,
		Handler:           p,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return server.ListenAndServe()
}
