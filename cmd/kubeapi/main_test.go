package main

import (
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/client"
	"repro/internal/object"
)

// TestRunHappyPath boots the server on an ephemeral port, performs real
// API calls against it, shuts it down, and checks the audit log landed
// on disk.
func TestRunHappyPath(t *testing.T) {
	auditPath := filepath.Join(t.TempDir(), "audit.jsonl")
	ready := make(chan net.Addr, 1)
	shutdown := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{"-listen", "127.0.0.1:0", "-audit", auditPath}, ready, shutdown)
	}()

	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-errCh:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}

	c := client.New("http://"+addr.String(), client.WithUser("smoke"))
	if err := c.Healthz(); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	cm := object.Object{
		"apiVersion": "v1", "kind": "ConfigMap",
		"metadata": map[string]any{"name": "smoke", "namespace": "default"},
		"data":     map[string]any{"k": "v"},
	}
	if _, err := c.Create(cm); err != nil {
		t.Fatalf("create: %v", err)
	}
	got, err := c.Get("ConfigMap", "default", "smoke")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if got.Name() != "smoke" {
		t.Errorf("got name %q", got.Name())
	}

	close(shutdown)
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}

	f, err := os.Open(auditPath)
	if err != nil {
		t.Fatalf("audit log not written: %v", err)
	}
	defer f.Close()
	events, skipped, err := audit.ReadJSONL(f)
	if err != nil {
		t.Fatalf("audit log unreadable: %v", err)
	}
	if len(skipped) != 0 {
		t.Fatalf("audit log has unparseable lines: %v", skipped)
	}
	found := false
	for _, ev := range events {
		if ev.User == "smoke" && ev.Verb == "create" && ev.Resource == "configmaps" {
			found = true
		}
	}
	if !found {
		t.Errorf("audit log (%d events) missing the create event", len(events))
	}
}

// TestRunFlagErrors: bad flag values must fail fast, not serve.
func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{"-listen", "256.256.256.256:99999"}, nil, nil); err == nil {
		t.Error("unlistenable address should error")
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" a ,, b ")
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("splitList = %v", got)
	}
	if got := splitList(""); got != nil {
		t.Errorf("splitList(\"\") = %v, want nil", got)
	}
}
