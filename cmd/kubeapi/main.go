// Command kubeapi runs the simulated Kubernetes API server: the RESTful
// resource interface over an in-memory versioned store, with header-based
// authentication, optional RBAC enforcement, and JSONL audit logging.
//
//	kubeapi -listen :6443 -audit audit.jsonl -enforce-rbac -superuser admin
//
// It is the substrate the KubeFence proxy fronts; see cmd/kubefence.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/apiserver"
	"repro/internal/audit"
	"repro/internal/store"
)

func main() {
	if err := run(os.Args[1:], nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "kubeapi:", err)
		os.Exit(1)
	}
}

// run starts the server. ready (optional) receives the bound listen
// address once serving; shutdown (optional) triggers the same graceful
// stop as SIGINT/SIGTERM — both exist so tests can drive a full run
// against an ephemeral port.
func run(args []string, ready chan<- net.Addr, shutdown <-chan struct{}) error {
	fs := flag.NewFlagSet("kubeapi", flag.ExitOnError)
	listen := fs.String("listen", ":6443", "listen address")
	auditPath := fs.String("audit", "", "write JSONL audit log to this file on shutdown")
	enforce := fs.Bool("enforce-rbac", false, "enable RBAC authorization (deny-all until policies are created)")
	superusers := fs.String("superusers", "admin", "comma-separated users bypassing authorization")
	frontProxies := fs.String("front-proxy-users", "kubefence-proxy", "comma-separated trusted front-proxy identities")
	if err := fs.Parse(args); err != nil {
		return err
	}

	auditLog := &audit.Log{}
	srv, err := apiserver.New(apiserver.Config{
		Store:           store.New(),
		Audit:           auditLog,
		EnforceAuthz:    *enforce,
		Superusers:      splitList(*superusers),
		FrontProxyUsers: splitList(*frontProxies),
		DynamicRBAC:     true,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	httpServer := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "kubeapi: serving on %s (rbac=%v)\n", ln.Addr(), *enforce)
	if ready != nil {
		ready <- ln.Addr()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	select {
	case err := <-errCh:
		return err
	case <-sigCh:
	case <-shutdown: // nil when signal-driven: blocks forever
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = httpServer.Shutdown(ctx) // graceful: drain in-flight requests
	if *auditPath != "" {
		f, err := os.Create(*auditPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := auditLog.WriteJSONL(f); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "kubeapi: wrote %d audit events to %s\n",
			auditLog.Len(), *auditPath)
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
