package main

import "testing"

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "nope"}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunFastExperiments(t *testing.T) {
	for _, name := range []string{"fig5", "fig9", "fig11", "table1", "table2"} {
		if err := run([]string{"-experiment", name}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRunTable3EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end experiment")
	}
	if err := run([]string{"-experiment", "table3"}); err != nil {
		t.Error(err)
	}
}
