package main

import "testing"

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "nope"}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunFastExperiments(t *testing.T) {
	for _, name := range []string{"fig5", "fig9", "fig11", "table1", "table2"} {
		if err := run([]string{"-experiment", name}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRunTable3EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end experiment")
	}
	if err := run([]string{"-experiment", "table3"}); err != nil {
		t.Error(err)
	}
}

func TestParseCounts(t *testing.T) {
	tests := []struct {
		in      string
		want    []int
		wantErr bool
	}{
		{in: "1,5,10", want: []int{1, 5, 10}},
		{in: " 2 , 4 ", want: []int{2, 4}},
		{in: "7", want: []int{7}},
		{in: "", wantErr: true},
		{in: "0", wantErr: true},
		{in: "-3", wantErr: true},
		{in: "a,b", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseCounts("-counts", tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("parseCounts(%q): expected error, got %v", tt.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseCounts(%q): %v", tt.in, err)
			continue
		}
		if len(got) != len(tt.want) {
			t.Errorf("parseCounts(%q) = %v, want %v", tt.in, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("parseCounts(%q) = %v, want %v", tt.in, got, tt.want)
				break
			}
		}
	}
}

func TestRunThroughputJSON(t *testing.T) {
	if err := run([]string{
		"-experiment", "throughput", "-counts", "1,5",
		"-requests", "40", "-concurrency", "2", "-cache", "64", "-json",
	}); err != nil {
		t.Error(err)
	}
}

func TestRunRobustnessReduced(t *testing.T) {
	if err := run([]string{"-experiment", "robustness", "-charts", "nginx",
		"-max-per-class", "1", "-concurrency", "4"}); err != nil {
		t.Error(err)
	}
	if err := run([]string{"-experiment", "robustness", "-charts", "nope"}); err == nil {
		t.Error("unknown chart should error")
	}
}

func TestRunScenariosReduced(t *testing.T) {
	// Human-readable and JSON modes over a tiny corpus with a capped
	// matrix; kfbench exits non-zero if the run is not clean.
	if err := run([]string{"-experiment", "scenarios", "-synth", "2",
		"-max-per-class", "1", "-concurrency", "4", "-cache", "64"}); err != nil {
		t.Error(err)
	}
	if err := run([]string{"-experiment", "scenarios", "-synth", "2",
		"-max-per-class", "1", "-concurrency", "4", "-json"}); err != nil {
		t.Error(err)
	}
}

func TestRunPlaneReduced(t *testing.T) {
	// Reduced tier matrix in both output modes; kfbench exits non-zero
	// if the correctness matrix is not clean.
	if err := run([]string{"-experiment", "plane", "-replicas", "1,2",
		"-synth", "4", "-max-per-class", "1", "-requests", "200",
		"-concurrency", "4", "-cache", "64", "-json"}); err != nil {
		t.Error(err)
	}
}

func TestRunRobustnessWithSynth(t *testing.T) {
	if err := run([]string{"-experiment", "robustness", "-charts", "nginx",
		"-synth", "2", "-max-per-class", "1", "-concurrency", "4"}); err != nil {
		t.Error(err)
	}
}

func TestRunLatencyAndE2EReduced(t *testing.T) {
	if err := run([]string{"-experiment", "latency", "-counts", "1",
		"-iterations", "20", "-cache", "64"}); err != nil {
		t.Error(err)
	}
	if err := run([]string{"-experiment", "e2e", "-counts", "1",
		"-requests", "30", "-cache", "64", "-json"}); err != nil {
		t.Error(err)
	}
}

func TestRunLearningReduced(t *testing.T) {
	if err := run([]string{"-experiment", "learning", "-charts", "nginx",
		"-max-per-class", "1", "-concurrency", "4", "-synth", "1"}); err != nil {
		t.Error(err)
	}
}

func TestSplitCharts(t *testing.T) {
	if got := splitCharts(""); got != nil {
		t.Errorf("splitCharts(\"\") = %v, want nil", got)
	}
	got := splitCharts(" nginx , mlflow ")
	if len(got) != 2 || got[0] != "nginx" || got[1] != "mlflow" {
		t.Errorf("splitCharts = %v", got)
	}
}
