// Command kfbench regenerates the paper's tables and figures (§VI):
//
//	kfbench -experiment fig5       # motivation: e2e coverage vs CVEs
//	kfbench -experiment fig9       # API usage matrix
//	kfbench -experiment table1     # attack-surface reduction
//	kfbench -experiment table2     # malicious-spec catalog
//	kfbench -experiment table3     # mitigation, RBAC vs KubeFence
//	kfbench -experiment table4     # deployment latency (-reps N)
//	kfbench -experiment resources  # proxy CPU/memory overhead
//	kfbench -experiment all
//
// Beyond the paper, the throughput experiment measures multi-workload
// enforcement (one proxy, many concurrent workload policies) and, with
// -json, emits machine-readable results suitable for BENCH_*.json
// perf-trajectory tracking:
//
//	kfbench -experiment throughput -counts 1,5,10 -requests 2000 \
//	        -concurrency 8 -cache 4096 -json > BENCH_throughput.json
//
// The robustness experiment replays the adversarial mutation matrix
// (internal/mutate) interleaved with benign chart traces through the
// proxy+registry stack and scores false negatives/positives per chart
// and mutation class:
//
//	kfbench -experiment robustness -concurrency 8 -cache 4096 \
//	        -seed 1 -json > BENCH_robustness.json
//	kfbench -experiment robustness -charts nginx,mlflow -max-per-class 2
//	kfbench -experiment robustness -engine interpreted   # differential run
//
// The learning experiment mines policies from benign chart traffic
// through the learn → shadow → enforce rollout lifecycle, measures
// requests-to-convergence per chart, and replays the full adversarial
// mutation matrix against the MINED policies to score residual false
// negatives — the committed BENCH_learning.json baseline:
//
//	kfbench -experiment learning -concurrency 8 -cache 4096 \
//	        -seed 1 -json > BENCH_learning.json
//	kfbench -experiment learning -charts nginx -max-per-class 2
//
// The latency experiment measures single-decision validation cost —
// interpreted tree walk vs compiled rule program, cold (cache off) and
// hot (per-workload decision shards on) — and is the source of the
// committed BENCH_latency.json baseline the CI bench gate compares
// against:
//
//	kfbench -experiment latency -counts 1,5,10 -iterations 5000 \
//	        -cache 4096 -json > BENCH_latency.json
//
// The e2e experiment measures the decode-inclusive end-to-end admission
// path through the full proxy handler for allowed requests — streaming
// raw-bytes pipeline vs decode-first baseline, cold and hot decision
// caches — and is the source of the committed BENCH_e2e.json baseline:
//
//	kfbench -experiment e2e -counts 1,5 -requests 3000 \
//	        -cache 4096 -json > BENCH_e2e.json
//
// The scenarios experiment generates a seeded synthetic workload corpus
// (internal/synth), verifies every (policy, trace) pair, and replays the
// benign + adversarial matrix at increasing registered-workload counts
// under all three validation paths (raw fast path, compiled decode path,
// interpreted tree walk) — the committed BENCH_scenarios.json baseline,
// gated by cmd/benchgate -kind scenarios:
//
//	kfbench -experiment scenarios -synth 100 -seed 1 -json > BENCH_scenarios.json
//	kfbench -experiment scenarios -synth 25 -max-per-class 2   # CI smoke
//
// The telemetry experiment prices the observability layer: the allowed
// fast path measured with the telemetry hub off, on, and on under a
// concurrent /metrics scraper — the committed BENCH_telemetry.json
// baseline, gated by cmd/benchgate -kind telemetry (overhead ≤ 5%, no
// allocations added on the fast path):
//
//	kfbench -experiment telemetry -counts 1,5 -requests 3000 \
//	        -sample-every 128 -json > BENCH_telemetry.json
//
// The plane experiment measures the distributed admission tier
// (internal/plane): benign-traffic scaling efficiency across -replicas
// tier sizes against capacity-bounded replicas for every -placements x
// -skews cell family (hash vs load-aware weighted placement, uniform vs
// zipf -zipf-s traffic), the post-rebalance decision-cache retention of
// migrated workloads, plus one full benign + adversarial correctness
// matrix through the rebalanced tier — the committed BENCH_plane.json
// baseline, gated by cmd/benchgate -kind plane:
//
//	kfbench -experiment plane -replicas 1,2,4,8 -synth 32 -seed 1 \
//	        -cache 4096 -json > BENCH_plane.json
//	kfbench -experiment plane -replicas 1,2 -skews zipf \
//	        -max-per-class 2 -cache 1024                       # CI smoke
//
// The robustness and learning experiments also accept -synth N to extend
// their matrices with generated workloads:
//
//	kfbench -experiment robustness -synth 100
//	kfbench -experiment learning -synth 10 -max-per-class 2
//
// Every experiment implements the experiments.Experiment interface; the
// command is a thin table dispatch over that surface, and reports whose
// contract fails (experiments.Gated) exit non-zero in both output modes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/audit"
	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kfbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kfbench", flag.ExitOnError)
	experiment := fs.String("experiment", "all", "fig5 | fig9 | fig11 | table1 | table2 | table3 | table4 | resources | throughput | robustness | latency | learning | e2e | scenarios | plane | telemetry | all")
	reps := fs.Int("reps", 10, "repetitions for table4 (paper: 10)")
	counts := fs.String("counts", "1,5,10", "workload counts for throughput (comma-separated)")
	requests := fs.Int("requests", 2000, "proxied requests per throughput measurement (per replica for plane)")
	concurrency := fs.Int("concurrency", 8, "client goroutines for throughput and robustness")
	cacheSize := fs.Int("cache", 0, "decision-cache size for throughput and robustness (0 disables)")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON (throughput, robustness)")
	seed := fs.Int64("seed", 1, "trace-interleaving seed for robustness")
	chartList := fs.String("charts", "", "charts for robustness (comma-separated, default all)")
	maxPerClass := fs.Int("max-per-class", 0, "cap mutation variants per (attack, class) for robustness (0 = full matrix)")
	iterations := fs.Int("iterations", 5000, "validations per latency measurement")
	repeats := fs.Int("repeats", 1, "best-of-N repeats for throughput and latency measurements")
	engine := fs.String("engine", "compiled", "validation engine for robustness: compiled | interpreted")
	wire := fs.String("wire", "json", "body encoding for robustness replay: json | yaml (yaml drives the YAML raw pipeline)")
	maxEpochs := fs.Int("max-epochs", 8, "benign-replay epochs allowed for learning convergence")
	synthCount := fs.Int("synth", 0, "generated synthetic workloads: corpus size for scenarios and plane (0 = default), extra workloads for robustness and learning (0 = none)")
	replicas := fs.String("replicas", "1,2,4,8", "tier sizes for the plane experiment (comma-separated)")
	placements := fs.String("placements", "hash,weighted", "shard-placement policies for the plane experiment (comma-separated)")
	skews := fs.String("skews", "uniform,zipf", "traffic shapes for the plane experiment (comma-separated: uniform, zipf)")
	zipfS := fs.Float64("zipf-s", 0.6, "zipf exponent for the plane experiment's skewed cells")
	sampleEvery := fs.Int("sample-every", 128, "trace sampling rate for the telemetry experiment (1/N decisions)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *engine != "compiled" && *engine != "interpreted" {
		return fmt.Errorf("-engine: %q is not compiled or interpreted", *engine)
	}
	if *wire != "json" && *wire != "yaml" {
		return fmt.Errorf("-wire: %q is not json or yaml", *wire)
	}
	workloadCounts, err := parseCounts("-counts", *counts)
	if err != nil {
		return err
	}
	replicaCounts, err := parseCounts("-replicas", *replicas)
	if err != nil {
		return err
	}
	// The plane experiment sizes its request volume per replica with its
	// own default; only an explicit -requests overrides it, because the
	// shared flag's default is tuned for the single-proxy throughput
	// experiment.
	planeRequests := 0
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "requests" {
			planeRequests = *requests
		}
	})

	table := experimentTable(tableOptions{
		reps:           *reps,
		workloadCounts: workloadCounts,
		replicaCounts:  replicaCounts,
		placements:     splitList(*placements),
		skews:          splitList(*skews),
		zipfS:          *zipfS,
		requests:       *requests,
		planeRequests:  planeRequests,
		concurrency:    *concurrency,
		cacheSize:      *cacheSize,
		seed:           *seed,
		charts:         splitCharts(*chartList),
		maxPerClass:    *maxPerClass,
		iterations:     *iterations,
		repeats:        *repeats,
		interpreted:    *engine == "interpreted",
		yamlWire:       *wire == "yaml",
		maxEpochs:      *maxEpochs,
		synth:          *synthCount,
		sampleEvery:    *sampleEvery,
	})

	if *experiment == "all" {
		for _, name := range []string{"fig5", "fig9", "fig11", "table1", "table2", "table3", "table4", "resources", "throughput", "latency", "e2e", "robustness", "learning"} {
			fmt.Printf("================ %s ================\n", name)
			if err := runExperiment(table[name], *jsonOut); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	e, ok := table[*experiment]
	if !ok {
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
	return runExperiment(e, *jsonOut)
}

// runExperiment is the single dispatch path every experiment goes
// through: run, emit the report in the requested mode, then enforce the
// report's own pass/fail contract if it carries one.
func runExperiment(e experiments.Experiment, jsonOut bool) error {
	rep, err := e.Run()
	if err != nil {
		return err
	}
	if jsonOut {
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		if _, err := os.Stdout.Write(data); err != nil {
			return err
		}
	} else {
		fmt.Println(rep.Render())
		// Every baselined report footers its committed JSON path, regen
		// command, and gate, so regenerating a baseline is copy-paste in
		// every experiment, not just the ones that happened to print it.
		if b, ok := rep.(experiments.Baselined); ok {
			info := b.BaselineInfo()
			fmt.Printf("\nbaseline: %s\n  regen:  %s\n  gate:   %s\n",
				info.Path, info.Regen, info.GateCommand)
		}
	}
	// Non-zero exit on a dirty run in BOTH output modes: CI smoke steps
	// and the make *-json targets consume the JSON path, and a baseline
	// with false negatives must never land silently.
	if g, ok := rep.(experiments.Gated); ok {
		return g.Gate()
	}
	return nil
}

// tableOptions carries every flag-derived knob the experiment table
// needs.
type tableOptions struct {
	reps           int
	workloadCounts []int
	replicaCounts  []int
	placements     []string
	skews          []string
	zipfS          float64
	requests       int
	planeRequests  int
	concurrency    int
	cacheSize      int
	seed           int64
	charts         []string
	maxPerClass    int
	iterations     int
	repeats        int
	interpreted    bool
	yamlWire       bool
	maxEpochs      int
	synth          int
	sampleEvery    int
}

// experimentTable builds the name -> Experiment dispatch table: the
// seven measurement experiments behind their options structs, plus the
// paper figures and tables as text experiments.
func experimentTable(o tableOptions) map[string]experiments.Experiment {
	list := []experiments.Experiment{
		experiments.NewTextExperiment("fig5", func() (string, error) {
			return experiments.Fig5(), nil
		}),
		experiments.NewTextExperiment("fig9", experiments.Fig9),
		experiments.NewTextExperiment("fig11", func() (string, error) {
			return audit.RenderFig11(audit.Event{
				User: "operator:mlflow", Verb: "create", APIGroup: "apps",
				Resource: "deployments", Namespace: "default", Name: "mlflow",
			})
		}),
		experiments.NewTextExperiment("table1", experiments.TableI),
		experiments.NewTextExperiment("table2", func() (string, error) {
			return experiments.TableII(), nil
		}),
		experiments.NewTextExperiment("table3", func() (string, error) {
			rows, err := experiments.TableIII()
			if err != nil {
				return "", err
			}
			return experiments.RenderTableIII(rows), nil
		}),
		experiments.NewTextExperiment("table4", func() (string, error) {
			rows, err := experiments.TableIV(o.reps)
			if err != nil {
				return "", err
			}
			return experiments.RenderTableIV(rows), nil
		}),
		experiments.NewTextExperiment("resources", func() (string, error) {
			usage, err := experiments.Resources()
			if err != nil {
				return "", err
			}
			return experiments.RenderResources(usage), nil
		}),
		experiments.NewThroughputExperiment(experiments.ThroughputOptions{
			WorkloadCounts: o.workloadCounts,
			Requests:       o.requests,
			Concurrency:    o.concurrency,
			CacheSize:      o.cacheSize,
			Repeats:        o.repeats,
		}),
		experiments.NewLatencyExperiment(experiments.LatencyOptions{
			WorkloadCounts: o.workloadCounts,
			Iterations:     o.iterations,
			CacheSize:      o.cacheSize,
			Repeats:        o.repeats,
		}),
		experiments.NewE2EExperiment(experiments.E2EOptions{
			WorkloadCounts: o.workloadCounts,
			Requests:       o.requests,
			CacheSize:      o.cacheSize,
			Repeats:        o.repeats,
		}),
		experiments.NewRobustnessExperiment(experiments.RobustnessOptions{
			Charts:            o.charts,
			Concurrency:       o.concurrency,
			Seed:              o.seed,
			MaxPerAttackClass: o.maxPerClass,
			CacheSize:         o.cacheSize,
			Interpreted:       o.interpreted,
			Synth:             o.synth,
			YAMLWire:          o.yamlWire,
		}),
		experiments.NewLearningExperiment(experiments.LearningOptions{
			Charts:            o.charts,
			Concurrency:       o.concurrency,
			Seed:              o.seed,
			MaxPerAttackClass: o.maxPerClass,
			CacheSize:         o.cacheSize,
			MaxEpochs:         o.maxEpochs,
			Synth:             o.synth,
		}),
		experiments.NewScenariosExperiment(experiments.ScenariosOptions{
			Synth:             o.synth,
			Seed:              o.seed,
			Concurrency:       o.concurrency,
			CacheSize:         o.cacheSize,
			MaxPerAttackClass: o.maxPerClass,
		}),
		experiments.NewPlaneExperiment(experiments.PlaneOptions{
			ReplicaCounts:      o.replicaCounts,
			Placements:         o.placements,
			Skews:              o.skews,
			ZipfExponent:       o.zipfS,
			Synth:              o.synth,
			Seed:               o.seed,
			RequestsPerReplica: o.planeRequests,
			CacheSize:          o.cacheSize,
			MaxPerAttackClass:  o.maxPerClass,
			Repeats:            o.repeats,
			Concurrency:        o.concurrency,
		}),
		experiments.NewTelemetryExperiment(experiments.TelemetryOptions{
			WorkloadCounts: o.workloadCounts,
			Requests:       o.requests,
			CacheSize:      o.cacheSize,
			SampleEvery:    o.sampleEvery,
			Repeats:        o.repeats,
		}),
	}
	table := make(map[string]experiments.Experiment, len(list))
	for _, e := range list {
		table[e.Name()] = e
	}
	return table
}

// splitCharts parses the -charts flag; empty means every builtin chart.
func splitCharts(s string) []string {
	return splitList(s)
}

// splitList parses a comma-separated string flag into its trimmed,
// non-empty parts.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseCounts parses a comma-separated count flag ("1,5,10").
func parseCounts(flagName, s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("%s: %q is not a positive integer", flagName, part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no counts given", flagName)
	}
	return out, nil
}
