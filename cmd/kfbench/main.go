// Command kfbench regenerates the paper's tables and figures (§VI):
//
//	kfbench -experiment fig5       # motivation: e2e coverage vs CVEs
//	kfbench -experiment fig9       # API usage matrix
//	kfbench -experiment table1     # attack-surface reduction
//	kfbench -experiment table2     # malicious-spec catalog
//	kfbench -experiment table3     # mitigation, RBAC vs KubeFence
//	kfbench -experiment table4     # deployment latency (-reps N)
//	kfbench -experiment resources  # proxy CPU/memory overhead
//	kfbench -experiment all
//
// Beyond the paper, the throughput experiment measures multi-workload
// enforcement (one proxy, many concurrent workload policies) and, with
// -json, emits machine-readable results suitable for BENCH_*.json
// perf-trajectory tracking:
//
//	kfbench -experiment throughput -counts 1,5,10 -requests 2000 \
//	        -concurrency 8 -cache 4096 -json > BENCH_throughput.json
//
// The robustness experiment replays the adversarial mutation matrix
// (internal/mutate) interleaved with benign chart traces through the
// proxy+registry stack and scores false negatives/positives per chart
// and mutation class:
//
//	kfbench -experiment robustness -concurrency 8 -cache 4096 \
//	        -seed 1 -json > BENCH_robustness.json
//	kfbench -experiment robustness -charts nginx,mlflow -max-per-class 2
//	kfbench -experiment robustness -engine interpreted   # differential run
//
// The learning experiment mines policies from benign chart traffic
// through the learn → shadow → enforce rollout lifecycle, measures
// requests-to-convergence per chart, and replays the full adversarial
// mutation matrix against the MINED policies to score residual false
// negatives — the committed BENCH_learning.json baseline:
//
//	kfbench -experiment learning -concurrency 8 -cache 4096 \
//	        -seed 1 -json > BENCH_learning.json
//	kfbench -experiment learning -charts nginx -max-per-class 2
//
// The latency experiment measures single-decision validation cost —
// interpreted tree walk vs compiled rule program, cold (cache off) and
// hot (per-workload decision shards on) — and is the source of the
// committed BENCH_latency.json baseline the CI bench gate compares
// against:
//
//	kfbench -experiment latency -counts 1,5,10 -iterations 5000 \
//	        -cache 4096 -json > BENCH_latency.json
//
// The e2e experiment measures the decode-inclusive end-to-end admission
// path through the full proxy handler for allowed requests — streaming
// raw-bytes pipeline vs decode-first baseline, cold and hot decision
// caches — and is the source of the committed BENCH_e2e.json baseline:
//
//	kfbench -experiment e2e -counts 1,5 -requests 3000 \
//	        -cache 4096 -json > BENCH_e2e.json
//
// The scenarios experiment generates a seeded synthetic workload corpus
// (internal/synth), verifies every (policy, trace) pair, and replays the
// benign + adversarial matrix at increasing registered-workload counts
// under all three validation paths (raw fast path, compiled decode path,
// interpreted tree walk) — the committed BENCH_scenarios.json baseline,
// gated by cmd/benchgate -kind scenarios:
//
//	kfbench -experiment scenarios -synth 100 -seed 1 -json > BENCH_scenarios.json
//	kfbench -experiment scenarios -synth 25 -max-per-class 2   # CI smoke
//
// The robustness and learning experiments also accept -synth N to extend
// their matrices with generated workloads:
//
//	kfbench -experiment robustness -synth 100
//	kfbench -experiment learning -synth 10 -max-per-class 2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/audit"
	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kfbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kfbench", flag.ExitOnError)
	experiment := fs.String("experiment", "all", "fig5 | fig9 | fig11 | table1 | table2 | table3 | table4 | resources | throughput | robustness | latency | learning | e2e | scenarios | all")
	reps := fs.Int("reps", 10, "repetitions for table4 (paper: 10)")
	counts := fs.String("counts", "1,5,10", "workload counts for throughput (comma-separated)")
	requests := fs.Int("requests", 2000, "proxied requests per throughput measurement")
	concurrency := fs.Int("concurrency", 8, "client goroutines for throughput and robustness")
	cacheSize := fs.Int("cache", 0, "decision-cache size for throughput and robustness (0 disables)")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON (throughput, robustness)")
	seed := fs.Int64("seed", 1, "trace-interleaving seed for robustness")
	chartList := fs.String("charts", "", "charts for robustness (comma-separated, default all)")
	maxPerClass := fs.Int("max-per-class", 0, "cap mutation variants per (attack, class) for robustness (0 = full matrix)")
	iterations := fs.Int("iterations", 5000, "validations per latency measurement")
	repeats := fs.Int("repeats", 1, "best-of-N repeats for throughput and latency measurements")
	engine := fs.String("engine", "compiled", "validation engine for robustness: compiled | interpreted")
	wire := fs.String("wire", "json", "body encoding for robustness replay: json | yaml (yaml drives the YAML raw pipeline)")
	maxEpochs := fs.Int("max-epochs", 8, "benign-replay epochs allowed for learning convergence")
	synthCount := fs.Int("synth", 0, "generated synthetic workloads: corpus size for scenarios (0 = default 100), extra workloads for robustness and learning (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *engine != "compiled" && *engine != "interpreted" {
		return fmt.Errorf("-engine: %q is not compiled or interpreted", *engine)
	}
	if *wire != "json" && *wire != "yaml" {
		return fmt.Errorf("-wire: %q is not json or yaml", *wire)
	}
	workloadCounts, err := parseCounts(*counts)
	if err != nil {
		return err
	}

	runners := map[string]func() error{
		"fig5": func() error {
			fmt.Println(experiments.Fig5())
			return nil
		},
		"fig9": func() error {
			out, err := experiments.Fig9()
			if err != nil {
				return err
			}
			fmt.Println(out)
			return nil
		},
		"table1": func() error {
			out, err := experiments.TableI()
			if err != nil {
				return err
			}
			fmt.Println(out)
			return nil
		},
		"table2": func() error {
			fmt.Println(experiments.TableII())
			return nil
		},
		"table3": func() error {
			rows, err := experiments.TableIII()
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderTableIII(rows))
			return nil
		},
		"table4": func() error {
			rows, err := experiments.TableIV(*reps)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderTableIV(rows))
			return nil
		},
		"resources": func() error {
			usage, err := experiments.Resources()
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderResources(usage))
			return nil
		},
		"throughput": func() error {
			results, err := experiments.Throughput(experiments.ThroughputOptions{
				WorkloadCounts: workloadCounts,
				Requests:       *requests,
				Concurrency:    *concurrency,
				CacheSize:      *cacheSize,
				Repeats:        *repeats,
			})
			if err != nil {
				return err
			}
			if *jsonOut {
				enc := json.NewEncoder(os.Stdout)
				enc.SetIndent("", "  ")
				return enc.Encode(results)
			}
			fmt.Println(experiments.RenderThroughput(results))
			return nil
		},
		"latency": func() error {
			report, err := experiments.Latency(experiments.LatencyOptions{
				WorkloadCounts: workloadCounts,
				Iterations:     *iterations,
				CacheSize:      *cacheSize,
				Repeats:        *repeats,
			})
			if err != nil {
				return err
			}
			if *jsonOut {
				enc := json.NewEncoder(os.Stdout)
				enc.SetIndent("", "  ")
				return enc.Encode(report)
			}
			fmt.Println(experiments.RenderLatency(report))
			return nil
		},
		"e2e": func() error {
			report, err := experiments.E2E(experiments.E2EOptions{
				WorkloadCounts: workloadCounts,
				Requests:       *requests,
				CacheSize:      *cacheSize,
				Repeats:        *repeats,
			})
			if err != nil {
				return err
			}
			if *jsonOut {
				enc := json.NewEncoder(os.Stdout)
				enc.SetIndent("", "  ")
				return enc.Encode(report)
			}
			fmt.Println(experiments.RenderE2E(report))
			return nil
		},
		"robustness": func() error {
			res, err := experiments.Robustness(experiments.RobustnessOptions{
				Charts:            splitCharts(*chartList),
				Concurrency:       *concurrency,
				Seed:              *seed,
				MaxPerAttackClass: *maxPerClass,
				CacheSize:         *cacheSize,
				Interpreted:       *engine == "interpreted",
				Synth:             *synthCount,
				YAMLWire:          *wire == "yaml",
			})
			if err != nil {
				return err
			}
			if *jsonOut {
				enc := json.NewEncoder(os.Stdout)
				enc.SetIndent("", "  ")
				if err := enc.Encode(res); err != nil {
					return err
				}
			} else {
				fmt.Println(experiments.RenderRobustness(res))
			}
			// Non-zero exit on a dirty run in BOTH output modes: the CI
			// smoke step and `make robustness-json` consume the JSON
			// path, and a baseline with false negatives must never land
			// silently.
			if !res.Clean() {
				return fmt.Errorf("robustness run not clean: %d false negatives, %d false positives, %d errors",
					res.FalseNegatives, res.FalsePositives, res.Errors)
			}
			return nil
		},
		"learning": func() error {
			res, err := experiments.Learning(experiments.LearningOptions{
				Charts:            splitCharts(*chartList),
				Concurrency:       *concurrency,
				Seed:              *seed,
				MaxPerAttackClass: *maxPerClass,
				CacheSize:         *cacheSize,
				MaxEpochs:         *maxEpochs,
				Synth:             *synthCount,
			})
			if err != nil {
				return err
			}
			if *jsonOut {
				enc := json.NewEncoder(os.Stdout)
				enc.SetIndent("", "  ")
				if err := enc.Encode(res); err != nil {
					return err
				}
			} else {
				fmt.Println(experiments.RenderLearning(res))
			}
			// Mirror the robustness contract: a baseline where mined
			// policies leak attacks (or never converge) must never land
			// silently.
			if !res.Clean() {
				return fmt.Errorf("learning run not clean: converged=%v promoted=%v, %d false negatives, %d enforce FPs, %d errors",
					res.AllConverged, res.AllPromoted,
					res.TotalFalseNegatives, res.TotalEnforceFP, res.Errors)
			}
			return nil
		},
		"scenarios": func() error {
			res, err := experiments.Scenarios(experiments.ScenariosOptions{
				Synth:             *synthCount,
				Seed:              *seed,
				Concurrency:       *concurrency,
				CacheSize:         *cacheSize,
				MaxPerAttackClass: *maxPerClass,
			})
			if err != nil {
				return err
			}
			if *jsonOut {
				enc := json.NewEncoder(os.Stdout)
				enc.SetIndent("", "  ")
				if err := enc.Encode(res); err != nil {
					return err
				}
			} else {
				fmt.Println(experiments.RenderScenarios(res))
			}
			// Same contract as robustness: a corpus baseline with false
			// negatives or unverified pairs must never land silently.
			if !res.Clean() {
				return fmt.Errorf("scenarios run not clean: verified=%v, %d false negatives, %d false positives, %d errors",
					res.VerifiedPairs, res.TotalFalseNegatives, res.TotalFalsePositives, res.Errors)
			}
			return nil
		},
		"fig11": func() error {
			out, err := audit.RenderFig11(audit.Event{
				User: "operator:mlflow", Verb: "create", APIGroup: "apps",
				Resource: "deployments", Namespace: "default", Name: "mlflow",
			})
			if err != nil {
				return err
			}
			fmt.Println(out)
			return nil
		},
	}

	if *experiment == "all" {
		for _, name := range []string{"fig5", "fig9", "fig11", "table1", "table2", "table3", "table4", "resources", "throughput", "latency", "e2e", "robustness", "learning"} {
			fmt.Printf("================ %s ================\n", name)
			if err := runners[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	runner, ok := runners[*experiment]
	if !ok {
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
	return runner()
}

// splitCharts parses the -charts flag; empty means every builtin chart.
func splitCharts(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseCounts parses the -counts flag ("1,5,10") into workload counts.
func parseCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("-counts: %q is not a positive integer", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-counts: no workload counts given")
	}
	return out, nil
}
