// Command audit2rbac infers the minimal RBAC policy covering a user's
// observed API interactions from a JSONL audit log — the baseline-setup
// tool of the paper's §VI-D (after liggitt/audit2rbac).
//
//	audit2rbac -audit audit.jsonl -user operator:nginx > rbac.yaml
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/audit"
	"repro/internal/yaml"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "audit2rbac:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("audit2rbac", flag.ExitOnError)
	auditPath := fs.String("audit", "", "JSONL audit log (required)")
	user := fs.String("user", "", "user to infer a policy for (required)")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *auditPath == "" || *user == "" {
		return fmt.Errorf("-audit and -user are required")
	}
	f, err := os.Open(*auditPath)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := audit.ReadJSONL(f)
	if err != nil {
		return err
	}
	policy := audit.InferPolicy(events, *user)
	objs := policy.Objects()
	if len(objs) == 0 {
		return fmt.Errorf("no interactions recorded for user %q", *user)
	}
	docs := make([]any, len(objs))
	for i, o := range objs {
		docs[i] = o
	}
	data, err := yaml.MarshalAll(docs)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "audit2rbac: %d events → %d roles, %d cluster roles for %s\n",
		len(events), len(policy.Roles), len(policy.ClusterRoles), *user)
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}
