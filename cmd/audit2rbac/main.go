// Command audit2rbac infers the minimal RBAC policy covering a user's
// observed API interactions from a JSONL audit log — the baseline-setup
// tool of the paper's §VI-D (after liggitt/audit2rbac).
//
//	audit2rbac -audit audit.jsonl -user operator:nginx > rbac.yaml
//	audit2rbac -audit audit.jsonl -user operator:nginx -format json
//
// Malformed audit lines are skipped with a warning (count and first
// offending lines on stderr); -strict turns any skipped line into a
// failure, for pipelines where a partially-read log must not silently
// produce an under-granting policy.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/audit"
	"repro/internal/yaml"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "audit2rbac:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("audit2rbac", flag.ExitOnError)
	auditPath := fs.String("audit", "", "JSONL audit log (required)")
	user := fs.String("user", "", "user to infer a policy for (required)")
	out := fs.String("o", "", "output file (default stdout)")
	format := fs.String("format", "yaml", "output format: yaml | json")
	strict := fs.Bool("strict", false, "fail if the audit log contains unparseable lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *auditPath == "" || *user == "" {
		return fmt.Errorf("-audit and -user are required")
	}
	if *format != "yaml" && *format != "json" {
		return fmt.Errorf("-format: %q is not yaml or json", *format)
	}
	f, err := os.Open(*auditPath)
	if err != nil {
		return err
	}
	defer f.Close()
	events, skipped, err := audit.ReadJSONL(f)
	if err != nil {
		return err
	}
	if len(skipped) > 0 {
		if *strict {
			return fmt.Errorf("audit log has %d unparseable line(s), first: %v", len(skipped), skipped[0])
		}
		fmt.Fprintf(os.Stderr, "audit2rbac: warning: skipped %d unparseable line(s):\n", len(skipped))
		for i, pe := range skipped {
			if i == 3 {
				fmt.Fprintf(os.Stderr, "  ... and %d more\n", len(skipped)-i)
				break
			}
			fmt.Fprintf(os.Stderr, "  %v\n", pe)
		}
	}
	policy := audit.InferPolicy(events, *user)
	objs := policy.Objects()
	if len(objs) == 0 {
		return fmt.Errorf("no interactions recorded for user %q", *user)
	}
	var data []byte
	switch *format {
	case "yaml":
		docs := make([]any, len(objs))
		for i, o := range objs {
			docs[i] = o
		}
		data, err = yaml.MarshalAll(docs)
	case "json":
		// A JSON List object (kind: List, items: [...]) rather than a
		// bare array: kubectl apply consumes it directly.
		data, err = json.MarshalIndent(map[string]any{
			"apiVersion": "v1",
			"kind":       "List",
			"items":      objs,
		}, "", "  ")
		data = append(data, '\n')
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "audit2rbac: %d events → %d roles, %d cluster roles for %s\n",
		len(events), len(policy.Roles), len(policy.ClusterRoles), *user)
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}
