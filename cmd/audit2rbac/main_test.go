package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/object"
)

// writeAuditFixture produces a JSONL audit log with the operator's
// observed interactions plus another user's noise.
func writeAuditFixture(t *testing.T) string {
	t.Helper()
	log := &audit.Log{}
	log.Record(audit.Event{
		Timestamp: time.Now(), User: "operator:nginx", Verb: "create",
		APIGroup: "apps", Resource: "deployments", Namespace: "default",
		Name: "web", Allowed: true, Code: 201,
	})
	log.Record(audit.Event{
		Timestamp: time.Now(), User: "operator:nginx", Verb: "get",
		APIGroup: "", Resource: "services", Namespace: "default",
		Name: "web", Allowed: true, Code: 200,
	})
	log.Record(audit.Event{
		Timestamp: time.Now(), User: "someone-else", Verb: "delete",
		APIGroup: "", Resource: "secrets", Namespace: "kube-system",
		Name: "s", Allowed: true, Code: 200,
	})
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := log.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunHappyPath infers RBAC from the fixture log and checks the
// emitted YAML contains roles scoped to the requested user only.
func TestRunHappyPath(t *testing.T) {
	auditPath := writeAuditFixture(t)
	outPath := filepath.Join(t.TempDir(), "rbac.yaml")
	if err := run([]string{"-audit", auditPath, "-user", "operator:nginx", "-o", outPath}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	objs, err := object.ParseManifests(data)
	if err != nil {
		t.Fatalf("output is not valid YAML: %v", err)
	}
	sawRole := false
	for _, o := range objs {
		switch o.Kind() {
		case "Role", "ClusterRole", "RoleBinding", "ClusterRoleBinding":
			sawRole = true
		default:
			t.Errorf("unexpected kind %s in output", o.Kind())
		}
	}
	if !sawRole {
		t.Errorf("no RBAC objects in output: %s", data)
	}
	// The other user's interactions must not leak into the policy.
	for _, o := range objs {
		rules, ok := object.GetSlice(o, "rules")
		if !ok {
			continue
		}
		for _, r := range rules {
			m, _ := r.(map[string]any)
			if res, _ := m["resources"].([]any); len(res) > 0 {
				for _, rr := range res {
					if rr == "secrets" {
						t.Error("inferred policy includes another user's resources")
					}
				}
			}
		}
	}
}

// TestRunFlagErrors covers the required-flag and missing-user paths.
func TestRunFlagErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing flags should error")
	}
	if err := run([]string{"-audit", "nope.jsonl", "-user", "u"}); err == nil {
		t.Error("missing audit file should error")
	}
	auditPath := writeAuditFixture(t)
	if err := run([]string{"-audit", auditPath, "-user", "nobody"}); err == nil {
		t.Error("user with no interactions should error")
	}
	if err := run([]string{"-audit", auditPath, "-user", "operator:nginx", "-format", "toml"}); err == nil {
		t.Error("unknown format should error")
	}
}

// TestGoldenFormats locks both output formats against committed golden
// files. Regenerate with UPDATE_GOLDEN=1 go test ./cmd/audit2rbac.
func TestGoldenFormats(t *testing.T) {
	for _, format := range []string{"yaml", "json"} {
		t.Run(format, func(t *testing.T) {
			outPath := filepath.Join(t.TempDir(), "rbac."+format)
			if err := run([]string{
				"-audit", filepath.Join("testdata", "audit.jsonl"),
				"-user", "operator:nginx",
				"-format", format,
				"-o", outPath,
			}); err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(outPath)
			if err != nil {
				t.Fatal(err)
			}
			goldenPath := filepath.Join("testdata", "rbac.golden."+format)
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Errorf("%s output diverged from golden file:\n--- got ---\n%s\n--- want ---\n%s",
					format, got, want)
			}
		})
	}
}

// TestSkippedLineHandling exercises the tolerant and strict paths over
// a log with a corrupt line.
func TestSkippedLineHandling(t *testing.T) {
	dir := t.TempDir()
	good, err := os.ReadFile(filepath.Join("testdata", "audit.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	corrupt := filepath.Join(dir, "corrupt.jsonl")
	if err := os.WriteFile(corrupt, append(append([]byte("garbage{\n"), good...), []byte("{trunc\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "out.yaml")
	// Tolerant: skipped lines warn, inference still succeeds.
	if err := run([]string{"-audit", corrupt, "-user", "operator:nginx", "-o", outPath}); err != nil {
		t.Fatalf("tolerant run failed: %v", err)
	}
	if _, err := os.Stat(outPath); err != nil {
		t.Fatal("tolerant run wrote no output")
	}
	// Strict: any skipped line is fatal.
	if err := run([]string{"-audit", corrupt, "-user", "operator:nginx", "-strict"}); err == nil {
		t.Error("-strict must fail on unparseable lines")
	}
}
