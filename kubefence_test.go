package kubefence

import (
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/apiserver"
	"repro/internal/client"
	"repro/internal/store"
)

func nginxPolicy(t *testing.T) *Policy {
	t.Helper()
	c, err := LoadBuiltinChart("nginx")
	if err != nil {
		t.Fatal(err)
	}
	p, err := GeneratePolicy(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuiltinCharts(t *testing.T) {
	names := BuiltinCharts()
	if len(names) != 5 {
		t.Fatalf("builtin charts = %v", names)
	}
	for _, n := range names {
		if _, err := LoadBuiltinChart(n); err != nil {
			t.Errorf("LoadBuiltinChart(%s): %v", n, err)
		}
	}
	if _, err := LoadBuiltinChart("nope"); err == nil {
		t.Error("unknown chart should error")
	}
}

func TestLoadChartFromFileset(t *testing.T) {
	c, err := LoadChart(map[string]string{
		"Chart.yaml":        "name: demo\nversion: 0.1.0\n",
		"values.yaml":       "replicas: 1\n",
		"templates/cm.yaml": "apiVersion: v1\nkind: ConfigMap\nmetadata:\n  name: demo\ndata:\n  r: \"{{ .Values.replicas }}\"\n",
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := GeneratePolicy(c, Options{Workload: "demo"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Workload != "demo" {
		t.Errorf("workload = %q", p.Workload)
	}
	kinds := p.AllowedKinds()
	if len(kinds) != 1 || kinds[0] != "ConfigMap" {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestPolicyValidateManifest(t *testing.T) {
	p := nginxPolicy(t)
	good := []byte(`
apiVersion: v1
kind: Service
metadata:
  name: my-nginx
  namespace: prod
spec:
  type: ClusterIP
  sessionAffinity: None
  ports:
    - name: http
      port: 80
      targetPort: http
      protocol: TCP
  selector:
    app.kubernetes.io/name: nginx
`)
	vs, err := p.ValidateManifest(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Errorf("good manifest denied: %v", vs)
	}

	bad := []byte(`
apiVersion: v1
kind: Service
metadata:
  name: mitm
spec:
  type: ClusterIP
  sessionAffinity: None
  externalIPs:
    - 203.0.113.7
  ports:
    - name: http
      port: 80
      targetPort: http
      protocol: TCP
`)
	vs, err = p.ValidateManifest(bad)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 {
		t.Error("externalIPs (CVE-2020-8554) should be denied")
	}

	if _, err := p.ValidateManifest([]byte("not: [valid")); err == nil {
		t.Error("unparseable manifest should error")
	}
}

func TestPolicyValidateObject(t *testing.T) {
	p := nginxPolicy(t)
	vs := p.ValidateObject(map[string]any{
		"apiVersion": "v1",
		"kind":       "Pod",
		"metadata":   map[string]any{"name": "x"},
	})
	if len(vs) == 0 {
		t.Error("Pod is outside the nginx policy")
	}
}

func TestPolicyIntrospection(t *testing.T) {
	p := nginxPolicy(t)
	if p.Variants < 2 {
		t.Errorf("variants = %d", p.Variants)
	}
	if p.Manifests == 0 {
		t.Error("no manifests consolidated")
	}
	paths := p.AllowedPaths("Deployment")
	if len(paths) == 0 {
		t.Error("no allowed paths")
	}
	data, err := p.MarshalYAML()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Deployment:") {
		t.Errorf("serialized policy malformed:\n%s", data)
	}
	if p.Validator() == nil {
		t.Error("Validator() returned nil")
	}
}

func TestNewProxyEndToEnd(t *testing.T) {
	api, err := apiserver.New(apiserver.Config{
		Store:           store.New(),
		FrontProxyUsers: []string{"kubefence-proxy"},
	})
	if err != nil {
		t.Fatal(err)
	}
	apiTS := httptest.NewServer(api)
	defer apiTS.Close()

	var denied []ViolationRecord
	p, err := NewProxy(ProxyConfig{
		Upstream:    apiTS.URL,
		Policy:      nginxPolicy(t),
		ProxyUser:   "kubefence-proxy",
		OnViolation: func(r ViolationRecord) { denied = append(denied, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	proxyTS := httptest.NewServer(p)
	defer proxyTS.Close()

	c, err := LoadBuiltinChart("nginx")
	if err != nil {
		t.Fatal(err)
	}
	manifests, err := RenderChart(c, nil, ReleaseOptions{Name: "prod", Namespace: "default"})
	if err != nil {
		t.Fatal(err)
	}
	if len(manifests) == 0 {
		t.Fatal("no manifests rendered")
	}

	cl := client.New(proxyTS.URL, client.WithUser("operator:nginx"))
	for _, m := range manifests {
		o, err := parseManifest(m)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Create(o); err != nil {
			t.Fatalf("legitimate %s denied: %v", o["kind"], err)
		}
	}
	if len(denied) != 0 {
		t.Errorf("unexpected violations: %v", denied)
	}

	// An attack through the public API surfaces in OnViolation.
	evil := map[string]any{
		"apiVersion": "apps/v1",
		"kind":       "Deployment",
		"metadata":   map[string]any{"name": "evil", "namespace": "default"},
		"spec": map[string]any{
			"template": map[string]any{"spec": map[string]any{
				"hostPID": true,
				"containers": []any{map[string]any{
					"name": "c", "image": "docker.io/bitnami/nginx:1.0",
				}},
			}},
		},
	}
	if _, err := cl.Create(evil); !client.IsForbidden(err) {
		t.Fatalf("attack err = %v, want 403", err)
	}
	if len(denied) != 1 || denied[0].Kind != "Deployment" {
		t.Errorf("violation records = %+v", denied)
	}
}

func TestNewProxyRequiresPolicy(t *testing.T) {
	if _, err := NewProxy(ProxyConfig{Upstream: "http://x"}); err == nil {
		t.Error("missing policy should error")
	}
}

func TestUnionPoliciesMultiWorkloadCluster(t *testing.T) {
	// One proxy fronting a cluster shared by two operators.
	var policies []*Policy
	for _, name := range []string{"nginx", "postgresql"} {
		c, err := LoadBuiltinChart(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := GeneratePolicy(c, Options{})
		if err != nil {
			t.Fatal(err)
		}
		policies = append(policies, p)
	}
	cluster, err := UnionPolicies("shared-cluster", policies...)
	if err != nil {
		t.Fatal(err)
	}

	api, err := apiserver.New(apiserver.Config{
		Store:           store.New(),
		FrontProxyUsers: []string{"kubefence-proxy"},
	})
	if err != nil {
		t.Fatal(err)
	}
	apiTS := httptest.NewServer(api)
	defer apiTS.Close()
	p, err := NewProxy(ProxyConfig{
		Upstream: apiTS.URL, Policy: cluster, ProxyUser: "kubefence-proxy",
	})
	if err != nil {
		t.Fatal(err)
	}
	proxyTS := httptest.NewServer(p)
	defer proxyTS.Close()

	// Both operators deploy through the single proxy.
	for _, name := range []string{"nginx", "postgresql"} {
		c, _ := LoadBuiltinChart(name)
		manifests, err := RenderChart(c, nil, ReleaseOptions{Name: name + "-rel", Namespace: "shared"})
		if err != nil {
			t.Fatal(err)
		}
		cl := client.New(proxyTS.URL, client.WithUser("operator:"+name))
		for _, m := range manifests {
			o, err := parseManifest(m)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := cl.Create(o); err != nil {
				t.Fatalf("%s %v denied by union policy: %v", name, o["kind"], err)
			}
		}
	}
	// Attacks stay blocked.
	cl := client.New(proxyTS.URL, client.WithUser("operator:nginx"))
	evil := map[string]any{
		"apiVersion": "v1", "kind": "Pod",
		"metadata": map[string]any{"name": "evil", "namespace": "shared"},
		"spec":     map[string]any{"hostPID": true, "containers": []any{}},
	}
	if _, err := cl.Create(evil); !client.IsForbidden(err) {
		t.Errorf("Pod (unused by both workloads) err = %v, want 403", err)
	}
}

func TestUnionPoliciesErrors(t *testing.T) {
	if _, err := UnionPolicies("x"); err == nil {
		t.Error("empty union should error")
	}
}
