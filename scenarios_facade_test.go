package kubefence

import (
	"strings"
	"testing"
)

// TestGenerateWorkloadsFacade exercises the synthetic-corpus generator
// through the public facade: deterministic pairs that verify cleanly.
func TestGenerateWorkloadsFacade(t *testing.T) {
	ws, err := GenerateWorkloads(SynthOptions{Seed: 5, Count: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 {
		t.Fatalf("GenerateWorkloads returned %d workloads, want 3", len(ws))
	}
	for i := range ws {
		if err := VerifyWorkload(&ws[i]); err != nil {
			t.Errorf("workload %s failed verification: %v", ws[i].Name, err)
		}
	}
	again, err := GenerateWorkloads(SynthOptions{Seed: 5, Count: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ws {
		if ws[i].Name != again[i].Name || ws[i].BaseChart != again[i].BaseChart {
			t.Errorf("workload %d not deterministic: %+v vs %+v", i, ws[i], again[i])
		}
	}
}

// TestRunScenariosFacade drives a small scenarios run through the public
// facade: every cell must hold the zero-FN/FP line on the generated
// corpus under all three validation paths.
func TestRunScenariosFacade(t *testing.T) {
	report, err := RunScenarios(ScenariosOptions{
		Synth:             4,
		Seed:              2,
		Concurrency:       4,
		MaxPerAttackClass: 1,
		CacheSize:         256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		t.Errorf("scenarios run not clean: verified=%v FN=%d FP=%d errors=%d",
			report.VerifiedPairs, report.TotalFalseNegatives,
			report.TotalFalsePositives, report.Errors)
	}
	// 3 engines x the deduplicated counts {1, 2, 4}.
	if len(report.Cells) != 9 {
		t.Errorf("got %d cells, want 9", len(report.Cells))
	}
	if len(report.Flatness) != 3 {
		t.Errorf("got %d flatness summaries, want 3", len(report.Flatness))
	}
	out := RenderScenariosReport(report)
	if !strings.Contains(out, "interpreted") || !strings.Contains(out, "clean: true") {
		t.Errorf("rendered report missing expected content:\n%s", out)
	}
}
