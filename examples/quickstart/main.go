// Quickstart: generate a KubeFence policy from a Helm chart and validate
// API requests against it — the offline half of the paper's pipeline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	kubefence "repro"
)

func main() {
	// 1. Load an operator chart. The five charts from the paper's
	//    evaluation are embedded; LoadChart accepts your own fileset.
	c, err := kubefence.LoadBuiltinChart("mlflow")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Generate the workload-specific policy: values-schema
	//    generalization, configuration-space exploration, manifest
	//    rendering, and validator consolidation (paper §V-A).
	policy, err := kubefence.GeneratePolicy(c, kubefence.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("policy for %q: %d variants explored, %d manifests consolidated\n",
		policy.Workload, policy.Variants, policy.Manifests)
	fmt.Printf("allowed kinds: %v\n\n", policy.AllowedKinds())

	// 3. Validate a legitimate request: a Service within the chart's
	//    configuration space.
	legitimate := []byte(`
apiVersion: v1
kind: Service
metadata:
  name: my-mlflow
  namespace: ml-team
spec:
  type: ClusterIP
  ports:
    - name: http
      port: 5000
      targetPort: http
      protocol: TCP
  selector:
    app.kubernetes.io/name: mlflow
`)
	violations, err := policy.ValidateManifest(legitimate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("legitimate Service: %d violations (allowed)\n", len(violations))

	// 4. Validate an attack: CVE-2017-1002101 — the subPath host-escape
	//    from the paper's Fig. 4. The field is not in MLflow's
	//    configuration space, so the request is denied.
	attack := []byte(`
apiVersion: apps/v1
kind: Deployment
metadata:
  name: my-mlflow
spec:
  replicas: 1
  template:
    spec:
      initContainers:
        - name: busybox
          image: busybox
          command: ["ln", "-s", "/", "/mnt/data/symlink-door"]
      containers:
        - name: mlflow
          image: docker.io/bitnami/mlflow:2.9.2
          volumeMounts:
            - mountPath: /test
              name: my-volume
              subPath: symlink-door
      volumes:
        - name: my-volume
          emptyDir: {}
`)
	violations, err = policy.ValidateManifest(attack)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCVE-2017-1002101 exploit: %d violations (denied)\n", len(violations))
	for _, v := range violations {
		fmt.Printf("  - %s\n", v)
	}
}
