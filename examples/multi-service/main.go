// Multi-service: one application composed of three cooperating services
// (store-api, order-processor, customer-db) behind a single KubeFence
// enforcement point. The schema policy covers every service's object
// shapes, but the interesting property is *cross-resource*: the
// customer-db pod must never mount the store-api's credentials. Secret
// names contain the release name, so they generalize to free strings
// during policy generation — a schema policy cannot pin them. The
// SecretOwnership invariant (internal/invariant) closes that gap: it is
// derived from the chart's own Secret labels, attached to the registry
// entry beside the schema policy, and evaluated by both engines after a
// clean schema verdict.
//
//	go run ./examples/multi-service
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	kubefence "repro"
	"repro/internal/apiserver"
	"repro/internal/chart"
	"repro/internal/charts"
	"repro/internal/client"
	"repro/internal/invariant"
	"repro/internal/object"
	"repro/internal/operator"
	"repro/internal/registry"
	"repro/internal/store"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- The store application: one chart, three services. ---
	c, err := charts.Load("store")
	if err != nil {
		return err
	}
	pol, err := kubefence.GeneratePolicy(c, kubefence.Options{Workload: "store"})
	if err != nil {
		return err
	}

	reg := kubefence.NewRegistry(kubefence.RegistryConfig{CacheSize: 4096})
	if err := pol.Register(reg, kubefence.Selector{Namespace: "store"}); err != nil {
		return err
	}

	// --- The cross-resource rule, derived from the chart itself: each
	// Secret's component label names its owning service. ---
	files, err := c.Render(nil, chart.ReleaseOptions{Name: "prod", Namespace: "store"})
	if err != nil {
		return err
	}
	objs := chart.Objects(files)
	own := invariant.OwnershipFromObjects(objs, "")
	if err := reg.SetInvariants("store", []registry.Invariant{own}); err != nil {
		return err
	}
	fmt.Printf("secret ownership rule: %v constrained secrets\n", own.OwnedSecrets())

	// --- A simulated cluster fronted by the proxy. ---
	api, err := apiserver.New(apiserver.Config{
		Store: store.New(), FrontProxyUsers: []string{"kubefence-proxy"},
	})
	if err != nil {
		return err
	}
	apiTS := httptest.NewServer(api)
	defer apiTS.Close()
	p, err := kubefence.NewProxy(kubefence.ProxyConfig{
		Upstream: apiTS.URL, Registry: reg, ProxyUser: "kubefence-proxy",
	})
	if err != nil {
		return err
	}
	proxyTS := httptest.NewServer(p)
	defer proxyTS.Close()

	// --- All three services deploy through the enforcement point. ---
	op := &operator.Operator{
		Workload: "store",
		Chart:    c,
		Client:   client.New(proxyTS.URL, client.WithUser("operator:store")),
		Release:  chart.ReleaseOptions{Name: "prod", Namespace: "store"},
	}
	res, err := op.Deploy()
	if err != nil {
		return fmt.Errorf("deploying store: %w", err)
	}
	fmt.Printf("deployed the store application: %d objects (api, processor, db)\n", res.Objects)

	// --- The cross-mount attack: the customer-db StatefulSet re-applied
	// with the store-api's credentials grafted into its volumes. Every
	// field it touches is schema-legal — only the ownership rule can see
	// the violation. ---
	var db, apiSecret object.Object
	for _, o := range objs {
		switch {
		case o.Kind() == "StatefulSet":
			db = o
		case o.Kind() == "Secret" && o.Name() == "prod-store-api-credentials":
			apiSecret = o
		}
	}
	if db == nil || apiSecret == nil {
		return fmt.Errorf("store chart shape changed: db=%v apiSecret=%v", db != nil, apiSecret != nil)
	}
	evil := db.DeepCopy()
	spec, _ := object.GetMap(evil, "spec.template.spec")
	vols, _ := spec["volumes"].([]any)
	spec["volumes"] = append(vols, map[string]any{
		"name":   "stolen-creds",
		"secret": map[string]any{"secretName": apiSecret.Name()},
	})
	cl := client.New(proxyTS.URL, client.WithUser("operator:store"))
	if _, err := cl.Apply(evil); err == nil {
		return fmt.Errorf("cross-mount attack unexpectedly admitted")
	}
	for workload, recs := range reg.Violations() {
		last := recs[len(recs)-1]
		fmt.Printf("blocked: workload=%s kind=%s: %s\n",
			workload, last.Kind, last.Violations[0])
	}

	// --- The benign re-apply (the reconcile loop) still passes: the
	// rule constrains relationships, not shapes. ---
	if _, err := cl.Apply(db); err != nil {
		return fmt.Errorf("benign db re-apply denied: %w", err)
	}
	fmt.Println("benign customer-db re-apply admitted")
	return nil
}
