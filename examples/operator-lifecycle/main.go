// Operator-lifecycle: Day-1 and Day-2 operations through the KubeFence
// proxy with complete mediation over mutual TLS — the paper's full
// deployment architecture (§V-B): the API server only accepts connections
// from the proxy's client certificate; clients trust the proxy CA; the
// operator installs, reconciles drift, and is blocked when compromised.
//
//	go run ./examples/operator-lifecycle
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"

	"crypto/tls"

	kubefence "repro"
	"repro/internal/apiserver"
	"repro/internal/certs"
	"repro/internal/chart"
	"repro/internal/charts"
	"repro/internal/client"
	"repro/internal/object"
	"repro/internal/operator"
	"repro/internal/store"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const workload = "rabbitmq"

	// --- PKI: cluster CA (API server + proxy client cert) and proxy CA
	//     (what clients trust). ---
	clusterCA, err := certs.NewCA("cluster-ca")
	if err != nil {
		return err
	}
	proxyCA, err := certs.NewCA("kubefence-proxy-ca")
	if err != nil {
		return err
	}
	apiCert, err := clusterCA.IssueServer("kube-apiserver", "127.0.0.1")
	if err != nil {
		return err
	}
	proxyClientCert, err := clusterCA.IssueClient("kubefence-proxy")
	if err != nil {
		return err
	}
	proxyServerCert, err := proxyCA.IssueServer("kubefence", "127.0.0.1")
	if err != nil {
		return err
	}

	// --- API server: mTLS only; sole trusted client is the proxy. ---
	api, err := apiserver.New(apiserver.Config{
		Store:           store.New(),
		FrontProxyUsers: []string{"kubefence-proxy"},
	})
	if err != nil {
		return err
	}
	apiTS := httptest.NewUnstartedServer(api)
	apiTS.TLS = certs.ServerTLSConfig(apiCert, clusterCA)
	// The complete-mediation probe below triggers an expected handshake
	// failure; keep the example output clean.
	apiTS.Config.ErrorLog = log.New(io.Discard, "", 0)
	apiTS.StartTLS()
	defer apiTS.Close()

	// --- KubeFence proxy with the workload policy. ---
	policy, err := kubefence.GeneratePolicy(charts.MustLoad(workload), kubefence.Options{})
	if err != nil {
		return err
	}
	proxy, err := kubefence.NewProxy(kubefence.ProxyConfig{
		Upstream: apiTS.URL,
		Policy:   policy,
		Transport: &http.Transport{
			TLSClientConfig: certs.ClientTLSConfig(clusterCA, proxyClientCert),
		},
	})
	if err != nil {
		return err
	}
	proxyTS := httptest.NewUnstartedServer(proxy)
	proxyTS.TLS = &tls.Config{
		Certificates: []tls.Certificate{proxyServerCert.TLSCertificate()},
		MinVersion:   tls.VersionTLS12,
	}
	proxyTS.StartTLS()
	defer proxyTS.Close()

	// --- Complete mediation: direct API access fails at the TLS layer. --
	direct := client.New(apiTS.URL, client.WithHTTPClient(&http.Client{
		Transport: &http.Transport{TLSClientConfig: certs.ClientTLSConfig(clusterCA, nil)},
	}))
	if err := direct.Healthz(); err != nil {
		fmt.Println("direct API access without client cert: REFUSED (complete mediation)")
	} else {
		return fmt.Errorf("direct access unexpectedly succeeded")
	}

	// --- Day-1: install through the proxy. ---
	cl := client.New(proxyTS.URL,
		client.WithHTTPClient(&http.Client{
			Transport: &http.Transport{TLSClientConfig: certs.ClientTLSConfig(proxyCA, nil)},
		}),
		client.WithUser("operator:"+workload))
	op := &operator.Operator{
		Workload: workload,
		Chart:    charts.MustLoad(workload),
		Client:   cl,
		Release:  chart.ReleaseOptions{Name: "prod", Namespace: "messaging"},
	}
	res, err := op.Deploy()
	if err != nil {
		return err
	}
	fmt.Printf("day-1 install: %d objects in %v (through mTLS proxy)\n",
		res.Objects, res.Duration)

	// --- Day-2: detect and repair drift. ---
	live, err := cl.Get("StatefulSet", "messaging", "prod-rabbitmq")
	if err != nil {
		return err
	}
	if err := object.Set(live, "spec.replicas", float64(0)); err != nil {
		return err
	}
	if _, err := cl.Update(live); err != nil {
		return err
	}
	rec, err := op.ReconcileOnce()
	if err != nil {
		return err
	}
	fmt.Printf("day-2 reconcile: checked %d, repaired %d drifted object(s)\n",
		rec.Checked, rec.Drifted)

	// --- A compromised operator pushing a privileged pod is stopped. ---
	sts, err := cl.Get("StatefulSet", "messaging", "prod-rabbitmq")
	if err != nil {
		return err
	}
	evil := sts.DeepCopy()
	cs, _ := object.GetSlice(evil, "spec.template.spec.containers")
	cs[0].(map[string]any)["securityContext"].(map[string]any)["privileged"] = true
	_, err = cl.Update(evil)
	if client.IsForbidden(err) {
		fmt.Println("compromised update (privileged: true): BLOCKED by KubeFence")
	} else {
		return fmt.Errorf("privileged update not blocked: %v", err)
	}
	fmt.Printf("proxy metrics: %+v\n", proxy.Metrics())
	return nil
}
