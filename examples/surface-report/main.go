// Surface-report: regenerate the paper's attack-surface quantification —
// the Fig. 9 utilization matrix and the Table I RBAC-vs-KubeFence
// reduction comparison (paper §VI-B) — plus the Fig. 5 motivation study.
//
//	go run ./examples/surface-report
package main

import (
	"fmt"
	"log"

	kubefence "repro"
	"repro/internal/charts"
	"repro/internal/coverage"
	"repro/internal/surface"
	"repro/internal/validator"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Fig. 5: how little of the vulnerable codebase real workloads touch.
	fmt.Println(coverage.Analyze(coverage.BuildCorpus()).Render())

	// Generate every workload's policy through the public API.
	policies := map[string]*validator.Validator{}
	for _, name := range charts.Names() {
		c, err := kubefence.LoadBuiltinChart(name)
		if err != nil {
			return err
		}
		p, err := kubefence.GeneratePolicy(c, kubefence.Options{})
		if err != nil {
			return err
		}
		policies[name] = p.Validator()
	}

	fmt.Println(surface.RenderFig9(surface.ComputeUsage(policies)))
	fmt.Println(surface.RenderTableI(surface.ComputeReductions(policies)))
	return nil
}
