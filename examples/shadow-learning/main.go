// Shadow learning: mining a KubeFence policy from traffic for a
// workload with NO usable chart, and shipping it through the
// learn → shadow → enforce rollout lifecycle.
//
// The nginx operator deploys through a proxy that starts with no policy
// at all. Its requests are observed and generalized into a candidate
// policy, the candidate is rehearsed in shadow (would-deny verdicts
// recorded, nothing blocked), and once it holds a clean window the
// rollout controller promotes it to enforcement — at which point a
// privileged-container attack bounces off a policy no human ever wrote.
//
//	go run ./examples/shadow-learning
package main

import (
	"bytes"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	kubefence "repro"
	"repro/internal/learn"
	"repro/internal/registry"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- An enforcement point with an EMPTY registry: the nginx
	// workload is registered in learn mode with a miner attached, no
	// policy anywhere. ---
	reg := kubefence.NewRegistry(kubefence.RegistryConfig{CacheSize: 1024})
	// Demo-sized gates (defaults are 50/200): one deploy pass of the
	// nginx chart is 6 objects, so each lifecycle stage needs exactly
	// one epoch of traffic.
	ctl := kubefence.NewRolloutController(reg, kubefence.RolloutGates{
		MinLearnRequests:  5,
		MinShadowRequests: 5,
	})
	if _, err := ctl.AddWorkload("nginx", kubefence.Selector{Namespace: "nginx"},
		kubefence.LearnOptions{}); err != nil {
		return err
	}

	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK) // a stand-in API server
	}))
	defer upstream.Close()
	p, err := kubefence.NewProxy(kubefence.ProxyConfig{
		Upstream: upstream.URL,
		Registry: reg,
		OnShadowViolation: func(rec kubefence.ViolationRecord) {
			fmt.Printf("  shadow would-deny %s %s: %d violation(s) — forwarded anyway\n",
				rec.Method, rec.Kind, len(rec.Violations))
		},
	})
	if err != nil {
		return err
	}
	ts := httptest.NewServer(p)
	defer ts.Close()

	// --- The workload's real traffic: its rendered manifests, created
	// and then re-applied the way an operator reconcile loop does. ---
	c, err := kubefence.LoadBuiltinChart("nginx")
	if err != nil {
		return err
	}
	manifests, err := kubefence.RenderChart(c, nil,
		kubefence.ReleaseOptions{Name: "rel", Namespace: "nginx"})
	if err != nil {
		return err
	}
	deployAll := func() (ok, denied int) {
		for _, m := range manifests {
			resp, err := http.Post(ts.URL+"/api/v1/namespaces/nginx/anything",
				"application/yaml", bytes.NewReader(m))
			if err != nil {
				log.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode == http.StatusForbidden {
				denied++
			} else {
				ok++
			}
		}
		return ok, denied
	}

	report := func(phase string) {
		st := ctl.States()[0]
		fmt.Printf("%-22s mode=%-8s gen=%d observed=%d candidates=%d shadow(req=%d deny=%d)\n",
			phase, st.Mode, st.Generation, st.Observed, st.Candidates,
			st.Shadow.Requests, st.Shadow.Denied)
	}

	fmt.Println("== learn: traffic observed, nothing validated ==")
	ok, denied := deployAll()
	fmt.Printf("  deployed %d objects (%d denied)\n", ok, denied)
	report("after learn epoch")
	for _, tr := range ctl.Tick() {
		fmt.Printf("  rollout: %s -> %s (%s)\n", tr.FromName, tr.ToName, tr.Reason)
	}

	fmt.Println("\n== shadow: the mined candidate rehearses ==")
	ok, denied = deployAll()
	fmt.Printf("  deployed %d objects (%d denied)\n", ok, denied)
	report("after shadow epoch")
	for _, tr := range ctl.Tick() {
		fmt.Printf("  rollout: %s -> %s (%s)\n", tr.FromName, tr.ToName, tr.Reason)
	}

	fmt.Println("\n== enforce: the mined policy now denies ==")
	ok, denied = deployAll()
	fmt.Printf("  benign redeploy: %d ok, %d denied\n", ok, denied)
	attack := []byte(`apiVersion: v1
kind: Pod
metadata:
  name: pwn
  namespace: nginx
spec:
  containers:
  - name: shell
    image: evil/shell
    securityContext:
      privileged: true
`)
	resp, err := http.Post(ts.URL+"/api/v1/namespaces/nginx/pods",
		"application/yaml", bytes.NewReader(attack))
	if err != nil {
		return err
	}
	resp.Body.Close()
	fmt.Printf("  privileged-pod attack -> HTTP %d\n", resp.StatusCode)

	// --- The audit trail: what the miner generalized, and how the
	// mined surface compares to the chart-derived policy. ---
	fmt.Println("\n== mined policy audit ==")
	miner, _ := ctl.Miner("nginx")
	summaries := miner.Summaries()
	fmt.Printf("  %d mined paths; a few generalizations:\n", len(summaries))
	shown := 0
	for _, s := range summaries {
		if s.Kind != "Deployment" || shown >= 5 {
			continue
		}
		req := ""
		if s.Required {
			req = " (required)"
		}
		fmt.Printf("    %-55s %s%s\n", s.Kind+":"+s.Path, s.Domain, req)
		shown++
	}
	chartPolicy, err := kubefence.GeneratePolicy(c, kubefence.Options{Workload: "nginx"})
	if err != nil {
		return err
	}
	mined, err := miner.Policy()
	if err != nil {
		return err
	}
	fmt.Print("  " + learn.Diff(mined, chartPolicy.Validator()).Render())

	if mode, _ := reg.Mode("nginx"); mode != registry.ModeEnforce {
		return fmt.Errorf("expected enforce mode, got %v", mode)
	}
	if resp.StatusCode != http.StatusForbidden {
		return fmt.Errorf("attack was not denied")
	}
	fmt.Println("\nlifecycle complete: a policy mined from traffic is enforcing.")
	return nil
}
