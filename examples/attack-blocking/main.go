// Attack-blocking: the full Table III scenario end to end — a simulated
// cluster, an audit2rbac-hardened RBAC baseline, the KubeFence proxy, and
// the 15-entry malicious-specification catalog (paper §VI-D).
//
//	go run ./examples/attack-blocking
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	kubefence "repro"
	"repro/internal/apiserver"
	"repro/internal/attacks"
	"repro/internal/audit"
	"repro/internal/chart"
	"repro/internal/charts"
	"repro/internal/client"
	"repro/internal/object"
	"repro/internal/operator"
	"repro/internal/rbac"
	"repro/internal/store"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const workload = "postgresql"
	operatorUser := "operator:" + workload

	// --- A cluster with audit logging (the paper's capture phase). ---
	auditLog := &audit.Log{}
	api, err := apiserver.New(apiserver.Config{
		Store: store.New(), Audit: auditLog,
		FrontProxyUsers: []string{"kubefence-proxy"},
	})
	if err != nil {
		return err
	}
	apiTS := httptest.NewServer(api)
	defer apiTS.Close()

	// --- Deploy the operator attack-free to record its interactions. ---
	op := &operator.Operator{
		Workload: workload,
		Chart:    charts.MustLoad(workload),
		Client:   client.New(apiTS.URL, client.WithUser(operatorUser)),
		Release:  chart.ReleaseOptions{Name: "prod", Namespace: "default"},
	}
	res, err := op.Deploy()
	if err != nil {
		return err
	}
	fmt.Printf("deployed %d %s objects; %d audit events captured\n",
		res.Objects, workload, auditLog.Len())

	// --- Infer and enforce the minimal RBAC policy (baseline arm). ---
	inferred := audit.InferPolicy(auditLog.Events(), operatorUser)
	authz := rbac.New()
	inferred.Apply(authz)
	api.SetAuthorizer(authz)
	api.SetEnforceAuthz(true)
	fmt.Printf("audit2rbac: %d namespaced roles, %d cluster roles\n\n",
		len(inferred.Roles), len(inferred.ClusterRoles))

	// --- Generate the KubeFence policy and start the proxy. ---
	policy, err := kubefence.GeneratePolicy(charts.MustLoad(workload), kubefence.Options{})
	if err != nil {
		return err
	}
	proxy, err := kubefence.NewProxy(kubefence.ProxyConfig{
		Upstream:  apiTS.URL,
		Policy:    policy,
		ProxyUser: "kubefence-proxy",
	})
	if err != nil {
		return err
	}
	proxyTS := httptest.NewServer(proxy)
	defer proxyTS.Close()

	// --- Fire the catalog at both arms. ---
	legit, err := op.RenderedObjects()
	if err != nil {
		return err
	}
	direct := client.New(apiTS.URL, client.WithUser(operatorUser))
	fenced := client.New(proxyTS.URL, client.WithUser(operatorUser))

	fmt.Printf("%-4s %-48s %-10s %-10s\n", "ID", "attack", "RBAC", "KubeFence")
	rbacBlocked, kfBlocked := 0, 0
	for _, a := range attacks.Catalog() {
		target, ok := a.SelectTarget(legit)
		if !ok {
			return fmt.Errorf("no target for %s", a.ID)
		}
		craft := func() (object.Object, error) {
			evil, err := a.Craft(target)
			if err != nil {
				return nil, err
			}
			err = object.Set(evil, "metadata.name", target.Name()+"-"+a.ID)
			return evil, err
		}

		evil, err := craft()
		if err != nil {
			return err
		}
		_, errDirect := direct.Create(evil)
		rbacVerdict := verdict(errDirect, &rbacBlocked)

		evil2, err := craft()
		if err != nil {
			return err
		}
		_, errFenced := fenced.Create(evil2)
		kfVerdict := verdict(errFenced, &kfBlocked)

		fmt.Printf("%-4s %-48s %-10s %-10s\n", a.ID, a.Name, rbacVerdict, kfVerdict)
	}
	fmt.Printf("\nRBAC blocked %d/15, KubeFence blocked %d/15 (paper: 0/15 vs 15/15)\n",
		rbacBlocked, kfBlocked)

	for _, v := range proxy.Violations() {
		_ = v // violation records available for forensics (paper §V-B)
	}
	fmt.Printf("violation records captured for auditing: %d\n", len(proxy.Violations()))
	return nil
}

func verdict(err error, counter *int) string {
	if client.IsForbidden(err) {
		*counter++
		return "BLOCKED"
	}
	if err != nil {
		return "error"
	}
	return "admitted"
}
