// Multi-workload: one KubeFence proxy enforcing all five builtin
// workload policies concurrently. Each policy governs the namespace
// named after its workload; every operator deploys through the same
// enforcement point, an attack against one tenant is blocked and
// attributed to it, and an individual policy is hot-swapped without
// disturbing the others.
//
//	go run ./examples/multi-workload
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"sort"

	kubefence "repro"
	"repro/internal/apiserver"
	"repro/internal/attacks"
	"repro/internal/chart"
	"repro/internal/charts"
	"repro/internal/client"
	"repro/internal/operator"
	"repro/internal/store"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- One registry holding every builtin workload policy. ---
	reg, err := kubefence.GenerateRegistry(kubefence.RegistryConfig{CacheSize: 4096})
	if err != nil {
		return err
	}
	fmt.Printf("registry: %d workload policies: %v\n", reg.Len(), reg.Workloads())

	// --- A simulated cluster fronted by a single KubeFence proxy. ---
	api, err := apiserver.New(apiserver.Config{
		Store: store.New(), FrontProxyUsers: []string{"kubefence-proxy"},
	})
	if err != nil {
		return err
	}
	apiTS := httptest.NewServer(api)
	defer apiTS.Close()
	p, err := kubefence.NewProxy(kubefence.ProxyConfig{
		Upstream: apiTS.URL, Registry: reg, ProxyUser: "kubefence-proxy",
	})
	if err != nil {
		return err
	}
	proxyTS := httptest.NewServer(p)
	defer proxyTS.Close()

	// --- Every operator deploys through the same enforcement point,
	// each into its own namespace. ---
	for _, name := range charts.Names() {
		op := &operator.Operator{
			Workload: name,
			Chart:    charts.MustLoad(name),
			Client:   client.New(proxyTS.URL, client.WithUser("operator:"+name)),
			Release:  chart.ReleaseOptions{Name: "prod", Namespace: name},
		}
		res, err := op.Deploy()
		if err != nil {
			return fmt.Errorf("deploying %s: %w", name, err)
		}
		fmt.Printf("deployed %-11s %2d objects through the shared proxy\n", name, res.Objects)
	}

	// --- A privileged-container attack aimed at the nginx tenant is
	// blocked by nginx's policy, and attributed to it. ---
	atk, _ := attacks.Lookup("E3")
	files, err := charts.MustLoad("nginx").Render(nil,
		chart.ReleaseOptions{Name: "prod", Namespace: "nginx"})
	if err != nil {
		return err
	}
	target, _ := atk.SelectTarget(chart.Objects(files))
	evil, err := atk.Craft(target)
	if err != nil {
		return err
	}
	cl := client.New(proxyTS.URL, client.WithUser("attacker"))
	if _, err := cl.Apply(evil); err == nil {
		return fmt.Errorf("attack unexpectedly admitted")
	}
	for workload, recs := range reg.Violations() {
		fmt.Printf("blocked: workload=%s kind=%s: %s\n",
			workload, recs[0].Kind, recs[0].Violations[0])
	}

	// --- Hot-swap one tenant's policy (strict lock mode) while the
	// other four keep serving untouched. ---
	c, err := kubefence.LoadBuiltinChart("nginx")
	if err != nil {
		return err
	}
	strict, err := kubefence.GeneratePolicy(c, kubefence.Options{
		Workload: "nginx", Mode: kubefence.LockRequired,
	})
	if err != nil {
		return err
	}
	if err := strict.Swap(reg); err != nil {
		return err
	}
	entry, _ := reg.Entry("nginx")
	fmt.Printf("hot-swapped nginx policy to strict mode (generation %d)\n", entry.Generation())

	// --- Per-workload enforcement metrics. ---
	metrics := reg.Metrics()
	names := make([]string, 0, len(metrics))
	for name := range metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := metrics[name]
		fmt.Printf("metrics %-11s requests=%-3d denied=%-2d cacheHits=%-3d validation=%s\n",
			name, m.Requests, m.Denied, m.CacheHits, m.ValidationTime)
	}
	return nil
}
