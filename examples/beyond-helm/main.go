// Beyond-Helm: the paper's §VIII extensions in action — policy generation
// from Kustomize-style raw manifests (no Helm chart needed), and anomaly
// detection on API calls as the complementary strategy for residual risk.
//
//	go run ./examples/beyond-helm
package main

import (
	"fmt"
	"log"

	"repro/internal/anomaly"
	"repro/internal/audit"
	"repro/internal/manifestsrc"
	"repro/internal/object"
)

var base = [][]byte{[]byte(`
apiVersion: apps/v1
kind: Deployment
metadata:
  name: billing
  namespace: fintech
spec:
  replicas: 2
  template:
    spec:
      containers:
      - name: billing
        image: registry.corp/fintech/billing:3.4.0
        ports:
        - containerPort: 9443
        securityContext:
          runAsNonRoot: true
          allowPrivilegeEscalation: false
---
apiVersion: v1
kind: Service
metadata:
  name: billing
  namespace: fintech
spec:
  type: ClusterIP
  ports:
  - port: 9443
`)}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Kustomize-style deployment: base + dev/prod overlays. ---
	k := &manifestsrc.Kustomization{
		Base: base,
		Overlays: map[string][]manifestsrc.Patch{
			"dev": {{
				Kind: "Deployment", Name: "billing",
				Merge: map[string]any{"spec": map[string]any{"replicas": int64(1)}},
			}},
			"prod": {{
				Kind: "Deployment", Name: "billing",
				Merge: map[string]any{"spec": map[string]any{
					"replicas": int64(6),
					"strategy": map[string]any{"type": "RollingUpdate"},
				}},
			}},
		},
	}
	policy, err := k.GeneratePolicy(manifestsrc.Options{Workload: "billing"})
	if err != nil {
		return err
	}
	fmt.Printf("policy from kustomization: kinds %v\n", policy.AllowedKinds())

	// Every overlay's rendering is allowed...
	for _, overlay := range []string{"dev", "prod"} {
		objs, err := k.Render(overlay)
		if err != nil {
			return err
		}
		for _, o := range objs {
			if vs := policy.Validate(o); len(vs) != 0 {
				return fmt.Errorf("overlay %s denied: %v", overlay, vs)
			}
		}
		fmt.Printf("overlay %-4s: allowed\n", overlay)
	}
	// ...while anything outside the overlay space is denied.
	evil, err := object.ParseManifest([]byte(`
apiVersion: apps/v1
kind: Deployment
metadata:
  name: billing
  namespace: fintech
spec:
  replicas: 2
  template:
    spec:
      hostNetwork: true
      containers:
      - name: billing
        image: registry.corp/fintech/billing:3.4.0
`))
	if err != nil {
		return err
	}
	vs := policy.Validate(evil)
	fmt.Printf("hostNetwork outside overlay space: %d violation(s) (denied)\n\n", len(vs))

	// --- Residual risk: anomaly detection on API calls (§VIII). ---
	// Train on the attack-free overlay traffic.
	var samples []anomaly.Sample
	for _, overlay := range []string{"dev", "prod"} {
		objs, _ := k.Render(overlay)
		for _, o := range objs {
			info, _ := object.LookupKind(o.Kind())
			samples = append(samples, anomaly.Sample{
				Event: audit.Event{
					User: "ci-pipeline", Verb: "create",
					APIGroup: info.GVK.Group, Resource: info.Resource,
					Namespace: o.Namespace(),
				},
				Body: o,
			})
		}
	}
	profile := anomaly.Train(samples)
	tuples, paths := profile.TrainingSize()
	fmt.Printf("anomaly profile: %d tuples, %d field paths learned\n", tuples, paths)

	// The CI pipeline re-deploying prod scores 0.
	prodObjs, _ := k.Render("prod")
	info, _ := object.LookupKind("Deployment")
	score := profile.ScoreRequest(audit.Event{
		User: "ci-pipeline", Verb: "create",
		APIGroup: info.GVK.Group, Resource: info.Resource, Namespace: "fintech",
	}, prodObjs[0])
	fmt.Printf("trained traffic score: %.2f (normal)\n", score.Value)

	// A stolen credential used from a new code path lights up.
	score = profile.ScoreRequest(audit.Event{
		User: "ci-pipeline", Verb: "delete",
		APIGroup: "", Resource: "secrets", Namespace: "kube-system",
	}, nil)
	fmt.Printf("credential misuse score:  %.2f (anomalous=%v)\n", score.Value, score.Anomalous())
	for _, r := range score.Reasons {
		fmt.Printf("  - %s\n", r)
	}
	return nil
}
